"""Developer tooling for the repro tree (not shipped with the library)."""
