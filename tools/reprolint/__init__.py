"""reprolint: contract-enforcing static analysis for the repro tree.

Seven PRs of pool/shm/cluster/resilience work accumulated a set of
load-bearing invariants — bit-identity per seed for any worker count,
executor ownership, channelled payload tokens, bounded timeouts on
every blocking call, scoped shared-memory regions — that used to be
enforced only by reviewer vigilance and after-the-fact equivalence
tests.  This package turns each invariant into a machine-checked AST
rule that fails CI at the diff, before a flaky bit-identity test has to
catch the regression at runtime.

Usage::

    python -m tools.reprolint src tests          # lint, text report
    python -m tools.reprolint --format json src  # machine-readable
    python -m tools.reprolint --list-rules       # rule catalog

Suppression (one line, same line or the line directly above)::

    pool.join()  # reprolint: disable=bounded-blocking -- Pool.join has no timeout

Every suppression should carry a ``--`` justification; the linter does
not require one, reviewers do.  The rule catalog lives in
:mod:`tools.reprolint.rules`; the strict-typing companion gate in
:mod:`tools.reprolint.typegate`.
"""

from tools.reprolint.core import Finding, LintContext, Rule, lint_paths
from tools.reprolint.rules import ALL_RULES

__all__ = ["Finding", "LintContext", "Rule", "ALL_RULES", "lint_paths"]
