"""Strict-typing gate: ``mypy --strict`` over an explicit allowlist.

Usage::

    python -m tools.reprolint.typegate            # check the allowlist
    python -m tools.reprolint.typegate --require  # fail if mypy missing

The allowlist (``tools/reprolint/mypy_allowlist.txt``) names the files
already brought up to strict typing; the gate keeps them there.  To
extend coverage: annotate a module, add its path to the allowlist, run
the gate.

Two strictness relaxations ride after ``--strict`` on the command
line (later flags win):

- ``--allow-any-generics`` — numpy's ``ndarray`` is generic over shape
  and dtype; spelling ``ndarray[Any, dtype[uint64]]`` on every array
  parameter buys noise, not safety, for this codebase.
- ``--no-warn-return-any`` — several numpy stubs return ``Any``
  (ufunc results, ``bit_generator.state``); propagating that into a
  typed signature is the point of the annotation, not an error.

Everything else in ``--strict`` (untyped/incomplete defs, implicit
Optional, unchecked calls into typed code, unused ignores, ...) is
enforced.

mypy is intentionally NOT a runtime dependency of the library; when it
is not installed (e.g. the minimal dev container) the gate reports a
skip and exits 0 so local workflows keep working.  CI installs mypy and
passes ``--require``, which turns a missing mypy into a failure —
the gate cannot be silently skipped where it matters.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
from collections.abc import Sequence

_HERE = os.path.dirname(os.path.abspath(__file__))
ALLOWLIST_PATH = os.path.join(_HERE, "mypy_allowlist.txt")
MYPY_INI_PATH = os.path.join(_HERE, "mypy.ini")

#: Flags appended *after* ``--strict`` (mypy lets later flags override
#: the shorthand) — see the module docstring for the rationale.
STRICT_RELAXATIONS = ("--allow-any-generics", "--no-warn-return-any")


def read_allowlist(path: str = ALLOWLIST_PATH) -> list[str]:
    """Repo-relative paths from the allowlist, comments stripped."""
    out: list[str] = []
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if line:
                out.append(line)
    return out


def mypy_command(files: Sequence[str]) -> list[str]:
    return [
        sys.executable,
        "-m",
        "mypy",
        "--strict",
        *STRICT_RELAXATIONS,
        "--config-file",
        MYPY_INI_PATH,
        *files,
    ]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint.typegate",
        description="Run mypy --strict over the typing allowlist.",
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 2) when mypy is not installed instead of skipping",
    )
    parser.add_argument(
        "--print-command",
        action="store_true",
        help="print the mypy invocation and exit",
    )
    args = parser.parse_args(argv)

    files = read_allowlist()
    missing = [f for f in files if not os.path.exists(f)]
    if missing:
        print(
            "typegate: allowlist entries do not exist: "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return 2

    cmd = mypy_command(files)
    if args.print_command:
        print(" ".join(cmd))
        return 0

    if shutil.which("mypy") is None:
        try:
            import mypy  # noqa: F401
        except ImportError:
            msg = (
                "typegate: mypy is not installed — "
                + ("failing (--require)" if args.require else "skipping")
            )
            print(msg, file=sys.stderr)
            return 2 if args.require else 0

    proc = subprocess.run(cmd)
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
