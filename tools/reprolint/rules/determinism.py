"""Determinism rules.

The library's headline correctness property is that every backend —
serial, pool, cluster, any worker count, resumed from a checkpoint —
produces the bit-identical coloring per seed.  That only holds because
every random draw flows through an explicit
:class:`numpy.random.Generator` (``repro.util.rng.as_generator``) and
no ordering is ever derived from an unordered container or the wall
clock.  These rules make the known nondeterminism sources unwritable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.core import Finding, LintContext, Rule

#: Directories whose code runs inside worker task functions or feeds
#: orderings into the deterministic pipeline.
_PIPELINE_DIRS = (
    "src/repro/coloring/",
    "src/repro/parallel/",
    "src/repro/device/",
    "src/repro/core/",
    "src/repro/distributed/",
)


class NoRandomModuleRule(Rule):
    """Forbid the stdlib ``random`` module anywhere in the library."""

    name = "no-random-module"
    contract = (
        "all randomness flows through numpy Generators normalized by "
        "repro.util.rng.as_generator; the stdlib random module has "
        "process-global state that breaks per-seed bit-identity"
    )
    scope = ("src/repro/",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib 'random' is banned: take a seed "
                            "argument and use repro.util.rng.as_generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib 'random' is banned: take a seed "
                        "argument and use repro.util.rng.as_generator",
                    )


class LegacyNumpyRandomRule(Rule):
    """Forbid legacy ``np.random.*`` calls (global-state RandomState)."""

    name = "legacy-np-random"
    contract = (
        "seeds are normalized once by repro.util.rng.as_generator; "
        "legacy np.random.<fn>() calls use hidden global state and "
        "np.random.default_rng() scattered at call sites fragments the "
        "seeding discipline"
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/util/rng.py",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # np.random.<fn>(...) — Attribute(Attribute(Name np|numpy,
            # 'random'), fn).  Annotations like np.random.Generator are
            # not Call nodes and pass.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ("np", "numpy")
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{func.attr}() is banned outside "
                    "repro.util.rng: normalize seeds with as_generator "
                    "and draw from the Generator",
                )

        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module is not None
                and node.module.startswith("numpy.random")
            ):
                yield self.finding(
                    ctx,
                    node,
                    "import from numpy.random is banned outside "
                    "repro.util.rng: use as_generator",
                )


class NoWallClockRule(Rule):
    """Forbid wall-clock reads that could influence results."""

    name = "no-wallclock"
    contract = (
        "results never depend on the wall clock: time.time()/"
        "datetime.now() are banned in the library (durations come from "
        "the monotonic repro.telemetry.clock() — they never feed an "
        "ordering)"
    )
    scope = ("src/repro/",)

    _BANNED_TIME = ("time", "time_ns")
    _BANNED_DATETIME = ("now", "utcnow", "today")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id == "time"
                and func.attr in self._BANNED_TIME
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"time.{func.attr}() is wall-clock: use "
                    "repro.telemetry.clock() for durations; never let "
                    "time influence results",
                )
            elif (
                isinstance(base, ast.Name)
                and base.id in ("datetime", "date")
                and func.attr in self._BANNED_DATETIME
            ) or (
                isinstance(base, ast.Attribute)
                and base.attr in ("datetime", "date")
                and func.attr in self._BANNED_DATETIME
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{func.attr}() reads the wall clock: results and "
                    "filenames derived from it are not reproducible",
                )


class TelemetryClockRule(Rule):
    """Route all library timing through the telemetry clock API."""

    name = "telemetry-clock"
    contract = (
        "span and metric timing goes through repro.telemetry.clock() "
        "— the one monotonic timer the exporters, phase buckets and "
        "cross-process span merge agree on; raw time.perf_counter()/"
        "time.monotonic() calls scattered through the library would "
        "produce timestamps the trace cannot correlate"
    )
    scope = ("src/repro/",)
    # The telemetry package itself wraps the stdlib timer.
    exclude = ("src/repro/telemetry/",)

    _BANNED = ("perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
                and node.func.attr in self._BANNED
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"time.{node.func.attr}() bypasses the telemetry "
                    "clock: use repro.telemetry.clock() so spans, phase "
                    "buckets and exporters share one timebase",
                )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
                and node.level == 0
            ):
                for alias in node.names:
                    if alias.name in self._BANNED:
                        yield self.finding(
                            ctx,
                            node,
                            f"importing {alias.name} from time bypasses "
                            "the telemetry clock: use "
                            "repro.telemetry.clock()",
                        )


def _is_set_expr(node: ast.expr) -> bool:
    """A bare unordered set: literal, comprehension, or set()/frozenset()
    call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class SetIterationRule(Rule):
    """Forbid iterating a bare ``set`` where order can leak into results."""

    name = "set-iteration"
    contract = (
        "orderings fed to the coloring pipeline are never derived by "
        "iterating an unordered set; wrap in sorted(...) to make the "
        "order explicit"
    )
    scope = _PIPELINE_DIRS

    #: Order-erasing / order-preserving wrappers.  ``sorted`` restores
    #: a canonical order; the others materialize the arbitrary one.
    _ORDER_SENSITIVE_WRAPPERS = ("list", "tuple", "enumerate")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_SENSITIVE_WRAPPERS
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{node.func.id}() over a bare set materializes an "
                    "unordered iteration: use sorted(...) to pin the "
                    "order",
                )
                continue
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        ctx,
                        it,
                        "iterating a bare set: the order is "
                        "unspecified and can leak into the coloring; "
                        "use sorted(...)",
                    )
