"""Resource rules: shared memory and device scratch stay scoped.

POSIX shared memory outlives the process on crash — every segment must
be created behind :mod:`repro.parallel.shm`'s owning wrappers, whose
``with``/pool protocols unlink on every path.  Device scratch charges
the :class:`DeviceSim` memory ledger; an unreleased scratch makes every
later peak-bytes measurement lie, so ``scratch()`` is only used where a
context manager provably releases it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.core import Finding, LintContext, Rule


class ShmRegionScopeRule(Rule):
    """Shared-memory segments are created only inside ``parallel/shm.py``."""

    name = "shm-region-scope"
    contract = (
        "SharedMemory(create=True)/ShmCooRegion.create live only in "
        "repro.parallel.shm, whose region pool and context managers "
        "guarantee unlink on every path — a leaked segment survives "
        "the process"
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/parallel/shm.py",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "create"
                and isinstance(func.value, ast.Name)
                and func.value.id == "ShmCooRegion"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "ShmCooRegion.create() outside repro.parallel.shm: "
                    "allocate through shm_conflict_gather/ShmRegionPool "
                    "so the segment is unlinked on every path",
                )
                continue
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name == "SharedMemory" and any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    "raw SharedMemory(create=True) outside "
                    "repro.parallel.shm: use the owning wrappers there",
                )


class ScratchContextRule(Rule):
    """``device.scratch()`` is always context-managed."""

    name = "scratch-context"
    contract = (
        "DeviceSim.scratch() charges the device memory ledger; every "
        "call is a 'with' context expression, an enter_context(...) "
        "argument, or returned for the caller to manage — otherwise "
        "peak-bytes accounting drifts"
    )
    scope = ("src/repro/",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        managed: set[ast.Call] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        managed.add(item.context_expr)
            elif isinstance(node, ast.Call):
                callee = node.func
                is_enter = (
                    isinstance(callee, ast.Attribute)
                    and callee.attr == "enter_context"
                ) or (
                    isinstance(callee, ast.Name)
                    and callee.id == "enter_context"
                )
                if is_enter:
                    for arg in node.args:
                        if isinstance(arg, ast.Call):
                            managed.add(arg)
            elif isinstance(node, ast.Return) and isinstance(
                node.value, ast.Call
            ):
                # ``return dev.scratch(...)`` hands the context manager
                # to the caller (the engine `_scratch` helper pattern).
                managed.add(node.value)

        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "scratch"
                and node not in managed
            ):
                yield self.finding(
                    ctx,
                    node,
                    ".scratch() outside a context manager: use 'with "
                    "dev.scratch(...)', stack.enter_context(...), or "
                    "return it to the caller",
                )
