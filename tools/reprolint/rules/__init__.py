"""Rule registry: one instance of every project-contract rule.

Rule families:

- :mod:`tools.reprolint.rules.determinism` — the paper's correctness
  claim is bit-identical coloring per seed for any worker count; these
  rules make the known nondeterminism sources unwritable.
- :mod:`tools.reprolint.rules.layering` — package boundaries (engine
  registry access, process/socket primitives, private cross-package
  imports).
- :mod:`tools.reprolint.rules.lifecycle` — executor ownership and
  bounded blocking calls.
- :mod:`tools.reprolint.rules.resources` — shared-memory and device
  scratch allocations stay scoped.
- :mod:`tools.reprolint.rules.output` — worker/library stdout stays
  machine-parseable.
"""

from tools.reprolint.core import Rule
from tools.reprolint.rules.determinism import (
    LegacyNumpyRandomRule,
    NoRandomModuleRule,
    NoWallClockRule,
    SetIterationRule,
    TelemetryClockRule,
)
from tools.reprolint.rules.layering import (
    BackendRegistryRule,
    EngineRegistryRule,
    PrivateImportRule,
    SocketScopeRule,
)
from tools.reprolint.rules.lifecycle import (
    BoundedBlockingRule,
    ExecutorOwnershipRule,
)
from tools.reprolint.rules.output import NoBarePrintRule
from tools.reprolint.rules.resources import (
    ScratchContextRule,
    ShmRegionScopeRule,
)

#: Every shipped rule, in catalog order.
ALL_RULES: tuple[Rule, ...] = (
    ExecutorOwnershipRule(),
    BoundedBlockingRule(),
    NoRandomModuleRule(),
    LegacyNumpyRandomRule(),
    NoWallClockRule(),
    TelemetryClockRule(),
    SetIterationRule(),
    EngineRegistryRule(),
    BackendRegistryRule(),
    SocketScopeRule(),
    PrivateImportRule(),
    ShmRegionScopeRule(),
    ScratchContextRule(),
    NoBarePrintRule(),
)

__all__ = ["ALL_RULES"] + [type(r).__name__ for r in ALL_RULES]
