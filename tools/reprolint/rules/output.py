"""Output rule: library stdout stays machine-parseable.

The CLI (``repro.cli``) owns stdout; workers and library modules that
print there interleave with result streams (the distributed worker's
stdout may be captured by a launcher).  Diagnostics go to stderr or
``logging``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.core import Finding, LintContext, Rule


class NoBarePrintRule(Rule):
    """No ``print()`` to stdout outside the CLI entry point."""

    name = "no-bare-print"
    contract = (
        "outside repro.cli, nothing prints to stdout: pass "
        "file=sys.stderr or use logging so launcher-captured streams "
        "stay machine-parseable"
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/cli.py",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Name) and node.func.id == "print"
            ):
                continue
            if any(kw.arg == "file" for kw in node.keywords):
                continue
            yield self.finding(
                ctx,
                node,
                "bare print() writes to stdout: add file=sys.stderr or "
                "use logging (stdout belongs to repro.cli)",
            )
