"""Layering rules: package boundaries the architecture depends on.

The ROADMAP's north star (new backends behind one kernel-dispatch seam,
new engines behind the registry) only stays cheap if the seams stay
seams: engines are reached through the registry, process and socket
primitives live behind the executor/transport layers, and private
helpers do not grow cross-package consumers that freeze their
signatures.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.core import Finding, LintContext, Rule

#: List-coloring engine *implementation* modules.  Everything outside
#: the coloring package reaches them through the registry
#: (``repro.coloring.engine.get_engine``) or the package's public
#: re-exports (``repro.coloring``), so engines stay swappable.
_ENGINE_IMPL_MODULES = frozenset(
    {
        "repro.coloring.greedy_list",
        "repro.coloring.parallel_list",
        "repro.coloring.speculative",
        "repro.coloring.luby",
        "repro.coloring.jones_plassmann",
        "repro.coloring.greedy",
        "repro.coloring.recolor",
    }
)


def _imported_modules(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, dotted_module)`` for every import in the file."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            yield node, node.module


class EngineRegistryRule(Rule):
    """Engines are reached through the registry outside ``coloring/``."""

    name = "engine-registry"
    contract = (
        "outside repro.coloring, list-coloring engines are selected "
        "through the registry (repro.coloring.engine.get_engine) or the "
        "package's public API — never by importing an implementation "
        "module, so engines stay swappable behind one seam"
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/coloring/",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node, module in _imported_modules(ctx.tree):
            if module in _ENGINE_IMPL_MODULES:
                yield self.finding(
                    ctx,
                    node,
                    f"import of engine implementation '{module}': use "
                    "repro.coloring.engine.get_engine or the "
                    "repro.coloring package API",
                )


#: Kernel-backend *implementation* modules.  Everything outside
#: ``repro.device.backends`` reaches them through the registry
#: (``get_backend``/``resolve_backend``) or the package itself, so the
#: numpy/numba/cupy paths stay swappable behind one dispatch seam.
_BACKEND_IMPL_MODULES = frozenset(
    {
        "repro.device.backends.numpy_backend",
        "repro.device.backends.numba_backend",
        "repro.device.backends.cupy_backend",
    }
)

#: Accelerator runtimes only the backend package may import.
_ACCEL_RUNTIMES = ("numba", "cupy")


class BackendRegistryRule(Rule):
    """Kernel backends are reached through the registry; accelerator
    runtimes (numba/cupy) are confined to ``device/backends/``."""

    name = "backend-registry"
    contract = (
        "outside repro.device.backends, kernel backends are selected "
        "through the registry (get_backend/resolve_backend) — never by "
        "importing an implementation module — and the accelerator "
        "runtimes (numba, cupy) are never imported directly, so every "
        "compiled path stays behind one import-guarded dispatch seam"
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/device/backends/",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node, module in _imported_modules(ctx.tree):
            top = module.split(".")[0]
            if top in _ACCEL_RUNTIMES:
                yield self.finding(
                    ctx,
                    node,
                    f"import of accelerator runtime '{module}' outside "
                    "repro.device.backends: the compiled paths are "
                    "import-guarded there — go through get_backend/"
                    "resolve_backend",
                )
            elif module in _BACKEND_IMPL_MODULES:
                yield self.finding(
                    ctx,
                    node,
                    f"import of backend implementation '{module}': use "
                    "repro.device.backends.get_backend/resolve_backend "
                    "or the package API",
                )


class SocketScopeRule(Rule):
    """Process/socket primitives live behind the executor/transport."""

    name = "socket-scope"
    contract = (
        "multiprocessing and socket primitives are confined to "
        "repro.parallel and repro.distributed; everything else "
        "parallelizes through the Executor seam so backends stay "
        "pluggable"
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/parallel/", "src/repro/distributed/")

    _BANNED = ("multiprocessing", "socket", "socketserver")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node, module in _imported_modules(ctx.tree):
            top = module.split(".")[0]
            if top in self._BANNED:
                yield self.finding(
                    ctx,
                    node,
                    f"import of '{module}' outside the parallel/"
                    "distributed layers: go through "
                    "repro.parallel.executor (make_executor/"
                    "owned_executor) or repro.distributed.transport",
                )


class PrivateImportRule(Rule):
    """No cross-package imports of another module's private names."""

    name = "private-import"
    contract = (
        "underscore-prefixed names of repro.parallel modules are "
        "implementation details; importing them elsewhere freezes "
        "internals — promote the helper to a public name instead"
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/parallel/",)

    _GUARDED_PREFIX = "repro.parallel."

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.level or not node.module:
                continue
            if not node.module.startswith(self._GUARDED_PREFIX):
                continue
            for alias in node.names:
                if alias.name.startswith("_"):
                    yield self.finding(
                        ctx,
                        node,
                        f"private import '{alias.name}' from "
                        f"'{node.module}': promote it to a public name "
                        "or move the consumer into repro.parallel",
                    )
