"""Lifecycle rules: executor ownership and bounded blocking.

Two hardening campaigns live here.  PR 2 established the ownership
contract — whoever materializes an executor from a spec owns it and
must close it, or worker processes outlive the build.  PR 3/5 made
every blocking call bounded — ``multiprocessing`` never re-issues a
task lost to a killed worker, so one unbounded ``.get()``/``.recv()``/
``.join()``/``.wait()`` turns a dead worker into a hung dispatcher.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.core import Finding, LintContext, Rule

#: Factories whose result the caller owns and must close.
_EXECUTOR_FACTORIES = frozenset({"make_executor", "supervised_executor"})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _iter_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function scopes."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module scope plus every function scope."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _SCOPE_NODES):
            yield node


def _closed_names(scope: ast.AST) -> set[str]:
    """Names ``x`` with an ``x.close()`` inside any ``finally`` block
    of ``scope``."""
    out: set[str] = set()
    for node in _iter_scope(scope):
        if not isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "close"
                    and isinstance(sub.func.value, ast.Name)
                ):
                    out.add(sub.func.value.id)
    return out


def _with_names_and_calls(
    scope: ast.AST,
) -> tuple[set[str], set[ast.Call]]:
    """Names used as ``with x`` context managers, and factory Call
    nodes that are themselves a ``with`` context expression."""
    names: set[str] = set()
    calls: set[ast.Call] = set()
    for node in _iter_scope(scope):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name):
                names.add(expr.id)
            elif isinstance(expr, ast.Call):
                calls.add(expr)
    return names, calls


def _returned(scope: ast.AST) -> tuple[set[str], set[ast.Call]]:
    """Names and Call nodes returned (ownership transferred to caller)."""
    names: set[str] = set()
    calls: set[ast.Call] = set()
    for node in _iter_scope(scope):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Name):
                names.add(node.value.id)
            elif isinstance(node.value, ast.Call):
                calls.add(node.value)
        elif isinstance(scope, ast.Lambda) and node is scope.body:
            if isinstance(node, ast.Call):
                calls.add(node)
    return names, calls


class ExecutorOwnershipRule(Rule):
    """Spec-created executors are closed by their creator."""

    name = "executor-ownership"
    contract = (
        "every make_executor()/supervised_executor() result is owned: "
        "wrap the call in owned_executor(...)/'with', close it in a "
        "'finally', or return it to transfer ownership — a leaked "
        "executor keeps live worker processes"
    )
    scope = ("src/repro/",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for scope in _scopes(ctx.tree):
            closed = _closed_names(scope)
            with_names, with_calls = _with_names_and_calls(scope)
            ret_names, ret_calls = _returned(scope)
            ok_names = closed | with_names | ret_names
            ok_calls = with_calls | ret_calls

            for node in _iter_scope(scope):
                if not isinstance(node, ast.Assign):
                    continue
                call = node.value
                if (
                    isinstance(call, ast.Call)
                    and _call_name(call) in _EXECUTOR_FACTORIES
                ):
                    targets = [
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    ]
                    if targets and all(t in ok_names for t in targets):
                        ok_calls.add(call)
                    elif not targets:
                        # Assigned to an attribute/subscript: lifetime
                        # crosses the function, which this rule cannot
                        # prove safe.
                        pass

            for node in _iter_scope(scope):
                if (
                    isinstance(node, ast.Call)
                    and _call_name(node) in _EXECUTOR_FACTORIES
                    and node not in ok_calls
                ):
                    # Still fine when the immediate statement returns it
                    # through a ternary etc.?  No: be strict, ask for
                    # one of the three blessed shapes.
                    yield self.finding(
                        ctx,
                        node,
                        f"{_call_name(node)}() result is never closed "
                        "here: use owned_executor(...), close it in a "
                        "'finally', or return it to transfer ownership",
                    )


class BoundedBlockingRule(Rule):
    """Every potentially-blocking call passes a timeout."""

    name = "bounded-blocking"
    contract = (
        "in repro.parallel and repro.distributed every .get()/.recv()/"
        ".join()/.wait() passes a timeout: a worker killed mid-task "
        "never reports, multiprocessing never re-issues the task, and "
        "an unbounded wait hangs the whole build"
    )
    scope = ("src/repro/parallel/", "src/repro/distributed/")

    _BLOCKING = frozenset({"get", "recv", "join", "wait"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in self._BLOCKING:
                continue
            # Any argument counts as the bound: these APIs take the
            # timeout first (AsyncResult.get, Connection.recv via our
            # transport, Process.join, Barrier.wait).  dict.get(key)
            # and str.join(parts) carry arguments and pass untouched;
            # the zero-argument form is exactly the unbounded wait.
            if node.args or node.keywords:
                continue
            yield self.finding(
                ctx,
                node,
                f".{func.attr}() without a timeout can hang forever on "
                "a killed worker: pass a bound (see "
                "REPRO_RESULT_TIMEOUT_S / BROADCAST_TIMEOUT_S)",
            )
