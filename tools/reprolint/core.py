"""reprolint framework core: findings, rules, suppressions, the runner.

A :class:`Rule` is one contract.  It declares a ``name`` (the id used
in reports and suppression comments), a one-line ``contract`` string, a
path ``scope`` (tuple of repo-relative prefixes it applies to, with
optional ``exclude`` prefixes), and a ``check(ctx)`` generator yielding
:class:`Finding` objects for one file's AST.

Suppression protocol
--------------------
``# reprolint: disable=rule-a,rule-b`` on a line suppresses those rules
for that line *and* (when the comment stands alone on its line) for the
next statement line — intervening comment/blank lines are transparent,
so a multi-line justification can sit above the statement it guards.
``# reprolint: disable-file=rule-a`` anywhere in a file suppresses the
rule for the whole file.  ``disable=all`` works in both forms.  Text
after ``--`` is a free-form justification for reviewers.

Paths are normalized repo-relative with forward slashes, so scope
prefixes like ``src/repro/parallel/`` match regardless of platform or
how the CLI was invoked.
"""

from __future__ import annotations

import ast
import os
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "Suppressions",
    "collect_files",
    "lint_file",
    "lint_paths",
]

#: ``# reprolint: disable=a,b -- why`` / ``# reprolint: disable-file=a``
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)

#: Comment-only line: nothing but whitespace before the ``#``.
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Finding:
    """One contract violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Suppressions:
    """Per-file suppression state parsed from the raw source lines."""

    def __init__(self, lines: Sequence[str]) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()
        for lineno, text in enumerate(lines, start=1):
            m = _SUPPRESS_RE.search(text)
            if m is None:
                continue
            # Everything after ``--`` is the reviewer-facing
            # justification, not a rule name.
            rule_text = m.group("rules").split("--", 1)[0]
            rules = {r.strip() for r in rule_text.split(",") if r.strip()}
            if m.group("kind") == "disable-file":
                self._file_wide |= rules
                continue
            self._by_line.setdefault(lineno, set()).update(rules)
            if _COMMENT_ONLY_RE.match(text):
                # A standalone suppression comment guards the next
                # statement line; intervening comment/blank lines (the
                # justification may wrap) stay transparent.
                guard = lineno + 1
                while guard <= len(lines) and (
                    not lines[guard - 1].strip()
                    or _COMMENT_ONLY_RE.match(lines[guard - 1])
                ):
                    guard += 1
                self._by_line.setdefault(guard, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "all" in self._file_wide or rule in self._file_wide:
            return True
        active = self._by_line.get(line)
        return active is not None and ("all" in active or rule in active)


@dataclass
class LintContext:
    """Everything a rule needs to check one file."""

    path: str  # repo-relative, forward slashes
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: Suppressions | None = None

    def in_dir(self, *prefixes: str) -> bool:
        return any(self.path.startswith(p) for p in prefixes)


class Rule:
    """Base class: one machine-checked project contract."""

    #: Report / suppression id, kebab-case.
    name: str = ""
    #: One-line statement of the contract the rule encodes.
    contract: str = ""
    #: Path prefixes the rule applies to; empty tuple = every file.
    scope: tuple[str, ...] = ()
    #: Path prefixes exempted even when inside ``scope``.
    exclude: tuple[str, ...] = ()

    def applies(self, ctx: LintContext) -> bool:
        if self.exclude and ctx.in_dir(*self.exclude):
            return False
        return not self.scope or ctx.in_dir(*self.scope)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: LintContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def _abs(path: str, root: str) -> str:
    """Resolve ``path`` against ``root`` (not the process CWD)."""
    if os.path.isabs(path):
        return path
    return os.path.abspath(os.path.join(root, path))


def _norm_rel(path: str, root: str) -> str:
    rel = os.path.relpath(_abs(path, root), root)
    return rel.replace(os.sep, "/")


def collect_files(paths: Sequence[str], root: str | None = None) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated list of
    repo-relative ``.py`` paths (hidden dirs and ``__pycache__``
    skipped)."""
    root = os.path.abspath(root or os.getcwd())
    out: set[str] = set()
    for p in paths:
        ap = _abs(p, root)
        if os.path.isfile(ap):
            if ap.endswith(".py"):
                out.add(_norm_rel(ap, root))
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for fn in sorted(filenames):
                if fn.endswith(".py"):
                    out.add(_norm_rel(os.path.join(dirpath, fn), root))
    return sorted(out)


def lint_file(
    path: str, rules: Iterable[Rule], root: str | None = None
) -> list[Finding]:
    """Run every applicable rule over one file; suppressions applied."""
    root = os.path.abspath(root or os.getcwd())
    rel = _norm_rel(path, root)
    with open(os.path.join(root, rel), encoding="utf-8") as fh:
        source = fh.read()
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return [
            Finding(
                rule="parse-error",
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    ctx = LintContext(
        path=rel, tree=tree, lines=lines, suppressions=Suppressions(lines)
    )
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for f in rule.check(ctx):
            assert ctx.suppressions is not None
            if not ctx.suppressions.is_suppressed(f.rule, f.line):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Iterable[Rule] | None = None,
    root: str | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` with ``rules`` (default:
    the full registry).  Returns findings sorted by location."""
    if rules is None:
        from tools.reprolint.rules import ALL_RULES

        rules = ALL_RULES
    rules = list(rules)
    out: list[Finding] = []
    for rel in collect_files(paths, root):
        out.extend(lint_file(rel, rules, root))
    out.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return out
