"""reprolint command line.

Usage::

    python -m tools.reprolint src tests
    python -m tools.reprolint --format json src
    python -m tools.reprolint --list-rules
    python -m tools.reprolint --rule bounded-blocking src/repro/parallel

Exit status: 0 when no findings, 1 when any finding survives
suppression, 2 on usage errors (unknown rule name, no input files).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from tools.reprolint.core import Finding, collect_files, lint_paths
from tools.reprolint.rules import ALL_RULES

__all__ = ["main", "render_json", "render_text"]


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: [rule] message`` line per finding plus a
    summary tail."""
    lines = [f.render() for f in findings]
    n = len(findings)
    lines.append(f"reprolint: {n} finding{'s' if n != 1 else ''}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document: ``{"findings": [...], "count": N}``."""
    doc = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def _list_rules() -> str:
    width = max(len(r.name) for r in ALL_RULES)
    out = []
    for r in ALL_RULES:
        scope = ", ".join(r.scope) if r.scope else "(all files)"
        out.append(f"{r.name:<{width}}  {scope}")
        out.append(f"{'':<{width}}  {r.contract}")
    return "\n".join(out)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Contract-enforcing static analysis for the repro tree.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("reprolint: no input paths", file=sys.stderr)
        return 2

    rules = list(ALL_RULES)
    if args.rule:
        by_name = {r.name: r for r in ALL_RULES}
        unknown = [n for n in args.rule if n not in by_name]
        if unknown:
            print(
                f"reprolint: unknown rule(s): {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        rules = [by_name[n] for n in args.rule]

    if not collect_files(args.paths):
        print("reprolint: no .py files under given paths", file=sys.stderr)
        return 2

    findings = lint_paths(args.paths, rules)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
