"""Shim for legacy editable installs (no `wheel` package on the CI box)."""

from setuptools import setup

setup()
