"""Setup shim for legacy editable installs (no `wheel` package on the
CI box).  The ``py.typed`` marker must travel with the package so
installed consumers get the inline annotations (PEP 561)."""

from setuptools import find_packages, setup

setup(
    name="repro-picasso",
    version="0.8.0",
    description=(
        "Reproduction of Picasso: GPU graph coloring for Pauli-string "
        "grouping"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.11",
    install_requires=["numpy"],
    zip_safe=False,
)
