"""Tests for greedy coloring and the ordering heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import (
    ALL_ORDERS,
    degeneracy,
    greedy_coloring,
    largest_first_order,
    smallest_last_order,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    random_bipartite,
    star_graph,
)


@pytest.mark.parametrize("order", ALL_ORDERS)
class TestProperColoringEveryOrder:
    def test_random_graph(self, order):
        g = erdos_renyi(60, 0.3, seed=5)
        r = greedy_coloring(g, order, seed=1)
        assert g.validate_coloring(r.colors)
        assert r.algorithm == f"greedy-{order.upper()}"
        assert r.peak_bytes > 0
        assert r.elapsed_s >= 0

    def test_complete_graph_needs_n(self, order):
        g = complete_graph(7)
        r = greedy_coloring(g, order, seed=1)
        assert r.n_colors == 7

    def test_empty_graph_one_color(self, order):
        r = greedy_coloring(empty_graph(5), order, seed=1)
        assert r.n_colors == 1

    def test_star_two_colors(self, order):
        r = greedy_coloring(star_graph(20), order, seed=1)
        assert r.n_colors == 2

    def test_even_cycle_two_colors(self, order):
        # Greedy on a cycle can use 3, but never more.
        r = greedy_coloring(cycle_graph(10), order, seed=1)
        assert r.n_colors <= 3


class TestOrderings:
    def test_lf_descending_degree(self):
        g = star_graph(6)
        order = largest_first_order(g)
        assert order[0] == 0  # hub has max degree

    def test_sl_is_permutation(self):
        g = erdos_renyi(40, 0.4, seed=2)
        order = smallest_last_order(g)
        np.testing.assert_array_equal(np.sort(order), np.arange(40))

    def test_sl_colors_bounded_by_degeneracy(self):
        for seed in range(5):
            g = erdos_renyi(50, 0.3, seed=seed)
            r = greedy_coloring(g, "sl")
            assert r.n_colors <= degeneracy(g) + 1

    def test_degeneracy_known_values(self):
        assert degeneracy(complete_graph(6)) == 5
        assert degeneracy(cycle_graph(9)) == 2
        assert degeneracy(star_graph(10)) == 1
        assert degeneracy(empty_graph(4)) == 0

    def test_unknown_order_raises(self):
        with pytest.raises(ValueError):
            greedy_coloring(complete_graph(3), "bogus")

    def test_random_order_seeded(self):
        g = erdos_renyi(30, 0.5, seed=0)
        a = greedy_coloring(g, "random", seed=3)
        b = greedy_coloring(g, "random", seed=3)
        np.testing.assert_array_equal(a.colors, b.colors)


class TestQualityOrdering:
    """Statistical expectations from the survey + paper Table III."""

    def test_dlf_not_worse_than_natural_on_average(self):
        wins = 0
        for seed in range(8):
            g = erdos_renyi(80, 0.5, seed=seed)
            c_dlf = greedy_coloring(g, "dlf").n_colors
            c_nat = greedy_coloring(g, "natural").n_colors
            wins += c_dlf <= c_nat
        assert wins >= 6

    def test_bipartite_all_orders_reasonable(self):
        g = random_bipartite(30, 30, 0.5, seed=1)
        for order in ALL_ORDERS:
            r = greedy_coloring(g, order, seed=0)
            assert g.validate_coloring(r.colors)
            assert r.n_colors <= 8  # chromatic number is 2

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_never_exceeds_max_degree_plus_one(self, seed):
        g = erdos_renyi(40, 0.4, seed=seed)
        for order in ALL_ORDERS:
            r = greedy_coloring(g, order, seed=seed)
            assert r.n_colors <= g.max_degree() + 1
