"""Tests for Luby MIS coloring and iterated-greedy recoloring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import (
    greedy_coloring,
    iterated_greedy,
    luby_coloring,
    luby_mis,
)
from repro.coloring.base import ColoringResult
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    star_graph,
)
from repro.util.rng import as_generator


class TestLubyMis:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_independent_and_maximal(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 50))
        g = erdos_renyi(n, float(rng.random()), seed=seed)
        mis = luby_mis(g, np.ones(n, dtype=bool), as_generator(seed))
        e = g.edges()
        if len(e):
            # Independence: no edge inside the set.
            assert not (mis[e[:, 0]] & mis[e[:, 1]]).any()
        # Maximality: every vertex outside has a neighbor inside.
        for v in np.nonzero(~mis)[0]:
            assert mis[g.neighbors(v)].any()

    def test_restricted_candidates(self):
        g = complete_graph(6)
        cand = np.zeros(6, dtype=bool)
        cand[2] = cand[4] = True
        mis = luby_mis(g, cand, as_generator(0))
        assert mis.sum() == 1  # K6: only one of the two candidates
        assert mis[2] or mis[4]


class TestLubyColoring:
    def test_proper_on_random(self):
        g = erdos_renyi(60, 0.4, seed=1)
        r = luby_coloring(g, seed=0)
        assert g.validate_coloring(r.colors)
        assert r.stats["rounds"] == r.n_colors

    def test_complete(self):
        assert luby_coloring(complete_graph(7), seed=0).n_colors == 7

    def test_empty(self):
        assert luby_coloring(empty_graph(5), seed=0).n_colors == 1

    def test_star(self):
        assert luby_coloring(star_graph(12), seed=0).n_colors == 2

    def test_worse_than_greedy_on_average(self):
        """The historical motivation for JP: Luby burns a color per MIS."""
        worse = 0
        for seed in range(6):
            g = erdos_renyi(80, 0.5, seed=seed)
            c_luby = luby_coloring(g, seed=seed).n_colors
            c_dlf = greedy_coloring(g, "dlf").n_colors
            worse += c_luby >= c_dlf
        assert worse >= 4


class TestIteratedGreedy:
    def test_never_worse(self):
        for seed in range(5):
            g = erdos_renyi(70, 0.5, seed=seed)
            base = greedy_coloring(g, "natural")
            improved = iterated_greedy(g, base, rounds=6, seed=seed)
            assert improved.n_colors <= base.n_colors
            assert g.validate_coloring(improved.colors)

    def test_improves_bad_start(self):
        """A natural-order coloring of a random graph usually has slack."""
        wins = 0
        for seed in range(6):
            g = erdos_renyi(100, 0.5, seed=seed)
            base = greedy_coloring(g, "natural")
            improved = iterated_greedy(g, base, rounds=9, seed=seed)
            wins += improved.n_colors < base.n_colors
        assert wins >= 3

    def test_cycle_optimal_fixed_point(self):
        g = cycle_graph(8)
        base = greedy_coloring(g, "natural")
        improved = iterated_greedy(g, base, rounds=3, seed=0)
        assert improved.n_colors == 2

    def test_rejects_incomplete(self):
        g = cycle_graph(5)
        bad = ColoringResult(np.array([0, 1, -1, 0, 1]), "x")
        with pytest.raises(ValueError):
            iterated_greedy(g, bad)

    def test_algorithm_label(self):
        g = cycle_graph(6)
        improved = iterated_greedy(g, greedy_coloring(g, "lf"), rounds=1, seed=0)
        assert improved.algorithm == "greedy-LF+ig"
