"""The coloring-engine subsystem: registry, cross-engine equivalence,
the round-synchronous parallel list engine, and provenance.

CI runs this file with ``REPRO_TEST_N_WORKERS=2`` and under a forced
``spawn`` start method, like the parallel backend suite."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import (
    ColoringResult,
    greedy_coloring,
    jones_plassmann_ldf,
    luby_coloring,
    speculative_coloring,
)
from repro.coloring.engine import (
    ListColoringEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.core import Picasso, PicassoParams
from repro.core.sources import PauliComplementSource
from repro.device.sim import DeviceSim
from repro.graphs import complement_graph, complete_graph, empty_graph, erdos_renyi
from repro.parallel.executor import PoolExecutor, SerialExecutor
from repro.pauli import random_pauli_set

#: CI pins the pool size via REPRO_TEST_N_WORKERS (mirrors tests/parallel).
_CI_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))

ALL_ENGINES = ("greedy-dynamic", "sets", "greedy-static", "parallel-list")


def _random_instance(seed, n_lo=2, n_hi=40):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_lo, n_hi))
    gc = erdos_renyi(n, float(rng.random()), seed=seed)
    L = int(rng.integers(1, 6))
    P = int(rng.integers(L, L + 10))
    lists = np.stack(
        [rng.choice(P, size=L, replace=False) for _ in range(n)]
    ).astype(np.int64)
    return gc, lists


def assert_valid_outcome(gc, col_lists, outcome):
    """The invariants every engine must satisfy: colors from the
    vertex's own list, no monochrome conflict edge, and Vu == the
    ``-1``-colored vertices exactly (identical rollover semantics)."""
    colors, vu = outcome.colors, outcome.uncolored
    colored = np.nonzero(colors >= 0)[0]
    for v in colored:
        assert colors[v] in col_lists[v]
    e = gc.edges()
    if len(e):
        both = (colors[e[:, 0]] >= 0) & (colors[e[:, 1]] >= 0)
        assert not (colors[e[both, 0]] == colors[e[both, 1]]).any()
    np.testing.assert_array_equal(np.sort(vu), np.nonzero(colors < 0)[0])
    assert len(colored) + len(vu) == gc.n_vertices


class TestRegistry:
    def test_available(self):
        assert set(ALL_ENGINES) <= set(available_engines())

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown coloring engine"):
            get_engine("nope")

    def test_duplicate_registration_rejected(self):
        class Dup(ListColoringEngine):
            name = "greedy-dynamic"

            def color(self, *a, **k):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_engine(Dup)

    def test_unnamed_registration_rejected(self):
        class NoName(ListColoringEngine):
            def color(self, *a, **k):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ValueError, match="non-empty name"):
            register_engine(NoName)

    def test_engine_knobs(self):
        assert get_engine("greedy-static", order="lf").order == "lf"
        assert get_engine("parallel-list", max_rounds=7).max_rounds == 7
        with pytest.raises(TypeError):
            get_engine("greedy-dynamic", order="lf")

    def test_provenance_fields(self):
        gc, lists = _random_instance(5)
        for name in ALL_ENGINES:
            out = get_engine(name).color(gc, lists, rng=0)
            assert out.engine == name
            assert out.n_rounds >= 1
            assert out.peak_bytes > 0


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("name", ALL_ENGINES)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_every_engine_respects_lists(self, name, seed):
        gc, lists = _random_instance(seed)
        out = get_engine(name).color(gc, lists, rng=seed)
        assert_valid_outcome(gc, lists, out)

    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_greedy_dynamic_matches_sets_bit_identical(self, seed):
        gc, lists = _random_instance(seed)
        a = get_engine("greedy-dynamic").color(gc, lists, rng=seed)
        b = get_engine("sets").color(gc, lists, rng=seed)
        np.testing.assert_array_equal(a.colors, b.colors)
        np.testing.assert_array_equal(a.uncolored, b.uncolored)

    def test_forced_vu(self):
        """K3 with identical single-color lists: one vertex colored,
        two roll into Vu — in every engine."""
        gc = complete_graph(3)
        lists = np.zeros((3, 1), dtype=np.int64)
        for name in ALL_ENGINES:
            out = get_engine(name).color(gc, lists, rng=0)
            assert (out.colors >= 0).sum() == 1, name
            assert len(out.uncolored) == 2, name

    def test_padding_rows_join_vu(self):
        gc = empty_graph(3)
        lists = np.array([[0, 1], [-1, -1], [2, 0]], dtype=np.int64)
        for name in ("greedy-dynamic", "parallel-list"):
            out = get_engine(name).color(gc, lists, rng=0)
            assert out.colors[1] == -1, name
            np.testing.assert_array_equal(out.uncolored, [1])

    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_zero_vertices(self, name):
        out = get_engine(name).color(
            empty_graph(0), np.empty((0, 2), dtype=np.int64), rng=0
        )
        assert len(out.colors) == 0 and len(out.uncolored) == 0


class TestParallelListEngine:
    def test_deterministic_per_seed(self):
        gc, lists = _random_instance(11, n_lo=20, n_hi=60)
        a = get_engine("parallel-list").color(gc, lists, rng=5)
        b = get_engine("parallel-list").color(gc, lists, rng=5)
        np.testing.assert_array_equal(a.colors, b.colors)
        assert a.n_rounds == b.n_rounds

    def test_pool_matches_serial(self):
        """Rounds are pure functions of committed state, so the strip
        partition cannot change the output: serial, SerialExecutor and
        an n-worker pool produce identical colorings and Vu."""
        gc, lists = _random_instance(12, n_lo=30, n_hi=80)
        eng = get_engine("parallel-list")
        ref = eng.color(gc, lists, rng=9)
        ser = eng.color(gc, lists, rng=9, executor=SerialExecutor())
        np.testing.assert_array_equal(ref.colors, ser.colors)
        with PoolExecutor(_CI_WORKERS) as ex:
            par = eng.color(gc, lists, rng=9, executor=ex)
        np.testing.assert_array_equal(ref.colors, par.colors)
        np.testing.assert_array_equal(ref.uncolored, par.uncolored)
        assert ref.n_rounds == par.n_rounds

    def test_pool_spawn_matches_serial(self):
        """The fork-less path (Windows / macOS default) must agree too."""
        gc, lists = _random_instance(13, n_lo=20, n_hi=50)
        eng = get_engine("parallel-list")
        ref = eng.color(gc, lists, rng=2)
        with PoolExecutor(2, start_method="spawn") as ex:
            par = eng.color(gc, lists, rng=2, executor=ex)
        np.testing.assert_array_equal(ref.colors, par.colors)
        np.testing.assert_array_equal(ref.uncolored, par.uncolored)

    def test_rounds_reuse_one_pool_with_delta(self):
        """All rounds of one run go through a single persistent pool
        (same worker pids before and after), with the palette installed
        under a ``("color", ...)`` channel token."""
        gc, lists = _random_instance(14, n_lo=40, n_hi=90)
        with PoolExecutor(2) as ex:
            out = get_engine("parallel-list").color(gc, lists, rng=3, executor=ex)
            pids = ex.worker_pids()
            assert len(pids) == 2
            out2 = get_engine("parallel-list").color(gc, lists, rng=3, executor=ex)
            assert ex.worker_pids() == pids  # no pool churn across runs
        np.testing.assert_array_equal(out.colors, out2.colors)

    def test_max_rounds_knob(self):
        gc = complete_graph(4)
        lists = np.tile(np.arange(6, dtype=np.int64), (4, 1))
        out = get_engine("parallel-list", max_rounds=10).color(gc, lists, rng=0)
        assert out.n_rounds <= 10
        assert len(out.uncolored) == 0


class TestTokenChannels:
    def test_sweep_and_color_tokens_coexist(self):
        """The PR 4 seam: alternating sweep and coloring installs on one
        persistent pool must not evict each other's delta path."""
        from repro.core.conflict import build_conflict_graph
        from repro.core.palette import assign_color_lists

        ps = random_pauli_set(120, 6, seed=21)
        src = PauliComplementSource(ps)
        _, colmasks = assign_color_lists(ps.n, 16, 4, np.random.default_rng(0))
        gc, lists = _random_instance(22, n_lo=40, n_hi=80)
        eng = get_engine("parallel-list")
        with PoolExecutor(2) as ex:
            ref_g, m_ref = build_conflict_graph(
                ps.n, src.edge_mask, colmasks
            )
            ref_c = eng.color(gc, lists, rng=4)
            for _ in range(2):
                g, m = build_conflict_graph(
                    ps.n, src.edge_mask, colmasks, executor=ex, source=src
                )
                assert m == m_ref
                np.testing.assert_array_equal(g.offsets, ref_g.offsets)
                np.testing.assert_array_equal(g.targets, ref_g.targets)
                sweep_token = ex._installed_token
                assert sweep_token is not None and sweep_token[0] == "sweep"
                out = eng.color(gc, lists, rng=4, executor=ex)
                np.testing.assert_array_equal(out.colors, ref_c.colors)
                # The color install did not evict the sweep channel.
                assert ex.holds_token(sweep_token)


class TestPicassoEndToEnd:
    def test_parallel_list_end_to_end(self):
        """Acceptance: ``PicassoParams(color_engine="parallel-list")``
        produces a valid list coloring with Vu rollover preserved and
        per-seed deterministic output for a fixed worker count."""
        ps = random_pauli_set(400, 10, seed=30)
        params = PicassoParams(color_engine="parallel-list")
        r1 = Picasso(params=params, seed=7).color(ps)
        assert PauliComplementSource(ps).validate(r1.colors)
        assert r1.engine == "parallel-list"
        assert r1.stats["color_rounds"] >= r1.n_iterations
        r2 = Picasso(params=params, seed=7).color(ps)
        np.testing.assert_array_equal(r1.colors, r2.colors)

    def test_worker_count_invariant(self):
        """Round-synchronous rounds are partition-independent, so even
        across worker counts the coloring is identical."""
        ps = random_pauli_set(300, 8, seed=31)
        base = PicassoParams(color_engine="parallel-list")
        ref = Picasso(params=base, seed=3).color(ps)
        par = Picasso(
            params=base.with_(n_workers=_CI_WORKERS), seed=3
        ).color(ps)
        np.testing.assert_array_equal(ref.colors, par.colors)

    def test_auto_resolution_preserves_legacy_pairing(self):
        assert PicassoParams().resolved_color_engine() == "greedy-dynamic"
        assert PicassoParams(engine="pairs").resolved_color_engine() == "sets"
        p = PicassoParams(conflict_order="lf")
        assert p.resolved_color_engine() == "greedy-static"
        assert p.color_engine_knobs() == {"order": "lf"}
        q = PicassoParams(color_engine="sets", engine="tiled")
        assert q.resolved_color_engine() == "sets"

    def test_unknown_color_engine_rejected(self):
        with pytest.raises(ValueError, match="color_engine"):
            PicassoParams(color_engine="bogus")

    def test_explicit_engines_all_valid(self):
        ps = random_pauli_set(150, 6, seed=32)
        for name in ALL_ENGINES:
            r = Picasso(
                params=PicassoParams(color_engine=name), seed=1
            ).color(ps)
            assert PauliComplementSource(ps).validate(r.colors), name
            assert r.engine == name


class TestDeviceCharging:
    def test_palette_scratch_charged_and_freed(self):
        gc, lists = _random_instance(40, n_lo=30, n_hi=60)
        for name in ALL_ENGINES:
            device = DeviceSim(budget_bytes=1 << 20)
            out = get_engine(name).color(gc, lists, rng=0, device=device)
            assert device.used_bytes == 0, name  # freed on exit
            assert device.peak_bytes > 0, name
            assert_valid_outcome(gc, lists, out)

    def test_scratch_oom_propagates(self):
        gc, lists = _random_instance(41, n_lo=50, n_hi=80)
        from repro.device.sim import DeviceOutOfMemory

        device = DeviceSim(budget_bytes=16)
        with pytest.raises(DeviceOutOfMemory):
            get_engine("parallel-list").color(gc, lists, rng=0, device=device)
        assert device.used_bytes == 0


class TestBaselineProvenance:
    def test_uniform_engine_and_rounds(self):
        ps = random_pauli_set(120, 6, seed=50)
        g = complement_graph(ps)
        results: list[ColoringResult] = [
            greedy_coloring(g, "dlf"),
            jones_plassmann_ldf(g, seed=0),
            speculative_coloring(g, seed=0),
            luby_coloring(g, seed=0),
        ]
        for r in results:
            assert r.engine, r.algorithm
            assert r.n_rounds >= 1, r.algorithm
            assert r.peak_bytes > 0, r.algorithm


class TestShim:
    def _fresh_shim_import(self):
        """Import the shim as if for the first time (the module-level
        warning fires once per import, so drop any cached module)."""
        import importlib
        import sys

        sys.modules.pop("repro.core.list_coloring", None)
        return importlib.import_module("repro.core.list_coloring")

    def test_import_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="repro.core.list_coloring"):
            self._fresh_shim_import()

    def test_core_list_coloring_reexports(self):
        import warnings

        import repro.coloring.greedy_list as new

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = self._fresh_shim_import()

        assert shim.greedy_list_color_dynamic is new.greedy_list_color_dynamic
        assert (
            shim.greedy_list_color_dynamic_sets
            is new.greedy_list_color_dynamic_sets
        )
        assert shim.greedy_list_color_static is new.greedy_list_color_static
        assert "DEPRECATED" in shim.__doc__

    def test_repro_core_import_does_not_warn(self):
        """The package __init__ must import from the engine home, not
        the shim — `import repro.core` alone never warns."""
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c",
             "import repro.core"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
