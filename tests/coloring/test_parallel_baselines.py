"""Tests for Jones–Plassmann-LDF and speculative (edge-based) coloring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import greedy_coloring, jones_plassmann_ldf, speculative_coloring
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    random_bipartite,
    star_graph,
)

ALGOS = [jones_plassmann_ldf, speculative_coloring]


@pytest.mark.parametrize("algo", ALGOS)
class TestCorrectness:
    def test_random_graph_proper(self, algo):
        g = erdos_renyi(70, 0.3, seed=11)
        r = algo(g, seed=0)
        assert g.validate_coloring(r.colors)
        assert (r.colors >= 0).all()

    def test_complete(self, algo):
        r = algo(complete_graph(8), seed=0)
        assert r.n_colors == 8

    def test_empty_graph(self, algo):
        r = algo(empty_graph(6), seed=0)
        assert r.n_colors == 1

    def test_zero_vertices(self, algo):
        r = algo(empty_graph(0), seed=0)
        assert r.n_vertices == 0

    def test_star(self, algo):
        r = algo(star_graph(15), seed=0)
        assert r.n_colors == 2

    def test_cycle(self, algo):
        r = algo(cycle_graph(11), seed=0)
        assert r.n_colors <= 3

    def test_deterministic_given_seed(self, algo):
        g = erdos_renyi(50, 0.4, seed=2)
        a = algo(g, seed=9)
        b = algo(g, seed=9)
        np.testing.assert_array_equal(a.colors, b.colors)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_proper_on_random_instances(self, algo, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 60))
        p = float(rng.random())
        g = erdos_renyi(n, p, seed=seed)
        r = algo(g, seed=seed)
        assert g.validate_coloring(r.colors)
        assert r.n_colors <= g.max_degree() + 1


class TestRoundBehaviour:
    def test_jp_rounds_logarithmic(self):
        g = erdos_renyi(200, 0.1, seed=1)
        r = jones_plassmann_ldf(g, seed=0)
        assert 1 <= r.stats["rounds"] <= 60

    def test_speculative_tracks_conflicts(self):
        g = erdos_renyi(100, 0.5, seed=1)
        r = speculative_coloring(g, seed=0)
        assert "conflicts" in r.stats
        assert r.stats["rounds"] >= 1


class TestMemoryAccounting:
    def test_speculative_uses_more_than_jp(self):
        """Kokkos-EB analog keeps the edge list resident -> more bytes
        (paper Table IV shape)."""
        g = erdos_renyi(150, 0.5, seed=3)
        spec = speculative_coloring(g, seed=0)
        jp = jones_plassmann_ldf(g, seed=0)
        assert spec.peak_bytes > jp.peak_bytes

    def test_quality_comparable_to_greedy(self):
        """Parallel baselines should be within ~2x of greedy-DLF quality."""
        g = erdos_renyi(120, 0.5, seed=4)
        ref = greedy_coloring(g, "dlf").n_colors
        for algo in ALGOS:
            assert algo(g, seed=0).n_colors <= 2 * ref
