"""Tests for ColoringResult and the smallest-available-color kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.base import ColoringResult, smallest_available_color


class TestSmallestAvailableColor:
    def test_empty(self):
        assert smallest_available_color(np.array([], dtype=np.int64)) == 0

    def test_all_uncolored(self):
        assert smallest_available_color(np.array([-1, -1])) == 0

    def test_gap(self):
        assert smallest_available_color(np.array([0, 2, 3])) == 1

    def test_contiguous(self):
        assert smallest_available_color(np.array([0, 1, 2])) == 3

    def test_duplicates(self):
        assert smallest_available_color(np.array([0, 0, 1, 1])) == 2

    def test_huge_colors_ignored(self):
        assert smallest_available_color(np.array([10**9])) == 0

    @given(st.lists(st.integers(min_value=-1, max_value=50), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference(self, vals):
        forbidden = np.array(vals, dtype=np.int64)
        used = {v for v in vals if v >= 0}
        expected = 0
        while expected in used:
            expected += 1
        assert smallest_available_color(forbidden) == expected


class TestColoringResult:
    def test_n_colors(self):
        r = ColoringResult(np.array([0, 2, 2, 5]), "x")
        assert r.n_colors == 3
        assert r.n_vertices == 4

    def test_color_percentage(self):
        r = ColoringResult(np.array([0, 1, 0, 1]), "x")
        assert r.color_percentage() == 50.0

    def test_empty(self):
        r = ColoringResult(np.empty(0, dtype=np.int64), "x")
        assert r.n_colors == 0
        assert r.color_percentage() == 0.0

    def test_color_classes_partition(self):
        colors = np.array([1, 0, 1, 2, 0])
        r = ColoringResult(colors, "x")
        classes = r.color_classes()
        all_vertices = np.sort(np.concatenate(classes))
        np.testing.assert_array_equal(all_vertices, np.arange(5))
        for cls in classes:
            assert len(np.unique(colors[cls])) == 1
