"""Tests for the block-tiled kernel engine (device/tiles.py).

The load-bearing property: every tiled kernel must agree exactly with
the flat pair-chunk kernels and with the scalar Python reference, over
random inputs, multi-word palettes (> 64 colors) and the degenerate
sizes n in {0, 1, 2}.
"""

import numpy as np
import pytest

from repro.core.conflict import build_conflict_graph, count_conflict_edges
from repro.core.palette import assign_color_lists
from repro.core.sources import ExplicitGraphSource, PauliComplementSource
from repro.device import (
    conflict_pair_kernel,
    conflict_pair_kernel_python,
    lists_intersect_kernel,
)
from repro.device.tiles import (
    MIN_TILE,
    TileScratch,
    anticommute_parity_block,
    conflict_hits_block,
    count_block_hits,
    iter_tiles,
    lists_intersect_block,
    sweep_block_hits,
    sweep_conflict_hits,
    tile_edge,
    tile_scratch_bytes,
    upper_triangle_mask,
)
from repro.graphs import erdos_renyi
from repro.pauli import random_pauli_set
from repro.pauli.anticommute import (
    anticommute_block_chars,
    anticommute_block_iooh,
    anticommute_block_symplectic,
    anticommute_pairs_chars,
    anticommute_pairs_iooh,
    anticommute_pairs_symplectic,
)
from repro.pauli.encoding import encode_iooh, encode_symplectic
from repro.util.chunking import num_pairs


def make_inputs(n=60, nq=6, palette=16, L=4, seed=0):
    ps = random_pauli_set(n, nq, seed=seed)
    src = PauliComplementSource(ps)
    lists, masks = assign_color_lists(n, palette, L, rng=seed) if n else (
        np.empty((0, L), dtype=np.int64),
        np.empty((0, (palette + 63) // 64), dtype=np.uint64),
    )
    return ps, src, lists, masks


class TestTileGeometry:
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 63, 64, 65, 200])
    @pytest.mark.parametrize("tile", [1, 3, 64, 100])
    def test_tiles_cover_upper_triangle_once(self, n, tile):
        seen = set()
        for r0, r1, c0, c1 in iter_tiles(n, tile):
            assert r0 < r1 <= n and c0 < c1 <= n and c0 >= r0
            mask = upper_triangle_mask(r0, r1, c0, c1)
            li, lj = np.nonzero(mask)
            for a, b in zip((li + r0).tolist(), (lj + c0).tolist()):
                assert a < b
                assert (a, b) not in seen
                seen.add((a, b))
        assert len(seen) == num_pairs(n)

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            list(iter_tiles(5, 0))

    def test_tile_edge_clamped_and_snapped(self):
        assert tile_edge(4, 0) == MIN_TILE
        assert tile_edge(4) % MIN_TILE == 0
        assert tile_edge(4, n=10) == 10  # capped by problem size
        big = tile_edge(1, 1 << 40)
        assert big % MIN_TILE == 0
        assert tile_scratch_bytes(big) > 0

    def test_scratch_views(self):
        sc = TileScratch(8)
        tmp, tb, hit = sc.views(3, 5)
        assert tmp.shape == (3, 5) and tb.shape == (3, 5) and hit.shape == (3, 5)


class TestBlockKernelsMatchPairKernels:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("nq", [3, 25, 70])
    def test_anticommute_blocks_all_kernels(self, seed, nq):
        ps = random_pauli_set(50, nq, seed=seed)
        packed = encode_iooh(ps.chars)
        x, z = encode_symplectic(ps.chars)
        ii, jj = np.triu_indices(50, k=1)
        ref = anticommute_pairs_iooh(packed, ii, jj)
        np.testing.assert_array_equal(
            anticommute_pairs_chars(ps.chars, ii, jj), ref
        )
        np.testing.assert_array_equal(
            anticommute_pairs_symplectic(x, z, ii, jj), ref
        )
        for r0, r1, c0, c1 in iter_tiles(50, 17):
            blk_iooh = anticommute_block_iooh(packed, r0, r1, c0, c1)
            blk_chars = anticommute_block_chars(ps.chars, r0, r1, c0, c1)
            blk_sym = anticommute_block_symplectic(x, z, r0, r1, c0, c1)
            keep = upper_triangle_mask(r0, r1, c0, c1)
            li, lj = np.nonzero(keep)
            expected = anticommute_pairs_iooh(packed, li + r0, lj + c0)
            np.testing.assert_array_equal(blk_iooh[li, lj], expected)
            np.testing.assert_array_equal(blk_chars[li, lj], expected)
            np.testing.assert_array_equal(blk_sym[li, lj], expected)
            np.testing.assert_array_equal(
                anticommute_parity_block(packed, r0, r1, c0, c1), blk_iooh
            )

    def test_oracle_block_matches_pairwise(self):
        ps = random_pauli_set(40, 8, seed=3)
        for kernel in ("iooh", "chars", "symplectic"):
            oracle = ps.oracle(kernel)
            blk = oracle.anticommute_block(0, 40, 0, 40)
            cblk = oracle.commute_block(0, 40, 0, 40)
            ii, jj = np.triu_indices(40, k=1)
            np.testing.assert_array_equal(blk[ii, jj], oracle.anticommute(ii, jj))
            np.testing.assert_array_equal(cblk[ii, jj], oracle.commute_edges(ii, jj))

    @pytest.mark.parametrize("palette,L", [(16, 4), (70, 9), (200, 30)])
    def test_lists_intersect_block_matches_kernel(self, palette, L):
        """Covers multi-word palettes (> 64 colors)."""
        _, _, lists, masks = make_inputs(n=45, palette=palette, L=L, seed=5)
        assert masks.shape[1] == (palette + 63) // 64
        ii, jj = np.triu_indices(45, k=1)
        ref = lists_intersect_kernel(masks, ii, jj)
        sc = TileScratch(16)
        for r0, r1, c0, c1 in iter_tiles(45, 16):
            blk = lists_intersect_block(masks, r0, r1, c0, c1, scratch=sc)
            keep = upper_triangle_mask(r0, r1, c0, c1)
            li, lj = np.nonzero(keep)
            np.testing.assert_array_equal(
                blk[li, lj].astype(np.uint8),
                lists_intersect_kernel(masks, li + r0, lj + c0),
            )
        # Scratch and no-scratch paths agree.
        np.testing.assert_array_equal(
            lists_intersect_block(masks, 0, 45, 0, 45),
            lists_intersect_block(masks, 0, 45, 0, 45, scratch=TileScratch(45)),
        )


def _hits_to_set(hits):
    out = set()
    for i, j in hits:
        out.update(zip(i.tolist(), j.tolist()))
    return out


class TestFusedConflictKernel:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n,palette,L", [(60, 16, 4), (37, 130, 11)])
    def test_three_way_equivalence(self, seed, n, palette, L):
        """tiled hits == pair-chunk kernel == scalar Python reference."""
        ps, src, lists, masks = make_inputs(n=n, palette=palette, L=L, seed=seed)
        ii, jj = np.triu_indices(n, k=1)
        fast = conflict_pair_kernel(src.edge_mask, masks, ii, jj).astype(bool)
        expected = set(zip(ii[fast].tolist(), jj[fast].tolist()))

        sets = [set(row.tolist()) for row in lists]
        slow = conflict_pair_kernel_python(src.edge_mask, sets, ii, jj).astype(bool)
        assert set(zip(ii[slow].tolist(), jj[slow].tolist())) == expected

        tiled = _hits_to_set(
            sweep_conflict_hits(n, masks, src.edge_mask, src.edge_block, tile=19)
        )
        assert tiled == expected

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_degenerate_sizes(self, n):
        ps, src, lists, masks = make_inputs(n=n, palette=4, L=2, seed=0)
        hits = _hits_to_set(sweep_conflict_hits(n, masks, src.edge_mask))
        if n < 2:
            assert hits == set()
        gt, mt = build_conflict_graph(n, src.edge_mask, masks, engine="tiled")
        gp, mp = build_conflict_graph(n, src.edge_mask, masks, engine="pairs")
        assert mt == mp == len(hits)
        np.testing.assert_array_equal(gt.offsets, gp.offsets)

    def test_dense_and_sparse_paths_agree(self):
        """Force both survivor strategies and compare."""
        _, src, _, masks = make_inputs(n=50, palette=12, L=6, seed=7)
        via_block = _hits_to_set([
            conflict_hits_block(
                masks, 0, 50, 0, 50,
                edge_mask_fn=src.edge_mask,
                edge_block_fn=src.edge_block,
                dense_edge_fraction=0.0,  # always block oracle
            )
        ])
        via_gather = _hits_to_set([
            conflict_hits_block(
                masks, 0, 50, 0, 50,
                edge_mask_fn=src.edge_mask,
                edge_block_fn=None,  # always pairwise gather
            )
        ])
        assert via_block == via_gather

    def test_requires_an_oracle(self):
        _, _, _, masks = make_inputs(n=10)
        with pytest.raises(ValueError):
            conflict_hits_block(masks, 0, 10, 0, 10)

    def test_unknown_engine_rejected(self):
        _, src, _, masks = make_inputs(n=10)
        with pytest.raises(ValueError):
            build_conflict_graph(10, src.edge_mask, masks, engine="warp")


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_identical_csr_including_arc_order(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 120))
        nq = int(rng.integers(4, 12))  # 4**nq >= 256 > max n
        palette = int(rng.integers(2, 90))
        L = int(rng.integers(1, min(6, palette) + 1))
        ps = random_pauli_set(n, nq, seed=seed)
        src = PauliComplementSource(ps)
        _, masks = assign_color_lists(n, palette, L, rng=seed)
        gt, mt = build_conflict_graph(
            n, src.edge_mask, masks, engine="tiled",
            edge_block_fn=src.edge_block, tile_bytes=1 << 14,
        )
        gp, mp = build_conflict_graph(
            n, src.edge_mask, masks, chunk_size=97, engine="pairs"
        )
        assert mt == mp
        np.testing.assert_array_equal(gt.offsets, gp.offsets)
        np.testing.assert_array_equal(gt.targets, gp.targets)
        assert mt == count_conflict_edges(
            n, src.edge_mask, masks, engine="tiled", edge_block_fn=src.edge_block
        )
        assert mt == count_conflict_edges(
            n, src.edge_mask, masks, chunk_size=53, engine="pairs"
        )

    def test_explicit_graph_edge_block(self):
        g = erdos_renyi(70, 0.3, seed=9)
        src = ExplicitGraphSource(g)
        for r0, r1, c0, c1 in iter_tiles(70, 23):
            blk = src.edge_block(r0, r1, c0, c1)
            keep = upper_triangle_mask(r0, r1, c0, c1)
            li, lj = np.nonzero(keep)
            np.testing.assert_array_equal(
                blk[li, lj], src.edge_mask(li + r0, lj + c0)
            )


class TestBlockSweeps:
    def test_sweep_and_count_agree(self):
        ps = random_pauli_set(55, 7, seed=11)
        oracle = ps.oracle()
        hits = _hits_to_set(sweep_block_hits(55, oracle.anticommute_block, 16))
        assert len(hits) == count_block_hits(55, oracle.anticommute_block, 16)
        ii, jj = np.triu_indices(55, k=1)
        anti = oracle.anticommute(ii, jj).astype(bool)
        assert hits == set(zip(ii[anti].tolist(), jj[anti].tolist()))
