"""Tests for device kernels and the Algorithm 3 CSR build."""

import numpy as np
import pytest

from repro.core.conflict import build_conflict_graph, count_conflict_edges
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.device import (
    DeviceOutOfMemory,
    DeviceSim,
    build_conflict_csr,
    conflict_pair_kernel,
    conflict_pair_kernel_python,
    exclusive_scan,
    lists_intersect_kernel,
)
from repro.pauli import random_pauli_set


def make_inputs(n=60, nq=6, palette=16, L=4, seed=0):
    ps = random_pauli_set(n, nq, seed=seed)
    src = PauliComplementSource(ps)
    lists, masks = assign_color_lists(n, palette, L, rng=seed)
    return src, lists, masks


class TestKernels:
    def test_lists_intersect_matches_sets(self):
        _, lists, masks = make_inputs()
        ii, jj = np.triu_indices(60, k=1)
        got = lists_intersect_kernel(masks, ii, jj)
        sets = [set(row.tolist()) for row in lists]
        expected = np.array(
            [1 if sets[a] & sets[b] else 0 for a, b in zip(ii, jj)], dtype=np.uint8
        )
        np.testing.assert_array_equal(got, expected)

    def test_vectorized_matches_python_reference(self):
        src, lists, masks = make_inputs()
        ii, jj = np.triu_indices(60, k=1)
        fast = conflict_pair_kernel(src.edge_mask, masks, ii, jj)
        sets = [set(row.tolist()) for row in lists]
        slow = conflict_pair_kernel_python(src.edge_mask, sets, ii, jj)
        np.testing.assert_array_equal(fast, slow)

    def test_sorted_merge_matches_bitset(self):
        """The paper's O(L) sorted-merge test (§IV-A) must agree with
        the packed-bitset kernel on every pair."""
        from repro.device import lists_intersect_sorted

        _, lists, masks = make_inputs(n=50, palette=20, L=6, seed=7)
        sorted_lists = np.sort(lists, axis=1)
        ii, jj = np.triu_indices(50, k=1)
        np.testing.assert_array_equal(
            lists_intersect_sorted(sorted_lists, ii, jj),
            lists_intersect_kernel(masks, ii, jj),
        )

    def test_sorted_merge_single_column(self):
        from repro.device import lists_intersect_sorted

        lists = np.array([[3], [3], [5]], dtype=np.int64)
        got = lists_intersect_sorted(lists, np.array([0, 0]), np.array([1, 2]))
        np.testing.assert_array_equal(got, [1, 0])

    def test_exclusive_scan(self):
        np.testing.assert_array_equal(
            exclusive_scan(np.array([2, 0, 3])), [0, 2, 2, 5]
        )
        np.testing.assert_array_equal(exclusive_scan(np.array([], dtype=int)), [0])


class TestHostBuild:
    def test_counts_match_graph(self):
        src, _, masks = make_inputs()
        gc, m = build_conflict_graph(60, src.edge_mask, masks, chunk_size=61)
        assert gc.n_edges == m
        assert m == count_conflict_edges(60, src.edge_mask, masks, chunk_size=37)

    def test_conflict_subset_of_complement(self):
        src, _, masks = make_inputs()
        gc, _ = build_conflict_graph(60, src.edge_mask, masks)
        e = gc.edges()
        if len(e):
            assert src.edge_mask(e[:, 0], e[:, 1]).all()


class TestAlgorithm3:
    def test_matches_host_build(self):
        src, _, masks = make_inputs(n=80)
        host_gc, host_m = build_conflict_graph(80, src.edge_mask, masks)
        dev = DeviceSim(budget_bytes=1 << 22)
        dev_gc, stats = build_conflict_csr(80, src.edge_mask, masks, dev)
        assert stats.n_conflict_edges == host_m
        np.testing.assert_array_equal(dev_gc.offsets, host_gc.offsets)
        for v in range(80):
            np.testing.assert_array_equal(
                np.sort(dev_gc.neighbors(v)), np.sort(host_gc.neighbors(v))
            )

    def test_all_memory_freed_after_build(self):
        src, _, masks = make_inputs(n=40)
        dev = DeviceSim(budget_bytes=1 << 22)
        build_conflict_csr(40, src.edge_mask, masks, dev)
        assert dev.used_bytes == 0
        assert dev.peak_bytes > 0

    def test_device_vs_host_csr_path(self):
        """Plenty of budget -> CSR assembled on device; cramped budget
        (but enough for COO) -> host fallback (Alg. 3 lines 5-8)."""
        src, _, masks = make_inputs(n=80)
        roomy = DeviceSim(budget_bytes=1 << 24)
        _, s1 = build_conflict_csr(80, src.edge_mask, masks, roomy)
        assert s1.built_on_device
        # Budget sized so COO fits but CSR (2x) does not: compute actual
        # edge count then craft the budget.
        m = s1.n_conflict_edges
        fixed = masks.nbytes + 2 * 80 * 4  # colmasks + counters
        coo_bytes = 2 * m * 4 + 4  # just over the edge list
        cramped = DeviceSim(budget_bytes=fixed + coo_bytes)
        _, s2 = build_conflict_csr(80, src.edge_mask, masks, cramped)
        assert not s2.built_on_device
        assert s2.n_conflict_edges == m

    def test_oom_on_tiny_budget(self):
        src, _, masks = make_inputs(n=80)
        dev = DeviceSim(budget_bytes=masks.nbytes + 2 * 80 * 4 + 64)
        with pytest.raises(DeviceOutOfMemory):
            build_conflict_csr(80, src.edge_mask, masks, dev)

    def test_parallel_build_bit_identical_and_scratch_per_worker(self):
        """A multi-worker Algorithm 3 build returns the same CSR and
        charges one tile scratch per worker against the budget."""
        src, _, masks = make_inputs(n=80)
        serial_dev = DeviceSim(budget_bytes=1 << 24)
        ref, s_ref = build_conflict_csr(
            80, src.edge_mask, masks, serial_dev, edge_block_fn=src.edge_block
        )
        par_dev = DeviceSim(budget_bytes=1 << 24)
        got, s_got = build_conflict_csr(
            80, src.edge_mask, masks, par_dev,
            edge_block_fn=src.edge_block, n_workers=2,
        )
        assert s_got.n_workers == 2
        assert s_got.n_conflict_edges == s_ref.n_conflict_edges
        np.testing.assert_array_equal(got.offsets, ref.offsets)
        np.testing.assert_array_equal(got.targets, ref.targets)
        # Same tile edge fits both budgets here, so the only difference
        # is the second worker's private scratch.
        assert par_dev.peak_bytes > serial_dev.peak_bytes

    def test_parallel_scratch_pressure_degrades_to_pairs(self):
        """When per-worker scratch cannot fit, the build falls back to
        the scratch-free pair engine instead of overcommitting."""
        src, _, masks = make_inputs(n=80)
        fixed = masks.nbytes + 2 * 80 * 4
        dev = DeviceSim(budget_bytes=fixed + 110 * 1024)
        _, stats = build_conflict_csr(
            80, src.edge_mask, masks, dev,
            edge_block_fn=src.edge_block, n_workers=8,
        )
        assert stats.engine == "pairs"
        assert stats.n_workers == 8

    def test_parallel_oom_aborts_cleanly(self):
        """COO overflow mid-stream with a pool backend must raise
        DeviceOutOfMemory promptly and tear the workers down (the
        generator close path), not hang on undelivered results."""
        src, _, masks = make_inputs(n=80)
        dev = DeviceSim(budget_bytes=masks.nbytes + 2 * 80 * 4 + 1024)
        with pytest.raises(DeviceOutOfMemory):
            build_conflict_csr(
                80, src.edge_mask, masks, dev,
                edge_block_fn=src.edge_block, n_workers=2,
            )
        assert dev.used_bytes == 0

    def test_counter_width_switch(self):
        """|V|^2 >= 2^32 should use 8-byte counters: verify the alloc
        arithmetic via peak bytes on a synthetic size."""
        # We can't run 66k vertices here; instead check the byte rule
        # directly from the module's logic.
        n_small, n_big = 1000, 70_000
        assert n_small * n_small < 2**32
        assert n_big * n_big >= 2**32
