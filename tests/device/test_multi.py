"""Tests for multi-device conflict-graph construction."""

import numpy as np
import pytest

from repro.core.conflict import build_conflict_graph
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.device import (
    DeviceOutOfMemory,
    DeviceSim,
    build_conflict_csr_multi,
)
from repro.pauli import random_pauli_set


def make_inputs(n=100, palette=14, L=5, seed=0):
    ps = random_pauli_set(n, 6, seed=seed)
    src = PauliComplementSource(ps)
    _, masks = assign_color_lists(n, palette, L, rng=seed)
    return src, masks


class TestMultiDevice:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_matches_host_build(self, k):
        src, masks = make_inputs()
        host_g, host_m = build_conflict_graph(100, src.edge_mask, masks)
        devices = [DeviceSim(budget_bytes=1 << 22, name=f"dev{r}") for r in range(k)]
        g, stats = build_conflict_csr_multi(100, src.edge_mask, masks, devices)
        assert stats.n_conflict_edges == host_m
        assert sum(stats.edges_per_device) == host_m
        np.testing.assert_array_equal(g.offsets, host_g.offsets)
        for v in range(100):
            np.testing.assert_array_equal(
                np.sort(g.neighbors(v)), np.sort(host_g.neighbors(v))
            )

    def test_aggregate_capacity_exceeds_single(self):
        """The future-work claim: an input that overflows one device
        completes on four of the same size."""
        src, masks = make_inputs(n=200, palette=10, L=5, seed=1)
        _, total_edges = build_conflict_graph(200, src.edge_mask, masks)
        # Budget sized so one device cannot hold all edges but a quarter
        # fits comfortably: fixed costs + half the edge payload.
        fixed = int(masks.nbytes) + 2 * 200 * 4
        single_budget = fixed + (2 * total_edges * 4) // 2
        with pytest.raises(DeviceOutOfMemory):
            build_conflict_csr_multi(
                200, src.edge_mask, masks, [DeviceSim(budget_bytes=single_budget)]
            )
        devices = [
            DeviceSim(budget_bytes=single_budget, name=f"dev{r}") for r in range(4)
        ]
        g, stats = build_conflict_csr_multi(200, src.edge_mask, masks, devices)
        assert stats.n_conflict_edges == total_edges

    def test_memory_freed_on_all_devices(self):
        src, masks = make_inputs()
        devices = [DeviceSim(budget_bytes=1 << 22) for _ in range(3)]
        build_conflict_csr_multi(100, src.edge_mask, masks, devices)
        assert all(d.used_bytes == 0 for d in devices)
        assert all(d.peak_bytes > 0 for d in devices)

    def test_oom_names_device(self):
        src, masks = make_inputs(n=150, palette=8, L=4, seed=2)
        tiny = int(masks.nbytes) + 2 * 150 * 4 + 64
        devices = [
            DeviceSim(budget_bytes=1 << 22, name="big"),
            DeviceSim(budget_bytes=tiny, name="small"),
        ]
        with pytest.raises(DeviceOutOfMemory, match="device 1"):
            build_conflict_csr_multi(150, src.edge_mask, masks, devices)

    def test_empty_device_list(self):
        src, masks = make_inputs()
        with pytest.raises(ValueError):
            build_conflict_csr_multi(100, src.edge_mask, masks, [])

    def test_more_devices_than_pairs(self):
        src, masks = make_inputs(n=3, palette=4, L=2, seed=3)
        devices = [DeviceSim(budget_bytes=1 << 20) for _ in range(8)]
        g, stats = build_conflict_csr_multi(3, src.edge_mask, masks, devices)
        assert g.n_vertices == 3
