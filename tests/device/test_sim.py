"""Tests for the DeviceSim allocation ledger."""

import pytest

from repro.device import DeviceOutOfMemory, DeviceSim


class TestAllocFree:
    def test_basic_cycle(self):
        dev = DeviceSim(budget_bytes=1000)
        dev.alloc("a", 400)
        assert dev.used_bytes == 400
        assert dev.available == 600
        dev.free("a")
        assert dev.used_bytes == 0

    def test_peak_tracking(self):
        dev = DeviceSim(budget_bytes=1000)
        dev.alloc("a", 300)
        dev.alloc("b", 500)
        dev.free("a")
        dev.alloc("c", 100)
        assert dev.peak_bytes == 800
        dev.reset_peak()
        assert dev.peak_bytes == dev.used_bytes == 600

    def test_oom_raises_and_counts(self):
        dev = DeviceSim(budget_bytes=100)
        with pytest.raises(DeviceOutOfMemory):
            dev.alloc("big", 101)
        assert dev.n_ooms == 1
        assert dev.used_bytes == 0  # failed alloc leaves no residue

    def test_duplicate_name_rejected(self):
        dev = DeviceSim(budget_bytes=100)
        dev.alloc("x", 10)
        with pytest.raises(ValueError):
            dev.alloc("x", 10)

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            DeviceSim().free("ghost")

    def test_negative_size(self):
        with pytest.raises(ValueError):
            DeviceSim().alloc("neg", -1)

    def test_free_all(self):
        dev = DeviceSim(budget_bytes=100)
        dev.alloc("a", 10)
        dev.alloc("b", 20)
        dev.free_all()
        assert dev.used_bytes == 0
        assert dev.live_allocations() == []

    def test_zero_size_allowed(self):
        dev = DeviceSim(budget_bytes=10)
        dev.alloc("empty", 0)
        assert dev.used_bytes == 0
