"""Kernel-backend registry, resolution policy and bit-level contract.

The contract every backend signs: the three hot primitives reproduce a
naive per-bit Python reference **exactly**, on randomized packed words,
all-zero rows and single-word matrices.  The suite parametrizes over
:func:`available_backends`, so a CI leg with numba installed runs every
property against the compiled kernels with zero test changes.
"""

import numpy as np
import pytest

from repro.core.params import PicassoParams
from repro.device.backends import (
    KernelBackend,
    available_backends,
    get_backend,
    registered_backends,
    resolve_backend,
)
from repro.device.backends import base as backends_base
from repro.device.tiles import TileScratch
from repro.pauli import random_pauli_set

BACKENDS = available_backends()


# -- registry ------------------------------------------------------------


def test_registry_contents():
    # All three implementations register even when their runtime is
    # missing; numpy is always available.
    assert registered_backends() == ("cupy", "numba", "numpy")
    assert "numpy" in BACKENDS
    assert set(BACKENDS) <= set(registered_backends())


def test_get_backend_is_singleton():
    assert get_backend("numpy") is get_backend("numpy")


def test_get_backend_unknown():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        get_backend("tpu")


def test_get_backend_unavailable():
    missing = set(registered_backends()) - set(BACKENDS)
    if not missing:
        pytest.skip("every registered backend is importable here")
    with pytest.raises(RuntimeError, match="not importable"):
        get_backend(sorted(missing)[0])


def test_register_backend_rejects_bad_names():
    from repro.device.backends import register_backend

    with pytest.raises(ValueError, match="non-empty name"):
        register_backend(type("Anon", (KernelBackend,), {"name": ""}))
    with pytest.raises(ValueError, match="already registered"):
        register_backend(type("Dup", (KernelBackend,), {"name": "numpy"}))


# -- resolution policy ---------------------------------------------------


def test_resolve_explicit_and_default():
    assert resolve_backend("numpy").name == "numpy"
    assert resolve_backend(None).name == "numpy"
    assert resolve_backend("auto").name == "numpy"


def test_resolve_env_override(monkeypatch):
    monkeypatch.setenv(backends_base.ENV_VAR, "numpy")
    assert resolve_backend(None).name == "numpy"
    monkeypatch.setenv(backends_base.ENV_VAR, "auto")
    assert resolve_backend(None).name == "numpy"


def test_resolve_unknown_falls_back_with_note(capsys):
    backends_base._FALLBACK_NOTED.discard("hexagon")
    assert resolve_backend("hexagon").name == "numpy"
    err = capsys.readouterr().err
    assert "kernel backend 'hexagon' is not registered" in err
    assert "falling back to 'numpy'" in err
    # Once per name per process: a second resolve stays quiet.
    assert resolve_backend("hexagon").name == "numpy"
    assert capsys.readouterr().err == ""


@pytest.mark.skipif(
    "numba" in BACKENDS, reason="numba importable: no fallback to observe"
)
def test_resolve_missing_numba_falls_back_with_note(capsys):
    # The graceful-skip contract of the CI numpy leg: requesting numba
    # on a host without it degrades to numpy with the one-line note.
    backends_base._FALLBACK_NOTED.discard("numba")
    assert resolve_backend("numba").name == "numpy"
    err = capsys.readouterr().err
    assert "kernel backend 'numba' has no importable runtime" in err
    assert "falling back to 'numpy'" in err


def test_params_validate_backend_name():
    assert PicassoParams(kernel_backend="numba").kernel_backend == "numba"
    with pytest.raises(ValueError, match="unknown kernel_backend"):
        PicassoParams(kernel_backend="tpu")


def test_params_resolved_kernel_backend(monkeypatch):
    monkeypatch.delenv(backends_base.ENV_VAR, raising=False)
    assert PicassoParams().resolved_kernel_backend() == "numpy"
    assert (
        PicassoParams(kernel_backend="cupy").resolved_kernel_backend()
        == "cupy"
    )
    monkeypatch.setenv(backends_base.ENV_VAR, "numba")
    assert PicassoParams().resolved_kernel_backend() == "numba"


# -- per-bit Python references -------------------------------------------


def _ref_parity_block(packed, r0, r1, c0, c1):
    out = np.empty((r1 - r0, c1 - c0), dtype=np.uint8)
    for i in range(r0, r1):
        for j in range(c0, c1):
            bits = sum(
                bin(int(a) & int(b)).count("1")
                for a, b in zip(packed[i], packed[j])
            )
            out[i - r0, j - c0] = bits & 1
    return out


def _ref_intersect_block(colmasks, r0, r1, c0, c1):
    out = np.empty((r1 - r0, c1 - c0), dtype=bool)
    for i in range(r0, r1):
        for j in range(c0, c1):
            out[i - r0, j - c0] = any(
                int(a) & int(b) for a, b in zip(colmasks[i], colmasks[j])
            )
    return out


def _ref_lowest_set_bit_rows(masks):
    out = np.empty(len(masks), dtype=np.int64)
    for i, row in enumerate(masks):
        val = 0
        for w, word in enumerate(row):
            if int(word):
                val = int(word)
                out[i] = 64 * w + (val & -val).bit_length() - 1
                break
        else:
            out[i] = -1
    return out


def _random_words(rng, n, words, density=0.5):
    # Sparse uint64 words: dense random words almost never have
    # all-zero rows or even parities, which are the interesting cases.
    bits = rng.random((n, words * 64)) < density
    return np.packbits(
        bits, axis=1, bitorder="little"
    ).view(np.uint64).reshape(n, words)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return get_backend(request.param)


@pytest.mark.parametrize("words", [1, 3])
@pytest.mark.parametrize("density", [0.02, 0.5])
def test_parity_block_matches_reference(backend, words, density):
    rng = np.random.default_rng(7 * words)
    packed = _random_words(rng, 17, words, density)
    packed[3] = 0  # all-zero row
    for r0, r1, c0, c1 in [(0, 17, 0, 17), (2, 9, 5, 17), (0, 1, 16, 17)]:
        got = backend.anticommute_parity_block(packed, r0, r1, c0, c1)
        ref = _ref_parity_block(packed, r0, r1, c0, c1)
        assert got.dtype == np.uint8
        np.testing.assert_array_equal(got, ref)


@pytest.mark.parametrize("words", [1, 3])
@pytest.mark.parametrize("density", [0.02, 0.5])
def test_intersect_block_matches_reference(backend, words, density):
    rng = np.random.default_rng(11 * words)
    colmasks = _random_words(rng, 17, words, density)
    colmasks[5] = 0  # empty palette row intersects nothing
    scratch = TileScratch(8)
    for r0, r1, c0, c1 in [(0, 17, 0, 17), (1, 9, 9, 17), (0, 8, 0, 8)]:
        sc = scratch if (r1 - r0, c1 - c0) == (8, 8) else None
        got = backend.lists_intersect_block(colmasks, r0, r1, c0, c1, sc)
        ref = _ref_intersect_block(colmasks, r0, r1, c0, c1)
        np.testing.assert_array_equal(np.asarray(got, dtype=bool), ref)


@pytest.mark.parametrize("words", [1, 4])
def test_lowest_set_bit_rows_matches_reference(backend, words):
    rng = np.random.default_rng(13 * words)
    masks = _random_words(rng, 64, words, density=0.05)
    masks[0] = 0  # all-zero row -> -1
    masks[1] = 0
    masks[1, -1] = np.uint64(1) << np.uint64(63)  # highest bit only
    got = backend.lowest_set_bit_rows(masks)
    ref = _ref_lowest_set_bit_rows(masks)
    assert got.dtype == np.int64
    np.testing.assert_array_equal(got, ref)


def test_lowest_set_bit_rows_empty_and_shape(backend):
    empty = np.empty((0, 2), dtype=np.uint64)
    assert backend.lowest_set_bit_rows(empty).shape == (0,)
    with pytest.raises(ValueError):
        backend.lowest_set_bit_rows(np.zeros(4, dtype=np.uint64))


# -- backend-dispatched drivers ------------------------------------------


def test_conflict_hits_block_dispatches(backend):
    from repro.core.palette import assign_color_lists
    from repro.device.tiles import conflict_hits_block

    rng = np.random.default_rng(3)
    _, colmasks = assign_color_lists(40, 20, 3, rng)
    ps = random_pauli_set(40, 5, seed=4)
    from repro.core.sources import PauliComplementSource

    src = PauliComplementSource(ps)
    for tile in [(0, 40, 0, 40), (3, 20, 17, 40)]:
        got = backend.conflict_hits_block(
            colmasks, *tile, edge_mask_fn=src.edge_mask
        )
        ref = conflict_hits_block(colmasks, *tile, src.edge_mask)
        np.testing.assert_array_equal(got[0], ref[0])
        np.testing.assert_array_equal(got[1], ref[1])


def test_block_hits_dispatches(backend):
    ps = random_pauli_set(30, 5, seed=5)
    from repro.core.sources import PauliComplementSource
    from repro.device.tiles import block_hits

    block_fn = PauliComplementSource(ps).edge_block
    got = backend.block_hits(block_fn, 0, 30, 0, 30)
    ref = block_hits(block_fn, 0, 30, 0, 30)
    np.testing.assert_array_equal(got[0], ref[0])
    np.testing.assert_array_equal(got[1], ref[1])
