"""Framework tests: suppressions, scoping, collection, reporters, CLI."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint.core import (
    Finding,
    Suppressions,
    collect_files,
    lint_file,
    lint_paths,
)
from tools.reprolint.cli import main, render_json, render_text
from tools.reprolint.rules import ALL_RULES


def _write(root: Path, rel: str, source: str) -> str:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return rel


def _lint(root: Path, rel: str, source: str) -> list[Finding]:
    _write(root, rel, source)
    return lint_file(rel, ALL_RULES, root=str(root))


class TestSuppressions:
    def test_same_line(self):
        sup = Suppressions(["x = 1  # reprolint: disable=some-rule"])
        assert sup.is_suppressed("some-rule", 1)
        assert not sup.is_suppressed("other-rule", 1)
        assert not sup.is_suppressed("some-rule", 2)

    def test_standalone_guards_next_statement(self):
        sup = Suppressions(
            [
                "# reprolint: disable=rule-a",
                "x = 1",
            ]
        )
        assert sup.is_suppressed("rule-a", 2)

    def test_standalone_skips_trailing_comment_lines(self):
        sup = Suppressions(
            [
                "# reprolint: disable=rule-a -- justification that",
                "# wraps onto a second comment line.",
                "",
                "x = 1",
            ]
        )
        assert sup.is_suppressed("rule-a", 4)

    def test_justification_not_parsed_as_rule(self):
        sup = Suppressions(
            ["x = 1  # reprolint: disable=rule-a -- because reasons"]
        )
        assert sup.is_suppressed("rule-a", 1)
        assert not sup.is_suppressed("because", 1)

    def test_multiple_rules(self):
        sup = Suppressions(["x  # reprolint: disable=rule-a, rule-b"])
        assert sup.is_suppressed("rule-a", 1)
        assert sup.is_suppressed("rule-b", 1)

    def test_file_wide(self):
        sup = Suppressions(["# reprolint: disable-file=rule-a", "x = 1"])
        assert sup.is_suppressed("rule-a", 99)
        assert not sup.is_suppressed("rule-b", 99)

    def test_disable_all(self):
        sup = Suppressions(["x = 1  # reprolint: disable=all"])
        assert sup.is_suppressed("anything", 1)


class TestCollectAndLint:
    def test_collect_files_sorted_and_filtered(self, tmp_path):
        _write(tmp_path, "b.py", "")
        _write(tmp_path, "a.py", "")
        _write(tmp_path, "sub/c.py", "")
        _write(tmp_path, "sub/__pycache__/d.py", "")
        _write(tmp_path, ".hidden/e.py", "")
        _write(tmp_path, "notes.txt", "")
        got = collect_files([str(tmp_path)], root=str(tmp_path))
        assert got == ["a.py", "b.py", "sub/c.py"]

    def test_parse_error_reported_not_raised(self, tmp_path):
        findings = _lint(tmp_path, "src/repro/broken.py", "def f(:\n")
        assert [f.rule for f in findings] == ["parse-error"]

    def test_scope_limits_rules(self, tmp_path):
        # A bare print outside src/repro/ is not this project's concern.
        assert _lint(tmp_path, "scripts/x.py", "print('hi')\n") == []
        assert _lint(tmp_path, "src/repro/x.py", "print('hi')\n") != []

    def test_lint_paths_sorted(self, tmp_path):
        _write(tmp_path, "src/repro/bb.py", "import random\n")
        _write(tmp_path, "src/repro/aa.py", "import random\n")
        findings = lint_paths([str(tmp_path / "src")], root=str(tmp_path))
        assert [f.path for f in findings] == [
            "src/repro/aa.py",
            "src/repro/bb.py",
        ]


class TestReporters:
    FINDINGS = [
        Finding(rule="r", path="p.py", line=3, col=7, message="msg")
    ]

    def test_text(self):
        text = render_text(self.FINDINGS)
        assert "p.py:3:7: [r] msg" in text
        assert "1 finding" in text

    def test_text_plural_zero(self):
        assert "0 findings" in render_text([])

    def test_json_round_trip(self):
        doc = json.loads(render_json(self.FINDINGS))
        assert doc["count"] == 1
        assert doc["findings"][0] == {
            "rule": "r",
            "path": "p.py",
            "line": 3,
            "col": 7,
            "message": "msg",
        }


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys, monkeypatch):
        _write(tmp_path, "src/repro/ok.py", "x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_finding(self, tmp_path, capsys, monkeypatch):
        _write(tmp_path, "src/repro/bad.py", "import random\n")
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "no-random-module" in out

    def test_json_format(self, tmp_path, capsys, monkeypatch):
        _write(tmp_path, "src/repro/bad.py", "import random\n")
        monkeypatch.chdir(tmp_path)
        assert main(["--format", "json", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "no-random-module"

    def test_rule_filter(self, tmp_path, capsys, monkeypatch):
        _write(
            tmp_path,
            "src/repro/bad.py",
            "import random\nprint('hi')\n",
        )
        monkeypatch.chdir(tmp_path)
        assert main(["--rule", "no-bare-print", "src"]) == 1
        out = capsys.readouterr().out
        assert "no-bare-print" in out
        assert "no-random-module" not in out

    def test_unknown_rule_usage_error(self, tmp_path, monkeypatch):
        _write(tmp_path, "src/repro/ok.py", "x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["--rule", "nope", "src"]) == 2

    def test_no_paths_usage_error(self):
        assert main([]) == 2

    def test_no_py_files_usage_error(self, tmp_path, monkeypatch):
        (tmp_path / "empty").mkdir()
        monkeypatch.chdir(tmp_path)
        assert main(["empty"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.name in out

    def test_module_entry_point(self, tmp_path):
        import tools

        repo_root = Path(tools.__file__).resolve().parents[1]
        _write(tmp_path, "src/repro/bad.py", "import random\n")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "src"],
            cwd=tmp_path,
            env={"PYTHONPATH": str(repo_root)},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "no-random-module" in proc.stdout


class TestRuleCatalog:
    def test_every_rule_named_and_documented(self):
        names = [r.name for r in ALL_RULES]
        assert len(names) == len(set(names)), "duplicate rule names"
        for rule in ALL_RULES:
            assert rule.name, type(rule).__name__
            assert rule.contract, rule.name


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_suppressed_findings_never_reported(tmp_path, capsys, monkeypatch, fmt):
    _write(
        tmp_path,
        "src/repro/bad.py",
        "import random  # reprolint: disable=no-random-module -- fixture\n",
    )
    monkeypatch.chdir(tmp_path)
    assert main(["--format", fmt, "src"]) == 0
