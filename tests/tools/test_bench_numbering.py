"""Bench artifact numbering: gap-tolerant trajectory resolution.

The PR sequence has holes — a lint-only PR ships no ``BENCH_PR<k>.json``
(there is no ``BENCH_PR8.json``) — so both bench tools must derive
artifact names from the highest number actually present, never from
arithmetic over an assumed-contiguous range, and the gate must compare
against the newest existing baseline without warning noise.
"""

import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from check_regression import (  # noqa: E402
    main as gate_main,
    newest_committed_bench,
    newest_pr_number,
    next_pr_number,
    quick_report_path,
)


def _mk(root: pathlib.Path, k: int, payload: dict | None = None) -> pathlib.Path:
    p = root / f"BENCH_PR{k}.json"
    p.write_text(json.dumps(payload if payload is not None else {}))
    return p


class TestTrajectoryNumbering:
    def test_gap_tolerant_newest(self, tmp_path):
        # 4, 6 and 8 missing — exactly the shipped-tree shape.
        for k in (1, 2, 3, 5, 7, 9):
            _mk(tmp_path, k)
        assert newest_committed_bench(tmp_path).name == "BENCH_PR9.json"
        assert newest_pr_number(tmp_path) == 9
        assert next_pr_number(tmp_path) == 10
        assert quick_report_path(tmp_path).name == "BENCH_PR9.quick.json"

    def test_empty_root(self, tmp_path):
        assert newest_committed_bench(tmp_path) is None
        assert newest_pr_number(tmp_path) == 0
        assert next_pr_number(tmp_path) == 1

    def test_ignores_non_trajectory_names(self, tmp_path):
        (tmp_path / "BENCH_PRx.json").write_text("{}")
        (tmp_path / "BENCH_PR30.quick.json").write_text("{}")
        (tmp_path / "BENCH_KERNELS.json").write_text("{}")
        _mk(tmp_path, 2)
        assert newest_pr_number(tmp_path) == 2

    def test_quick_path_under_results(self, tmp_path):
        _mk(tmp_path, 5)
        p = quick_report_path(tmp_path)
        assert p.parent == tmp_path / "benchmarks" / "results"


class TestRunBenchPaths:
    def test_paths_follow_trajectory(self, tmp_path, monkeypatch):
        import run_bench

        monkeypatch.setattr(run_bench, "REPO_ROOT", tmp_path)
        for k in (7, 9):  # gap at 8
            _mk(tmp_path, k)
        assert run_bench.out_path(False) == tmp_path / "BENCH_PR10.json"
        assert (
            run_bench.out_path(True)
            == tmp_path / "benchmarks" / "results" / "BENCH_PR9.quick.json"
        )
        assert (
            run_bench.telemetry_snapshot_path(True).name
            == "BENCH_PR9.quick.telemetry.prom"
        )
        assert (
            run_bench.telemetry_snapshot_path(False).name
            == "BENCH_PR10.telemetry.prom"
        )


class TestGate:
    def _report(self, total_s: float) -> dict:
        return {"cases": [{"name": "small", "tiled": {"total_s": total_s}}]}

    def test_gates_against_newest_without_noise(self, tmp_path, capsys):
        base = _mk(tmp_path, 9, self._report(1.0))
        new = tmp_path / "new.quick.json"
        new.write_text(json.dumps(self._report(1.05)))
        rc = gate_main([
            "--new", str(new), "--baseline", str(base),
            "--threshold-pct", "25", "--commit-message", "",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "warning" not in out
        assert "no regressions" in out

    def test_regression_detected(self, tmp_path, capsys):
        base = _mk(tmp_path, 9, self._report(1.0))
        new = tmp_path / "new.quick.json"
        new.write_text(json.dumps(self._report(2.0)))
        rc = gate_main([
            "--new", str(new), "--baseline", str(base),
            "--threshold-pct", "25", "--commit-message", "",
        ])
        assert rc == 1

    def test_waiver(self, tmp_path):
        base = _mk(tmp_path, 9, self._report(1.0))
        new = tmp_path / "new.quick.json"
        new.write_text(json.dumps(self._report(2.0)))
        rc = gate_main([
            "--new", str(new), "--baseline", str(base),
            "--threshold-pct", "25",
            "--commit-message", "slow on purpose [bench-waiver]",
        ])
        assert rc == 0
