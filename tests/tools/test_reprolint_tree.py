"""Integration: the shipped tree satisfies every contract, and the
typing gate's configuration is coherent."""

from pathlib import Path

from tools.reprolint.core import lint_paths
from tools.reprolint.typegate import (
    STRICT_RELAXATIONS,
    mypy_command,
    read_allowlist,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_tree_is_clean():
    """``python -m tools.reprolint src tests`` exits 0 on this repo.

    Every contract the linter encodes holds on the code that ships; a
    failure here names the file, line and rule to fix (or the
    suppression to justify).
    """
    findings = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
        root=str(REPO_ROOT),
    )
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_tools_tree_is_clean_too():
    findings = lint_paths([str(REPO_ROOT / "tools")], root=str(REPO_ROOT))
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_mypy_allowlist_entries_exist():
    files = read_allowlist()
    assert files, "allowlist must not be empty"
    for rel in files:
        assert (REPO_ROOT / rel).is_file(), rel


def test_mypy_command_is_strict():
    cmd = mypy_command(["src/repro/util/rng.py"])
    assert "--strict" in cmd
    # Relaxations must come after --strict so they win.
    for flag in STRICT_RELAXATIONS:
        assert cmd.index(flag) > cmd.index("--strict")


def test_py_typed_marker_ships():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
    assert 'package_data={"repro": ["py.typed"]}' in (
        REPO_ROOT / "setup.py"
    ).read_text()
