"""Per-rule fixture tests: one positive, one negative, one suppression
per contract, driven through the real ``lint_file`` pipeline so scope,
suppression and reporting behave exactly as on the shipped tree."""

from pathlib import Path

import pytest

from tools.reprolint.core import lint_file
from tools.reprolint.rules import ALL_RULES


def _lint(root: Path, rel: str, source: str) -> list[str]:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return [f.rule for f in lint_file(rel, ALL_RULES, root=str(root))]


# Each case: (rule, path, source, expect_hit).  The suppression variant
# is generated from every positive case automatically below.
CASES = [
    # -- executor-ownership ----------------------------------------------
    (
        "executor-ownership",
        "src/repro/x.py",
        "def f():\n"
        "    ex = make_executor('pool', 4)\n"
        "    ex.map(fn, tasks)\n",
        True,
    ),
    (
        "executor-ownership",
        "src/repro/x.py",
        "def f():\n"
        "    ex = make_executor('pool', 4)\n"
        "    try:\n"
        "        ex.map(fn, tasks)\n"
        "    finally:\n"
        "        ex.close()\n",
        False,
    ),
    (
        "executor-ownership",
        "src/repro/x.py",
        "def f():\n"
        "    with owned_executor('pool', 4) as ex:\n"
        "        ex.map(fn, tasks)\n",
        False,
    ),
    (
        "executor-ownership",
        "src/repro/x.py",
        "def f():\n    return make_executor('pool', 4)\n",
        False,
    ),
    (
        "executor-ownership",
        "src/repro/x.py",
        "def f():\n"
        "    ex = supervised_executor('cluster', failover='pool')\n"
        "    return ex\n",
        False,
    ),
    (
        "executor-ownership",
        "src/repro/x.py",
        "def f():\n    with make_executor('pool', 4) as ex:\n        pass\n",
        False,
    ),
    # The rule is scoped to the library, not tests/benches.
    (
        "executor-ownership",
        "tests/test_x.py",
        "def f():\n    ex = make_executor('pool', 4)\n",
        False,
    ),
    # -- bounded-blocking -------------------------------------------------
    (
        "bounded-blocking",
        "src/repro/parallel/x.py",
        "def f(result):\n    return result.get()\n",
        True,
    ),
    (
        "bounded-blocking",
        "src/repro/parallel/x.py",
        "def f(result):\n    return result.get(30.0)\n",
        False,
    ),
    (
        "bounded-blocking",
        "src/repro/distributed/x.py",
        "def f(conn):\n    return conn.recv()\n",
        True,
    ),
    (
        "bounded-blocking",
        "src/repro/distributed/x.py",
        "def f(proc):\n    proc.join()\n",
        True,
    ),
    (
        "bounded-blocking",
        "src/repro/parallel/x.py",
        "def f(barrier):\n    barrier.wait(timeout=5.0)\n",
        False,
    ),
    # dict.get(key) / str.join(parts) carry arguments and pass.
    (
        "bounded-blocking",
        "src/repro/parallel/x.py",
        "def f(d):\n    return d.get('key')\n",
        False,
    ),
    # Out of scope: the coloring layer makes no blocking calls itself.
    (
        "bounded-blocking",
        "src/repro/coloring/x.py",
        "def f(result):\n    return result.get()\n",
        False,
    ),
    # -- no-random-module -------------------------------------------------
    ("no-random-module", "src/repro/x.py", "import random\n", True),
    (
        "no-random-module",
        "src/repro/x.py",
        "from random import shuffle\n",
        True,
    ),
    ("no-random-module", "src/repro/x.py", "import numpy as np\n", False),
    # -- legacy-np-random -------------------------------------------------
    (
        "legacy-np-random",
        "src/repro/x.py",
        "import numpy as np\nx = np.random.rand(3)\n",
        True,
    ),
    (
        "legacy-np-random",
        "src/repro/x.py",
        "import numpy as np\nrng = np.random.default_rng(0)\n",
        True,
    ),
    (
        "legacy-np-random",
        "src/repro/x.py",
        "from numpy.random import default_rng\n",
        True,
    ),
    (
        "legacy-np-random",
        "src/repro/x.py",
        "def f(rng: 'np.random.Generator') -> None:\n    x = rng.random(3)\n",
        False,
    ),
    # rng.py is the one place allowed to touch numpy.random directly.
    (
        "legacy-np-random",
        "src/repro/util/rng.py",
        "import numpy as np\nrng = np.random.default_rng(0)\n",
        False,
    ),
    # -- no-wallclock -----------------------------------------------------
    ("no-wallclock", "src/repro/x.py", "import time\nt = time.time()\n", True),
    (
        "no-wallclock",
        "src/repro/x.py",
        "from datetime import datetime\nd = datetime.now()\n",
        True,
    ),
    (
        "no-wallclock",
        "src/repro/x.py",
        "import time\nt = time.perf_counter()\n",
        False,
    ),
    # -- telemetry-clock --------------------------------------------------
    (
        "telemetry-clock",
        "src/repro/x.py",
        "import time\nt0 = time.perf_counter()\n",
        True,
    ),
    (
        "telemetry-clock",
        "src/repro/x.py",
        "import time\nt0 = time.monotonic()\n",
        True,
    ),
    (
        "telemetry-clock",
        "src/repro/x.py",
        "from time import perf_counter\n",
        True,
    ),
    (
        "telemetry-clock",
        "src/repro/x.py",
        "from repro import telemetry\nt0 = telemetry.clock()\n",
        False,
    ),
    # time.sleep is not a timer; only the timing reads are routed.
    (
        "telemetry-clock",
        "src/repro/x.py",
        "import time\ntime.sleep(0.1)\n",
        False,
    ),
    # The telemetry package itself wraps the stdlib timer.
    (
        "telemetry-clock",
        "src/repro/telemetry/x.py",
        "import time\nt0 = time.perf_counter()\n",
        False,
    ),
    # -- set-iteration ----------------------------------------------------
    (
        "set-iteration",
        "src/repro/coloring/x.py",
        "def f(xs):\n    for v in set(xs):\n        use(v)\n",
        True,
    ),
    (
        "set-iteration",
        "src/repro/parallel/x.py",
        "def f(xs):\n    return [g(v) for v in {x.k for x in xs}]\n",
        True,
    ),
    (
        "set-iteration",
        "src/repro/coloring/x.py",
        "def f(xs):\n    return list({1, 2, 3})\n",
        True,
    ),
    (
        "set-iteration",
        "src/repro/coloring/x.py",
        "def f(xs):\n    for v in sorted(set(xs)):\n        use(v)\n",
        False,
    ),
    # Membership tests on sets are fine; only iteration order leaks.
    (
        "set-iteration",
        "src/repro/coloring/x.py",
        "def f(xs, seen):\n    return [x for x in xs if x in seen]\n",
        False,
    ),
    # Outside the pipeline dirs, set iteration is not a determinism risk.
    (
        "set-iteration",
        "src/repro/predict/x.py",
        "def f(xs):\n    for v in set(xs):\n        use(v)\n",
        False,
    ),
    # -- engine-registry --------------------------------------------------
    (
        "engine-registry",
        "src/repro/driver.py",
        "from repro.coloring.greedy_list import greedy_list_color_dynamic\n",
        True,
    ),
    (
        "engine-registry",
        "src/repro/driver.py",
        "from repro.coloring.engine import get_engine\n",
        False,
    ),
    (
        "engine-registry",
        "src/repro/driver.py",
        "from repro.coloring import greedy_list_color_dynamic\n",
        False,
    ),
    # Inside the coloring package, implementation imports are the point.
    (
        "engine-registry",
        "src/repro/coloring/engine.py",
        "from repro.coloring.greedy_list import greedy_list_color_dynamic\n",
        False,
    ),
    # -- backend-registry -------------------------------------------------
    (
        "backend-registry",
        "src/repro/device/tiles.py",
        "import numba\n",
        True,
    ),
    (
        "backend-registry",
        "src/repro/core/x.py",
        "from cupy import asnumpy\n",
        True,
    ),
    (
        "backend-registry",
        "src/repro/parallel/x.py",
        "from repro.device.backends.numba_backend import NumbaBackend\n",
        True,
    ),
    (
        "backend-registry",
        "src/repro/parallel/x.py",
        "from repro.device.backends import resolve_backend\n",
        False,
    ),
    # Inside the backend package, runtime imports are the point.
    (
        "backend-registry",
        "src/repro/device/backends/numba_backend.py",
        "import numba\n",
        False,
    ),
    # -- socket-scope -----------------------------------------------------
    (
        "socket-scope",
        "src/repro/core/x.py",
        "import multiprocessing as mp\n",
        True,
    ),
    ("socket-scope", "src/repro/device/x.py", "import socket\n", True),
    (
        "socket-scope",
        "src/repro/parallel/executor.py",
        "import multiprocessing as mp\n",
        False,
    ),
    (
        "socket-scope",
        "src/repro/distributed/transport.py",
        "import socket\n",
        False,
    ),
    # -- private-import ---------------------------------------------------
    (
        "private-import",
        "src/repro/coloring/x.py",
        "from repro.parallel.pool import _WORKER\n",
        True,
    ),
    (
        "private-import",
        "src/repro/coloring/x.py",
        "from repro.parallel.pool import strip_shares\n",
        False,
    ),
    (
        "private-import",
        "src/repro/parallel/shm.py",
        "from repro.parallel.pool import _WORKER\n",
        False,
    ),
    # -- shm-region-scope -------------------------------------------------
    (
        "shm-region-scope",
        "src/repro/device/x.py",
        "def f(nbytes):\n    return ShmCooRegion.create(nbytes)\n",
        True,
    ),
    (
        "shm-region-scope",
        "src/repro/device/x.py",
        "def f(nbytes):\n    return SharedMemory(create=True, size=nbytes)\n",
        True,
    ),
    (
        "shm-region-scope",
        "src/repro/parallel/shm.py",
        "def f(nbytes):\n    return ShmCooRegion.create(nbytes)\n",
        False,
    ),
    (
        "shm-region-scope",
        "src/repro/device/x.py",
        "def f(name):\n    return SharedMemory(name=name)\n",
        False,
    ),
    # -- scratch-context --------------------------------------------------
    (
        "scratch-context",
        "src/repro/device/x.py",
        "def f(dev):\n    s = dev.scratch('buf', 64)\n    return 1\n",
        True,
    ),
    (
        "scratch-context",
        "src/repro/device/x.py",
        "def f(dev):\n    with dev.scratch('buf', 64):\n        return 1\n",
        False,
    ),
    (
        "scratch-context",
        "src/repro/device/x.py",
        "def f(dev, stack):\n"
        "    stack.enter_context(dev.scratch('buf', 64))\n",
        False,
    ),
    (
        "scratch-context",
        "src/repro/device/x.py",
        "def f(dev):\n    return dev.scratch('buf', 64)\n",
        False,
    ),
    # -- no-bare-print ----------------------------------------------------
    ("no-bare-print", "src/repro/worker.py", "print('diag')\n", True),
    (
        "no-bare-print",
        "src/repro/worker.py",
        "import sys\nprint('diag', file=sys.stderr)\n",
        False,
    ),
    ("no-bare-print", "src/repro/cli.py", "print('result')\n", False),
]


@pytest.mark.parametrize(
    "rule,rel,source,expect",
    CASES,
    ids=[f"{c[0]}-{i}" for i, c in enumerate(CASES)],
)
def test_rule_fixture(tmp_path, rule, rel, source, expect):
    hits = _lint(tmp_path, rel, source)
    if expect:
        assert rule in hits, f"expected {rule} to fire"
    else:
        assert rule not in hits, f"unexpected {rule} finding"


POSITIVE_CASES = [c for c in CASES if c[3]]


@pytest.mark.parametrize(
    "rule,rel,source",
    [(c[0], c[1], c[2]) for c in POSITIVE_CASES],
    ids=[f"{c[0]}-{i}" for i, c in enumerate(POSITIVE_CASES)],
)
def test_rule_suppression(tmp_path, rule, rel, source):
    """Every positive fixture goes quiet under a file-wide suppression."""
    suppressed = f"# reprolint: disable-file={rule} -- fixture\n" + source
    assert rule not in _lint(tmp_path, rel, suppressed)
