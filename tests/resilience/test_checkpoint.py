"""Checkpoint format guarantees and crash → resume bit-identity."""

import os

import numpy as np
import pytest

from repro.core import Picasso, PicassoParams
from repro.pauli import random_pauli_set
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    KEEP_CHECKPOINTS,
    CheckpointError,
    PicassoCheckpoint,
    checkpoint_fingerprint,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import (
    FaultInjected,
    FaultSpec,
    clear_faults,
    install_fault,
)


@pytest.fixture(autouse=True)
def _disarm():
    clear_faults()
    yield
    clear_faults()


def _ckpt(iteration=1, fingerprint="f" * 16):
    rng = np.random.default_rng(0)
    return PicassoCheckpoint(
        iteration=iteration,
        colors=np.arange(10, dtype=np.int64),
        active=np.array([3, 7], dtype=np.int64),
        base_color=4,
        palette_fraction=0.1,
        rng_state=rng.bit_generator.state,
        fingerprint=fingerprint,
        peak_bytes=123,
        iterations=[{"iteration": 1}],
    )


class TestFormat:
    def test_roundtrip(self, tmp_path):
        path = save_checkpoint(tmp_path, _ckpt(iteration=5))
        back = load_checkpoint(path, "f" * 16)
        assert back.iteration == 5
        assert back.base_color == 4
        assert back.peak_bytes == 123
        np.testing.assert_array_equal(back.colors, np.arange(10))
        np.testing.assert_array_equal(back.active, [3, 7])
        # The restored RNG state drives the identical stream.
        a = np.random.default_rng(0)
        b = np.random.default_rng(999)
        b.bit_generator.state = back.rng_state
        assert a.random() == b.random()

    def test_crc_corruption_detected(self, tmp_path):
        path = save_checkpoint(tmp_path, _ckpt())
        raw = bytearray(open(path, "rb").read())
        raw[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(raw)
        with pytest.raises(CheckpointError, match="CRC mismatch"):
            load_checkpoint(path)

    def test_version_skew_detected(self, tmp_path):
        import struct

        path = save_checkpoint(tmp_path, _ckpt())
        raw = bytearray(open(path, "rb").read())
        raw[8:12] = struct.pack("<I", CHECKPOINT_VERSION + 1)
        with open(path, "wb") as fh:
            fh.write(raw)
        with pytest.raises(CheckpointError, match="format v"):
            load_checkpoint(path)

    def test_truncation_detected(self, tmp_path):
        path = save_checkpoint(tmp_path, _ckpt())
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_foreign_file_detected(self, tmp_path):
        path = tmp_path / "picasso-it000009.ckpt"
        path.write_bytes(b"not a checkpoint at all, but long enough....")
        with pytest.raises(CheckpointError, match="not a Picasso"):
            load_checkpoint(path)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = save_checkpoint(tmp_path, _ckpt(fingerprint="a" * 16))
        with pytest.raises(CheckpointError, match="different run config"):
            load_checkpoint(path, "b" * 16)

    def test_prune_keeps_newest(self, tmp_path):
        for it in range(1, KEEP_CHECKPOINTS + 4):
            save_checkpoint(tmp_path, _ckpt(iteration=it))
        names = sorted(os.listdir(tmp_path))
        assert len(names) == KEEP_CHECKPOINTS
        assert names[-1].endswith(f"{KEEP_CHECKPOINTS + 3:06d}.ckpt")

    def test_no_tmp_litter(self, tmp_path):
        save_checkpoint(tmp_path, _ckpt())
        assert not [n for n in os.listdir(tmp_path) if n.startswith(".tmp")]


class TestLatest:
    def test_empty_dir_is_none(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None

    def test_skips_corrupt_newest(self, tmp_path):
        good = save_checkpoint(tmp_path, _ckpt(iteration=1))
        bad = save_checkpoint(tmp_path, _ckpt(iteration=2))
        with open(bad, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            fh.truncate(fh.tell() - 10)
        assert latest_checkpoint(tmp_path, "f" * 16) == good

    def test_fingerprint_mismatch_raises_not_skips(self, tmp_path):
        save_checkpoint(tmp_path, _ckpt(fingerprint="a" * 16))
        with pytest.raises(CheckpointError, match="refusing to mix"):
            latest_checkpoint(tmp_path, "b" * 16)

    def test_ignores_foreign_names(self, tmp_path):
        (tmp_path / "notes.txt").write_text("x")
        (tmp_path / ".tmp-123-picasso-it000001.ckpt").write_bytes(b"junk")
        assert latest_checkpoint(tmp_path) is None


class TestFingerprint:
    def test_sensitive_to_algorithmic_knobs(self):
        a = checkpoint_fingerprint(PicassoParams(), 100)
        assert a == checkpoint_fingerprint(PicassoParams(), 100)
        assert a != checkpoint_fingerprint(PicassoParams(), 101)
        assert a != checkpoint_fingerprint(PicassoParams(alpha=3.0), 100)

    def test_insensitive_to_execution_knobs(self):
        a = checkpoint_fingerprint(PicassoParams(), 100)
        b = checkpoint_fingerprint(
            PicassoParams(executor="pool", n_workers=4, failover="serial"),
            100,
        )
        assert a == b


class _Run:
    """One Picasso problem, colored under various interruption plans."""

    def __init__(self):
        self.ps = random_pauli_set(300, 8, seed=3)
        self.base = Picasso(params=PicassoParams(), seed=7).color(self.ps)
        assert self.base.iterations[-1].iteration >= 4, (
            "problem too easy to interrupt meaningfully"
        )

    def crash_at(self, ckpt_dir, iteration, **kw):
        install_fault(
            FaultSpec(kind="error", site="iteration", after=iteration)
        )
        params = PicassoParams(checkpoint_dir=str(ckpt_dir), **kw)
        with pytest.raises(FaultInjected):
            Picasso(params=params, seed=7).color(self.ps)
        clear_faults()

    def resume(self, ckpt_dir, **kw):
        params = PicassoParams(
            checkpoint_dir=str(ckpt_dir), resume=True, **kw
        )
        return Picasso(params=params, seed=7).color(self.ps)

    def assert_identical(self, result):
        np.testing.assert_array_equal(result.colors, self.base.colors)
        assert result.n_colors == self.base.n_colors
        # The telemetry trace is the full trace, not just the tail.
        assert len(result.iterations) == len(self.base.iterations)
        assert [s.iteration for s in result.iterations] == [
            s.iteration for s in self.base.iterations
        ]


@pytest.fixture(scope="module")
def run():
    return _Run()


class TestCrashResume:
    def test_serial_crash_then_resume_bit_identical(self, run, tmp_path):
        run.crash_at(tmp_path, iteration=2)
        assert latest_checkpoint(tmp_path) is not None
        run.assert_identical(run.resume(tmp_path))

    def test_late_crash_bit_identical(self, run, tmp_path):
        last = run.base.iterations[-1].iteration
        run.crash_at(tmp_path, iteration=last - 1)
        run.assert_identical(run.resume(tmp_path))

    def test_double_crash_bit_identical(self, run, tmp_path):
        """Crash, resume, crash again further in, resume again."""
        run.crash_at(tmp_path, iteration=1)
        install_fault(FaultSpec(kind="error", site="iteration", after=2))
        with pytest.raises(FaultInjected):
            run.resume(tmp_path)
        clear_faults()
        run.assert_identical(run.resume(tmp_path))

    def test_pool_crash_then_resume_bit_identical(self, run, tmp_path):
        run.crash_at(tmp_path, iteration=2, executor="pool", n_workers=2)
        run.assert_identical(
            run.resume(tmp_path, executor="pool", n_workers=2)
        )

    def test_cross_backend_resume(self, run, tmp_path):
        """A checkpoint written serially resumes on a pool (the
        fingerprint excludes execution knobs by design)."""
        run.crash_at(tmp_path, iteration=2)
        run.assert_identical(
            run.resume(tmp_path, executor="pool", n_workers=2)
        )

    def test_resume_without_checkpoints_starts_fresh(self, run, tmp_path):
        run.assert_identical(run.resume(tmp_path / "empty"))

    def test_checkpoint_every_skips_iterations(self, run, tmp_path):
        params = PicassoParams(
            checkpoint_dir=str(tmp_path), checkpoint_every=2
        )
        result = Picasso(params=params, seed=7).color(run.ps)
        run.assert_identical(result)
        for name in os.listdir(tmp_path):
            it = int(name[len("picasso-it") : -len(".ckpt")])
            assert it % 2 == 0

    def test_checkpointing_does_not_perturb_result(self, run, tmp_path):
        params = PicassoParams(checkpoint_dir=str(tmp_path))
        run.assert_identical(Picasso(params=params, seed=7).color(run.ps))

    def test_mismatched_config_refuses_resume(self, run, tmp_path):
        run.crash_at(tmp_path, iteration=2)
        params = PicassoParams(
            checkpoint_dir=str(tmp_path), resume=True, alpha=3.0
        )
        with pytest.raises(CheckpointError, match="refusing to mix"):
            Picasso(params=params, seed=7).color(run.ps)


class TestParamsValidation:
    def test_resume_requires_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            PicassoParams(resume=True)

    def test_checkpoint_every_positive(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            PicassoParams(checkpoint_dir="/tmp/x", checkpoint_every=0)

    def test_bad_failover_spec(self):
        with pytest.raises(ValueError, match="unknown failover"):
            PicassoParams(failover="teleport")

    def test_negative_max_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            PicassoParams(max_retries=-1)
