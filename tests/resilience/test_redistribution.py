"""Shard redistribution: a dead agent's strips move to the survivors
and the sweep's result stays bit-identical to serial."""

import os
import threading
import time

import numpy as np
import pytest

from repro.core.conflict import build_conflict_graph
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.distributed import LocalCluster
from repro.parallel.executor import WorkerFailure
from repro.pauli import random_pauli_set
from repro.resilience.faults import clear_faults


@pytest.fixture(autouse=True)
def _disarm():
    clear_faults()
    yield
    clear_faults()


@pytest.fixture(scope="module")
def problem():
    ps = random_pauli_set(120, 6, seed=3)
    _, masks = assign_color_lists(120, 16, 4, rng=1)
    src = PauliComplementSource(ps)
    ref, m_ref = build_conflict_graph(
        120, src.edge_mask, masks, edge_block_fn=src.edge_block
    )
    return src, masks, ref, m_ref


def _build(src, masks, ex):
    return build_conflict_graph(
        120, src.edge_mask, masks, edge_block_fn=src.edge_block,
        executor=ex,
    )


def _assert_identical(got, m_got, ref, m_ref):
    assert m_got == m_ref
    np.testing.assert_array_equal(got.offsets, ref.offsets)
    np.testing.assert_array_equal(got.targets, ref.targets)


class TestRedistribution:
    def test_deterministic_kill_redeals_to_survivor(
        self, problem, monkeypatch, tmp_path
    ):
        """The tentpole acceptance: an agent SIGKILLed on its first
        strip; its remaining strips are re-dealt, the CSR is
        bit-identical, and the executor compacts to the survivors."""
        src, masks, ref, m_ref = problem
        monkeypatch.setenv("REPRO_FAULT", "kill:task:1")
        monkeypatch.setenv("REPRO_FAULT_ONCE", str(tmp_path / "once"))
        monkeypatch.setenv("REPRO_FAULT_SPARE_PID", str(os.getpid()))
        with LocalCluster(2) as cluster:
            with cluster.executor(
                result_timeout_s=15.0, redistribute=True
            ) as ex:
                got, m_got = _build(src, masks, ex)
                assert ex.n_workers == 1  # compacted to the survivor
                # The compacted executor keeps serving (next sweep runs
                # on the survivor alone, still bit-identical).
                got2, m2 = _build(src, masks, ex)
        _assert_identical(got, m_got, ref, m_ref)
        _assert_identical(got2, m2, ref, m_ref)
        assert os.path.exists(tmp_path / "once")

    def test_wall_clock_kill_mid_sweep(self, problem):
        """Racy variant: the kill lands wherever it lands (possibly
        after the sweep).  Either way the answer must be identical."""
        src, masks, ref, m_ref = problem
        with LocalCluster(2) as cluster:
            with cluster.executor(
                result_timeout_s=15.0, redistribute=True
            ) as ex:
                killer = threading.Thread(
                    target=lambda: (time.sleep(0.2), cluster.kill_worker(1))
                )
                killer.start()
                got, m_got = _build(src, masks, ex)
                killer.join()
        _assert_identical(got, m_got, ref, m_ref)

    def test_all_shards_dead_raises_bounded(self, monkeypatch, problem):
        """No survivor to redistribute to: a typed WorkerFailure, not a
        hang — the supervisor's failover picks it up from there."""
        src, masks, _, _ = problem
        monkeypatch.setenv("REPRO_FAULT", "kill:task:1")
        monkeypatch.setenv("REPRO_FAULT_SPARE_PID", str(os.getpid()))
        with LocalCluster(1) as cluster:
            with cluster.executor(
                result_timeout_s=15.0, redistribute=True
            ) as ex:
                with pytest.raises(WorkerFailure, match="no survivor"):
                    _build(src, masks, ex)

    def test_without_flag_death_stays_loud(self, monkeypatch, problem):
        """redistribute=False (the default) preserves PR 5 semantics:
        a death surfaces as a bounded error."""
        src, masks, _, _ = problem
        monkeypatch.setenv("REPRO_FAULT", "kill:task:1")
        monkeypatch.setenv("REPRO_FAULT_SPARE_PID", str(os.getpid()))
        with LocalCluster(2) as cluster:
            with cluster.executor(result_timeout_s=15.0) as ex:
                with pytest.raises(RuntimeError):
                    _build(src, masks, ex)


class TestFailoverChain:
    def test_cluster_to_pool_to_serial_bit_identical(
        self, problem, monkeypatch
    ):
        """The canonical degradation chain, walked end to end: every
        cluster agent and every pool worker dies on its first strip
        (no once-guard), the spared dispatcher finishes serially, and
        the CSR is still bit-identical."""
        import repro.parallel.executor as pexec
        from repro.resilience.supervisor import supervised_executor

        src, masks, ref, m_ref = problem
        monkeypatch.setattr(pexec, "RESULT_TIMEOUT_S", 6.0)
        monkeypatch.setenv("REPRO_FAULT", "kill:task:1")
        monkeypatch.setenv("REPRO_FAULT_SPARE_PID", str(os.getpid()))
        with LocalCluster(2) as cluster:
            ex = supervised_executor(
                "cluster", 2, hosts=cluster.hosts,
                failover="pool,serial", max_retries=0,
                backoff_base_s=0.01,
            )
            try:
                got, m_got = _build(src, masks, ex)
                from repro.parallel.executor import SerialExecutor

                assert isinstance(ex.inner, SerialExecutor)
                assert [e[0] for e in ex.events] == ["failover", "failover"]
            finally:
                ex.close()
        _assert_identical(got, m_got, ref, m_ref)
