"""The fault injector itself: deterministic, counted, guarded."""

import os

import pytest

from repro.resilience.faults import (
    FaultInjected,
    FaultSpec,
    clear_faults,
    fault_point,
    install_fault,
)


@pytest.fixture(autouse=True)
def _disarm():
    clear_faults()
    yield
    clear_faults()


class TestSpecParsing:
    def test_parse_minimal(self):
        spec = FaultSpec.parse("kill:iteration:2")
        assert spec == FaultSpec(kind="kill", site="iteration", after=2)

    def test_parse_with_seconds(self):
        spec = FaultSpec.parse("delay:task:3:1.5")
        assert spec.seconds == 1.5

    def test_parse_reads_guard_env(self, monkeypatch, tmp_path):
        sentinel = str(tmp_path / "once")
        monkeypatch.setenv("REPRO_FAULT_ONCE", sentinel)
        monkeypatch.setenv("REPRO_FAULT_SPARE_PID", "123")
        spec = FaultSpec.parse("error:task:1")
        assert spec.once_path == sentinel
        assert spec.spare_pid == 123

    def test_parse_rejects_short_form(self):
        with pytest.raises(ValueError, match="kind:site:after"):
            FaultSpec.parse("kill:task")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_after_must_be_positive(self):
        with pytest.raises(ValueError, match="after"):
            FaultSpec(kind="error", after=0)


class TestTriggering:
    def test_fires_on_exact_hit(self):
        install_fault(FaultSpec(kind="error", site="s", after=3))
        fault_point("s")
        fault_point("s")
        with pytest.raises(FaultInjected, match="hit 3"):
            fault_point("s")
        # Spent: later hits of the site pass clean.
        fault_point("s")

    def test_other_sites_unaffected(self):
        install_fault(FaultSpec(kind="error", site="iteration", after=1))
        for _ in range(5):
            fault_point("task")
        with pytest.raises(FaultInjected):
            fault_point("iteration")

    def test_unarmed_is_noop(self):
        for _ in range(3):
            fault_point("anything")

    def test_spare_pid_protects_this_process(self):
        install_fault(
            FaultSpec(
                kind="error", site="s", after=1, spare_pid=os.getpid()
            )
        )
        fault_point("s")  # must not raise: we are the spared dispatcher

    def test_once_guard_spends_across_specs(self, tmp_path):
        sentinel = str(tmp_path / "once")
        install_fault(
            FaultSpec(kind="error", site="s", after=1, once_path=sentinel)
        )
        with pytest.raises(FaultInjected):
            fault_point("s")
        assert os.path.exists(sentinel)
        # A second armed spec sharing the sentinel is already spent —
        # this is what stops a redistributed task from re-killing the
        # surviving shard.
        clear_faults()
        install_fault(
            FaultSpec(kind="error", site="s", after=1, once_path=sentinel)
        )
        fault_point("s")

    def test_clear_faults_blocks_env_rearm(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "error:s:1")
        clear_faults()
        fault_point("s")  # env must not re-arm after an explicit clear
