"""ResilientExecutor: retry, failover, and the answer never changes."""

import os

import numpy as np
import pytest

import repro.parallel.executor as pexec
from repro.parallel.executor import SerialExecutor, WorkerFailure
from repro.resilience.faults import FaultSpec, clear_faults, faulty_task
from repro.resilience.supervisor import (
    BACKOFF_CAP_S,
    ResilientExecutor,
    supervised_executor,
)


@pytest.fixture(autouse=True)
def _disarm():
    clear_faults()
    yield
    clear_faults()


def _square(x):
    return x * x


class _Flaky(SerialExecutor):
    """Serial executor with a scripted failure plan.

    ``plan`` entries: ``("submit", exc)`` raises from ``imap`` itself,
    ``("midstream", k, exc)`` yields ``k`` results then raises, and an
    exhausted plan runs clean.  Records the tasks of every attempt.
    """

    def __init__(self, plan=()):
        super().__init__()
        self.plan = list(plan)
        self.task_log = []
        self.closed = False

    def imap(self, task_fn, tasks, initializer=None, payload=(),
             payload_token=None):
        tasks = list(tasks)
        self.task_log.append(tasks)
        step = self.plan.pop(0) if self.plan else None
        if step is not None and step[0] == "submit":
            raise step[1]
        inner = super().imap(
            task_fn, tasks, initializer=initializer, payload=payload,
            payload_token=payload_token,
        )
        if step is None:
            return inner

        def broken():
            for i, item in enumerate(inner):
                if i == step[1]:
                    raise step[2]
                yield item

        return broken()

    def close(self):
        self.closed = True
        super().close()


class TestRetry:
    def test_submit_failure_retried(self):
        flaky = _Flaky([("submit", WorkerFailure("boom"))])
        sleeps = []
        ex = ResilientExecutor(
            flaky, max_retries=2, backoff_base_s=0.5, sleep=sleeps.append
        )
        assert list(ex.imap(_square, [1, 2, 3])) == [1, 4, 9]
        assert [e[0] for e in ex.events] == ["retry"]
        assert sleeps == [0.5]

    def test_midstream_failure_resubmits_only_remaining(self):
        flaky = _Flaky([("midstream", 2, WorkerFailure("died"))])
        ex = ResilientExecutor(
            flaky, max_retries=1, backoff_base_s=0, sleep=lambda s: None
        )
        assert list(ex.imap(_square, [1, 2, 3, 4, 5])) == [1, 4, 9, 16, 25]
        # First attempt saw everything, the retry only the unseen tail —
        # the splice is what keeps the stream bit-identical.
        assert flaky.task_log == [[1, 2, 3, 4, 5], [3, 4, 5]]

    def test_backoff_doubles_and_caps(self):
        plan = [("submit", WorkerFailure(str(i))) for i in range(4)]
        sleeps = []
        ex = ResilientExecutor(
            _Flaky(plan), max_retries=4, backoff_base_s=10.0,
            sleep=sleeps.append,
        )
        list(ex.imap(_square, [1]))
        assert sleeps == [10.0, 20.0, BACKOFF_CAP_S, BACKOFF_CAP_S]

    def test_retries_exhausted_raises_last_error(self):
        plan = [("submit", WorkerFailure(f"f{i}")) for i in range(3)]
        ex = ResilientExecutor(
            _Flaky(plan), max_retries=2, backoff_base_s=0,
            sleep=lambda s: None,
        )
        with pytest.raises(WorkerFailure, match="f2"):
            list(ex.imap(_square, [1]))

    def test_application_error_propagates_untouched(self):
        flaky = _Flaky()
        ex = ResilientExecutor(
            flaky, max_retries=5, backoff_base_s=0, sleep=lambda s: None
        )

        def bad(x):
            raise ValueError("application bug")

        with pytest.raises(ValueError, match="application bug"):
            list(ex.imap(bad, [1, 2]))
        assert ex.events == []
        assert len(flaky.task_log) == 1  # no retry for app errors

    def test_empty_tasks_never_initializes(self):
        calls = []
        ex = ResilientExecutor(_Flaky(), max_retries=0)
        assert list(ex.imap(_square, [], initializer=calls.append)) == []
        assert calls == []


class TestFailover:
    def test_degrades_to_fallback_and_completes(self):
        primary = _Flaky([("submit", WorkerFailure("a")),
                          ("midstream", 1, WorkerFailure("b"))])
        backup = _Flaky()
        ex = ResilientExecutor(
            primary, [lambda: backup], max_retries=1, backoff_base_s=0,
            sleep=lambda s: None,
        )
        assert list(ex.imap(_square, [1, 2, 3])) == [1, 4, 9]
        assert [e[0] for e in ex.events] == ["retry", "failover"]
        assert ex.inner is backup
        assert primary.closed  # the dead backend was released
        # The fallback only got the tail the primary never yielded.
        assert backup.task_log == [[2, 3]]

    def test_retry_budget_resets_per_backend(self):
        primary = _Flaky([("submit", WorkerFailure("p"))])
        backup = _Flaky([("submit", WorkerFailure("b")), None])
        ex = ResilientExecutor(
            primary, [lambda: backup], max_retries=0, backoff_base_s=0,
            sleep=lambda s: None,
        )
        # Primary fails (0 retries -> failover); backup fails once and
        # gets its own fresh retry budget... but with max_retries=0 it
        # has no chain left, so the error surfaces.
        with pytest.raises(WorkerFailure, match="b"):
            list(ex.imap(_square, [1]))

    def test_chain_walks_all_entries(self):
        primary = _Flaky([("submit", WorkerFailure("p"))])
        mid = _Flaky([("submit", WorkerFailure("m"))])
        last = _Flaky()
        ex = ResilientExecutor(
            primary, [lambda: mid, lambda: last], max_retries=0,
            backoff_base_s=0, sleep=lambda s: None,
        )
        assert list(ex.imap(_square, [2])) == [4]
        assert ex.inner is last
        assert [e[0] for e in ex.events] == ["failover", "failover"]

    def test_holds_token_delegates_to_current(self):
        primary = _Flaky([("submit", WorkerFailure("p"))])
        backup = _Flaky()
        ex = ResilientExecutor(
            primary, [lambda: backup], max_retries=0, backoff_base_s=0,
            sleep=lambda s: None,
        )
        list(ex.imap(
            _square, [1], initializer=lambda: None,
            payload_token=("sweep", 1),
        ))
        # The token lives on the backend that actually installed it.
        assert ex.holds_token(("sweep", 1)) is backup.holds_token(("sweep", 1))

    def test_imap_with_payload_rebuilds_per_attempt(self):
        primary = _Flaky([("midstream", 1, WorkerFailure("x"))])
        backup = _Flaky()
        ex = ResilientExecutor(
            primary, [lambda: backup], max_retries=0, backoff_base_s=0,
            sleep=lambda s: None,
        )
        builds = []

        def make_payload(force_full):
            builds.append(force_full)
            return ({"static": 1}, ("sweep", 1), True)

        out = list(ex.imap_with_payload(
            _square, [1, 2, 3], lambda p: None, make_payload
        ))
        assert out == [1, 4, 9]
        # Built once per attempt; the retry build is forced full.
        assert builds == [False, True]


class TestFactory:
    def test_no_supervision_returns_bare_backend(self):
        ex = supervised_executor("serial")
        assert isinstance(ex, SerialExecutor)
        ex.close()

    def test_supervision_wraps(self):
        ex = supervised_executor("serial", max_retries=1)
        assert isinstance(ex, ResilientExecutor)
        assert isinstance(ex.inner, SerialExecutor)
        ex.close()

    def test_chain_parsing(self):
        ex = supervised_executor("serial", failover="pool, serial")
        assert isinstance(ex, ResilientExecutor)
        ex.close()
        with pytest.raises(ValueError, match="unknown failover"):
            supervised_executor("serial", failover="teleport")

    def test_sequence_chain_accepted(self):
        ex = supervised_executor("serial", failover=("serial",))
        assert isinstance(ex, ResilientExecutor)
        ex.close()


class TestPoolIntegration:
    """Real worker deaths against a real pool (the smoke scenarios)."""

    @pytest.fixture(autouse=True)
    def _fast_timeout(self, monkeypatch):
        monkeypatch.setattr(pexec, "RESULT_TIMEOUT_S", 6.0)

    def test_worker_kill_retried_on_recycled_pool(self, tmp_path):
        spec = FaultSpec(
            kind="kill", site="task", after=1,
            once_path=str(tmp_path / "once"), spare_pid=os.getpid(),
        )
        ex = supervised_executor(
            "pool", 2, max_retries=2, backoff_base_s=0.01
        )
        try:
            out = list(ex.imap(faulty_task(_square, spec), [1, 2, 3, 4]))
            assert out == [1, 4, 9, 16]
            assert [e[0] for e in ex.events] == ["retry"]
        finally:
            ex.close()

    def test_pool_exhaustion_fails_over_to_serial(self):
        # No once-guard: every pool attempt dies.  The dispatcher is
        # spared, so the serial fallback (in-process) completes.
        spec = FaultSpec(
            kind="kill", site="task", after=1, spare_pid=os.getpid()
        )
        ex = supervised_executor(
            "pool", 2, failover="serial", max_retries=1,
            backoff_base_s=0.01,
        )
        try:
            out = list(ex.imap(faulty_task(_square, spec), [1, 2, 3, 4]))
            assert out == [1, 4, 9, 16]
            assert [e[0] for e in ex.events] == ["retry", "failover"]
            assert isinstance(ex.inner, SerialExecutor)
        finally:
            ex.close()

    def test_supervised_picasso_bit_identical(self, tmp_path, monkeypatch):
        from repro.core import Picasso, PicassoParams
        from repro.pauli import random_pauli_set

        ps = random_pauli_set(300, 8, seed=3)
        base = Picasso(params=PicassoParams(), seed=7).color(ps)
        monkeypatch.setenv("REPRO_FAULT", "kill:task:3")
        monkeypatch.setenv("REPRO_FAULT_ONCE", str(tmp_path / "once"))
        monkeypatch.setenv("REPRO_FAULT_SPARE_PID", str(os.getpid()))
        params = PicassoParams(
            executor="pool", n_workers=2, failover="serial", max_retries=2
        )
        result = Picasso(params=params, seed=7).color(ps)
        np.testing.assert_array_equal(result.colors, base.colors)
        assert os.path.exists(tmp_path / "once")  # the kill really fired
