"""End-to-end CLI crash/resume: a run SIGKILLed mid-iteration restarts
with ``--resume`` and writes the identical coloring."""

import os
import subprocess
import sys

import numpy as np
import pytest

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


def _cli(args, *, fault=None, tmp_path=None):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC + (os.pathsep + existing if existing else "")
    env.pop("REPRO_FAULT", None)
    env.pop("REPRO_FAULT_ONCE", None)
    env.pop("REPRO_FAULT_SPARE_PID", None)
    if fault:
        env["REPRO_FAULT"] = fault
        env["REPRO_FAULT_ONCE"] = str(tmp_path / "once")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, capture_output=True, text=True, timeout=300,
    )


@pytest.fixture(scope="module")
def pauli_file(tmp_path_factory):
    from repro.pauli import random_pauli_set, save_pauli_set

    path = tmp_path_factory.mktemp("input") / "input.txt"
    save_pauli_set(random_pauli_set(200, 7, seed=1), path)
    return str(path)


class TestCrashResume:
    def test_sigkill_then_resume_is_bit_identical(
        self, pauli_file, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        # Uninterrupted reference.
        ref_out = tmp_path / "ref.txt"
        proc = _cli(["color", pauli_file, "--output", str(ref_out)])
        assert proc.returncode == 0, proc.stderr

        # Crashed run: SIGKILL at the end of iteration 2 — no cleanup,
        # no flush, the honest crash.
        crash_out = tmp_path / "crash.txt"
        proc = _cli(
            [
                "color", pauli_file, "--checkpoint-dir", str(ckpt),
                "--output", str(crash_out),
            ],
            fault="kill:iteration:2", tmp_path=tmp_path,
        )
        assert proc.returncode == -9, (proc.returncode, proc.stderr)
        assert not crash_out.exists()  # it really died mid-run
        assert any(
            n.endswith(".ckpt") for n in os.listdir(ckpt)
        ), "the crashed run left no checkpoint behind"

        # Resume: picks up from the newest snapshot and finishes.
        res_out = tmp_path / "resumed.txt"
        proc = _cli([
            "color", pauli_file, "--checkpoint-dir", str(ckpt),
            "--resume", "--output", str(res_out),
        ])
        assert proc.returncode == 0, proc.stderr
        np.testing.assert_array_equal(
            np.loadtxt(res_out, dtype=np.int64),
            np.loadtxt(ref_out, dtype=np.int64),
        )

    def test_resume_flag_requires_checkpoint_dir(self, pauli_file):
        proc = _cli(["color", pauli_file, "--resume"])
        assert proc.returncode != 0
        assert "checkpoint_dir" in proc.stderr
