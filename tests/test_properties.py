"""Cross-module property-based tests (hypothesis) on the invariants the
whole system rests on.

These complement the per-module suites: each property here spans at
least two subsystems (e.g. chemistry -> pauli -> core), pinning the
end-to-end contracts the paper's correctness depends on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import greedy_coloring
from repro.core import Picasso, PicassoParams, partition_from_coloring
from repro.core.sources import PauliComplementSource
from repro.graphs import complement_graph, erdos_renyi
from repro.pauli import PauliSet, random_pauli_set
from repro.util.chunking import num_pairs

pauli_instances = st.tuples(
    st.integers(min_value=2, max_value=60),   # n strings
    st.integers(min_value=2, max_value=8),    # qubits
    st.integers(min_value=0, max_value=2**32),
)

picasso_params = st.tuples(
    st.floats(min_value=0.02, max_value=0.6),
    st.floats(min_value=0.5, max_value=8.0),
)


class TestPicassoEndToEnd:
    @given(pauli_instances, picasso_params)
    @settings(max_examples=25, deadline=None)
    def test_always_proper_and_complete(self, inst, params):
        n, nq, seed = inst
        pf, alpha = params
        if n > 4**nq:
            n = 4**nq
        ps = random_pauli_set(n, nq, seed=seed)
        result = Picasso(
            params=PicassoParams(palette_fraction=pf, alpha=alpha), seed=seed
        ).color(ps)
        assert (result.colors >= 0).all()
        assert PauliComplementSource(ps).validate(result.colors)

    @given(pauli_instances)
    @settings(max_examples=15, deadline=None)
    def test_partition_groups_are_anticommuting(self, inst):
        n, nq, seed = inst
        if n > 4**nq:
            n = 4**nq
        ps = random_pauli_set(n, nq, seed=seed)
        result = Picasso(seed=seed).color(ps)
        part = partition_from_coloring(ps, result)
        assert part.validate()

    @given(pauli_instances)
    @settings(max_examples=15, deadline=None)
    def test_iteration_bookkeeping(self, inst):
        """Per-iteration colored/uncolored counts must telescope, and
        colors must stay within the cumulative palette windows."""
        n, nq, seed = inst
        if n > 4**nq:
            n = 4**nq
        ps = random_pauli_set(n, nq, seed=seed)
        result = Picasso(seed=seed).color(ps)
        active = n
        for s in result.iterations:
            assert s.n_active == active
            assert s.n_colored + s.n_uncolored == active
            assert s.list_size <= s.palette_size
            active = s.n_uncolored
        assert active == 0
        assert result.colors.max() < sum(
            s.palette_size for s in result.iterations
        )

    @given(pauli_instances)
    @settings(max_examples=10, deadline=None)
    def test_matches_explicit_graph_semantics(self, inst):
        """Coloring the PauliSet (streamed) and the explicit complement
        graph must both be proper w.r.t. the same edge set."""
        n, nq, seed = inst
        if n > 4**nq:
            n = 4**nq
        ps = random_pauli_set(n, nq, seed=seed)
        g = complement_graph(ps)
        streamed = Picasso(seed=seed).color(ps)
        explicit = Picasso(seed=seed).color(g)
        assert g.validate_coloring(streamed.colors)
        assert g.validate_coloring(explicit.colors)


class TestColoringLowerBounds:
    @given(
        st.integers(min_value=2, max_value=50),
        st.floats(min_value=0.1, max_value=0.9),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=15, deadline=None)
    def test_all_algorithms_beat_clique_lower_bound(self, n, p, seed):
        """Any proper coloring needs at least omega(G) colors; greedy
        and Picasso must respect a cheap clique witness."""
        import networkx as nx

        from repro.graphs.ops import to_networkx

        g = erdos_renyi(n, p, seed=seed)
        # The approximation returns a genuine clique, hence a genuine
        # lower bound on the chromatic number.
        witness = nx.algorithms.approximation.max_clique(to_networkx(g))
        for result in (
            greedy_coloring(g, "dlf"),
            Picasso(seed=seed).color(g),
        ):
            assert result.n_colors >= len(witness)
            assert g.validate_coloring(result.colors)

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=10, deadline=None)
    def test_complete_graph_exactness(self, n):
        from repro.graphs import complete_graph

        g = complete_graph(n)
        assert greedy_coloring(g, "sl").n_colors == n
        assert Picasso(seed=0).color(g).n_colors == n


class TestEncodingContracts:
    @given(pauli_instances)
    @settings(max_examples=20, deadline=None)
    def test_edge_partition_exact(self, inst):
        """Anticommute + commute edges partition all pairs exactly —
        the identity that lets Table II report |E| by streaming."""
        n, nq, seed = inst
        if n > 4**nq:
            n = 4**nq
        ps = random_pauli_set(n, nq, seed=seed)
        from repro.graphs import anticommute_edge_count, complement_edge_count

        assert (
            anticommute_edge_count(ps) + complement_edge_count(ps)
            == num_pairs(ps.n)
        )

    @given(st.lists(st.sampled_from("IXYZ"), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_self_commutes(self, letters):
        ps = PauliSet.from_strings(["".join(letters)] * 2)
        orc = ps.oracle()
        assert orc.anticommute(np.array([0]), np.array([1]))[0] == 0


class TestChemistryContracts:
    @pytest.mark.parametrize("n_atoms,dim", [(2, 1), (3, 1), (2, 2)])
    def test_jw_bk_same_term_support_size(self, n_atoms, dim):
        """JW and BK of the same Hamiltonian have equal term counts up
        to compression (they are basis changes of each other)."""
        from repro.chemistry import hn_pauli_set

        jw = hn_pauli_set(n_atoms, dim, "sto3g", transform="jordan_wigner")
        bk = hn_pauli_set(n_atoms, dim, "sto3g", transform="bravyi_kitaev")
        assert jw.n_qubits == bk.n_qubits
        # Same operator in two encodings: coefficients multisets match.
        a = np.sort(np.round(np.abs(jw.coefficients), 9))
        b = np.sort(np.round(np.abs(bk.coefficients), 9))
        np.testing.assert_allclose(a, b, atol=1e-8)
