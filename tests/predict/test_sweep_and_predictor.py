"""Tests for the sweep harness, dataset builder, and end-to-end predictor."""

import numpy as np
import pytest

from repro.pauli import random_pauli_set
from repro.predict import (
    PaletteParamsPredictor,
    SweepPoint,
    build_dataset,
    compare_models,
    normalize_objectives,
    objective,
    optimal_frontier,
    optimal_point,
    run_sweep,
)

SMALL_GRID = dict(palette_percents=(5.0, 15.0), alphas=(1.0, 3.0))


def tiny_sweep(seed=0):
    ps = random_pauli_set(60, 5, seed=seed, name=f"toy{seed}")
    return ps, run_sweep(ps, seed=seed, **SMALL_GRID)


class TestSweep:
    def test_grid_coverage(self):
        _, points = tiny_sweep()
        assert len(points) == 4
        combos = {(p.palette_percent, p.alpha) for p in points}
        assert combos == {(5.0, 1.0), (5.0, 3.0), (15.0, 1.0), (15.0, 3.0)}

    def test_points_well_formed(self):
        _, points = tiny_sweep()
        for p in points:
            assert p.n_colors > 0
            assert p.max_conflict_edges >= 0
            assert p.n_iterations >= 1

    def test_tradeoff_direction(self):
        """Lower palette percent should not *increase* colors much and
        should raise conflicts (Fig. 5 trend), checked at grid corners."""
        _, points = tiny_sweep()
        by_key = {(p.palette_percent, p.alpha): p for p in points}
        lo = by_key[(5.0, 3.0)]
        hi = by_key[(15.0, 3.0)]
        assert lo.n_colors <= hi.n_colors + 2
        assert lo.max_conflict_edges >= hi.max_conflict_edges


class TestObjective:
    def _mk(self, c, e):
        return SweepPoint(1.0, 1.0, c, e, 0.0, 1)

    def test_beta_extremes(self):
        points = [self._mk(10, 1000), self._mk(50, 10)]
        # beta ~ 1: colors dominate -> pick the 10-color point.
        assert optimal_point(points, 0.99).n_colors == 10
        # beta ~ 0: conflicts dominate -> pick the 10-edge point.
        assert optimal_point(points, 0.01).max_conflict_edges == 10

    def test_normalization(self):
        points = [self._mk(10, 1000), self._mk(50, 10)]
        cn, en = normalize_objectives(points)
        np.testing.assert_allclose(cn, [0.0, 1.0])
        np.testing.assert_allclose(en, [1.0, 0.0])

    def test_constant_objective_safe(self):
        points = [self._mk(10, 10), self._mk(10, 10)]
        cn, en = normalize_objectives(points)
        assert (cn == 0).all() and (en == 0).all()

    def test_objective_validates_beta(self):
        with pytest.raises(ValueError):
            objective(1.5, np.zeros(2), np.zeros(2))

    def test_empty_sweep(self):
        with pytest.raises(ValueError):
            optimal_point([], 0.5)

    def test_frontier_covers_betas(self):
        _, points = tiny_sweep()
        frontier = optimal_frontier(points, betas=(0.2, 0.8))
        assert [b for b, _ in frontier] == [0.2, 0.8]


class TestDatasetAndPredictor:
    @pytest.fixture(scope="class")
    def dataset(self):
        sets = [
            random_pauli_set(50 + 25 * k, 5, seed=k, name=f"mol{k}")
            for k in range(4)
        ]
        return build_dataset(sets, betas=(0.3, 0.7), seed=0, **SMALL_GRID)

    def test_dataset_shape(self, dataset):
        assert dataset.X.shape == (8, 3)  # 4 inputs x 2 betas
        assert dataset.y.shape == (8, 2)
        assert len(dataset.input_names) == 8

    def test_split_by_input(self, dataset):
        train, test = dataset.split_by_input({"mol3"})
        assert len(test) == 2
        assert len(train) == 6
        assert set(test.input_names) == {"mol3"}

    def test_targets_on_grid(self, dataset):
        assert set(np.unique(dataset.y[:, 0])) <= {5.0, 15.0}
        assert set(np.unique(dataset.y[:, 1])) <= {1.0, 3.0}

    def test_predictor_end_to_end(self, dataset):
        train, test = dataset.split_by_input({"mol3"})
        predictor = PaletteParamsPredictor(model="forest", seed=0).fit(train)
        pp, alpha = predictor.predict(0.5, 100, 2500)
        assert 0.5 <= pp <= 100.0
        assert 0.25 <= alpha <= 64.0
        metrics = predictor.evaluate(test)
        assert set(metrics) == {"mape", "r2"}
        assert np.isfinite(metrics["mape"])

    def test_predict_params_integration(self, dataset):
        predictor = PaletteParamsPredictor(model="tree", seed=0).fit(dataset)
        params = predictor.predict_params(0.5, 100, 2500, max_iterations=50)
        assert 0.0 < params.palette_fraction <= 1.0
        assert params.max_iterations == 50

    def test_compare_models_runs_all(self, dataset):
        train, test = dataset.split_by_input({"mol3"})
        out = compare_models(train, test, models=("ridge", "tree"), seed=0)
        assert set(out) == {"ridge", "tree"}

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            PaletteParamsPredictor(model="svm")

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            PaletteParamsPredictor().predict(0.5, 10, 10)
