"""Tests for regression metrics."""

import numpy as np
import pytest

from repro.predict import mape, r2_score


class TestMape:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mape(y, y) == 0.0

    def test_known_value(self):
        assert mape(np.array([100.0]), np.array([90.0])) == pytest.approx(0.1)

    def test_multi_output(self):
        y = np.array([[10.0, 100.0], [20.0, 200.0]])
        p = np.array([[11.0, 110.0], [22.0, 220.0]])
        assert mape(y, p) == pytest.approx(0.1)

    def test_zero_target_guarded(self):
        assert np.isfinite(mape(np.array([0.0]), np.array([1.0])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mape(np.zeros(3), np.zeros(4))


class TestR2:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        p = np.full(3, y.mean())
        assert r2_score(y, p) == pytest.approx(0.0)

    def test_worse_than_mean_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        p = np.array([3.0, 1.0, -2.0])
        assert r2_score(y, p) < 0

    def test_constant_target(self):
        y = np.ones(4)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 0.5) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            r2_score(np.zeros(3), np.zeros((3, 2)))
