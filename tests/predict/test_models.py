"""Tests for the from-scratch regressors."""

import numpy as np
import pytest

from repro.predict import (
    DecisionTreeRegressor,
    LassoRegressor,
    RandomForestRegressor,
    RidgeRegressor,
    r2_score,
)


def linear_data(n=200, d=4, noise=0.05, seed=0, k_outputs=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    W = rng.normal(size=(d, k_outputs))
    y = X @ W + noise * rng.normal(size=(n, k_outputs))
    return X, (y[:, 0] if k_outputs == 1 else y)


class TestRidge:
    def test_recovers_linear_function(self):
        X, y = linear_data()
        model = RidgeRegressor(alpha=0.01).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.98

    def test_multi_output(self):
        X, y = linear_data(k_outputs=3)
        model = RidgeRegressor(alpha=0.01).fit(X, y)
        pred = model.predict(X)
        assert pred.shape == y.shape
        assert r2_score(y, pred) > 0.98

    def test_regularization_shrinks(self):
        X, y = linear_data()
        small = RidgeRegressor(alpha=0.01).fit(X, y)
        large = RidgeRegressor(alpha=1e5).fit(X, y)
        assert np.abs(large.coef_).sum() < np.abs(small.coef_).sum()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegressor().predict(np.zeros((1, 2)))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            RidgeRegressor(alpha=-1)

    def test_constant_feature_safe(self):
        X = np.ones((50, 2))
        X[:, 1] = np.arange(50)
        y = X[:, 1] * 2.0
        model = RidgeRegressor(alpha=0.01).fit(X, y)
        assert np.isfinite(model.predict(X)).all()


class TestLasso:
    def test_fits_linear(self):
        X, y = linear_data()
        model = LassoRegressor(alpha=0.001).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_sparsity(self):
        """Irrelevant features should be zeroed at strong alpha."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 6))
        y = 3.0 * X[:, 0] + 0.01 * rng.normal(size=300)  # only feature 0 matters
        model = LassoRegressor(alpha=0.3).fit(X, y)
        w = np.abs(model.coef_[:, 0])
        assert w[0] > 0.5
        assert (w[1:] < 0.05).all()

    def test_converges(self):
        X, y = linear_data(n=100)
        model = LassoRegressor(alpha=0.01, max_iter=500).fit(X, y)
        assert model.n_iter_ <= 500


class TestDecisionTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 200)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_interpolates_training_data_at_full_depth(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        model = DecisionTreeRegressor(max_depth=50).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.999

    def test_depth_cap(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 2))
        y = rng.normal(size=200)
        model = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert model.depth() <= 4

    def test_min_samples_leaf(self):
        X = np.arange(10, dtype=float)[:, None]
        y = np.arange(10, dtype=float)
        model = DecisionTreeRegressor(max_depth=10, min_samples_leaf=5).fit(X, y)
        # Leaves of >=5 samples: at most 2 leaves for 10 points.
        assert len(np.unique(model.predict(X))) <= 2

    def test_multi_output(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = np.stack([(X[:, 0] > 0.3), (X[:, 0] > 0.7)], axis=1).astype(float)
        model = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_constant_target(self):
        X = np.arange(10, dtype=float)[:, None]
        y = np.ones(10)
        model = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(model.predict(X), 1.0)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))


class TestRandomForest:
    def test_fits_nonlinear(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(-2, 2, size=(400, 2))
        y = np.sin(X[:, 0]) * np.cos(X[:, 1])
        model = RandomForestRegressor(n_estimators=30, seed=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.85

    def test_beats_single_tree_out_of_sample(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-2, 2, size=(300, 3))
        y = X[:, 0] ** 2 + X[:, 1] - X[:, 2] + 0.3 * rng.normal(size=300)
        Xt = rng.uniform(-2, 2, size=(150, 3))
        yt = Xt[:, 0] ** 2 + Xt[:, 1] - Xt[:, 2]
        tree = DecisionTreeRegressor(max_depth=20, seed=0).fit(X, y)
        forest = RandomForestRegressor(n_estimators=40, seed=0).fit(X, y)
        assert r2_score(yt, forest.predict(Xt)) > r2_score(yt, tree.predict(Xt)) - 0.02

    def test_multi_output_shape(self):
        X, y = linear_data(k_outputs=2, n=100)
        model = RandomForestRegressor(n_estimators=10, seed=0).fit(X, y)
        assert model.predict(X).shape == y.shape

    def test_reproducible(self):
        X, y = linear_data(n=80)
        a = RandomForestRegressor(n_estimators=5, seed=7).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=7).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))
