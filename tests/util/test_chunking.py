"""Tests for flat pair-index chunking (the GPU-kernel decomposition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.chunking import iter_pair_chunks, num_pairs, pair_index_to_ij


class TestNumPairs:
    def test_small_values(self):
        assert num_pairs(0) == 0
        assert num_pairs(1) == 0
        assert num_pairs(2) == 1
        assert num_pairs(5) == 10

    def test_large(self):
        n = 2_000_000
        assert num_pairs(n) == n * (n - 1) // 2


class TestPairIndexToIJ:
    def test_n2(self):
        i, j = pair_index_to_ij(np.array([0]), 2)
        assert (i[0], j[0]) == (0, 1)

    def test_exhaustive_small(self):
        for n in range(2, 30):
            k = np.arange(num_pairs(n))
            i, j = pair_index_to_ij(k, n)
            expected = [(a, b) for a in range(n) for b in range(a + 1, n)]
            got = list(zip(i.tolist(), j.tolist()))
            assert got == expected

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pair_index_to_ij(np.array([num_pairs(5)]), 5)
        with pytest.raises(ValueError):
            pair_index_to_ij(np.array([-1]), 5)

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_boundaries_each_row(self, n):
        # First and last flat index of a sampled row must invert correctly.
        rng = np.random.default_rng(n)
        rows = rng.integers(0, n - 1, size=5)
        firsts = rows * n - rows * (rows + 1) // 2
        i, j = pair_index_to_ij(firsts, n)
        np.testing.assert_array_equal(i, rows)
        np.testing.assert_array_equal(j, rows + 1)
        lasts = firsts + (n - rows - 1) - 1
        i2, j2 = pair_index_to_ij(lasts, n)
        np.testing.assert_array_equal(i2, rows)
        np.testing.assert_array_equal(j2, n - 1)

    def test_huge_n_no_overflow(self):
        n = 3_000_000
        total = num_pairs(n)
        k = np.array([0, total - 1, total // 2], dtype=np.int64)
        i, j = pair_index_to_ij(k, n)
        assert (i[0], j[0]) == (0, 1)
        assert (i[1], j[1]) == (n - 2, n - 1)
        # Invert: k == offset(i) + (j - i - 1)
        off = i * n - i * (i + 1) // 2
        np.testing.assert_array_equal(off + j - i - 1, k)


class TestIterPairChunks:
    def test_covers_all_pairs_once(self):
        n = 23
        seen = set()
        for i, j in iter_pair_chunks(n, 17):
            assert len(i) <= 17
            for a, b in zip(i.tolist(), j.tolist()):
                assert a < b
                assert (a, b) not in seen
                seen.add((a, b))
        assert len(seen) == num_pairs(n)

    def test_single_chunk(self):
        chunks = list(iter_pair_chunks(10, 10_000))
        assert len(chunks) == 1
        assert len(chunks[0][0]) == num_pairs(10)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_pair_chunks(5, 0))

    def test_empty_graph(self):
        assert list(iter_pair_chunks(1, 4)) == []
