"""Tests for flat pair-index chunking (the GPU-kernel decomposition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.chunking import (
    _ANALYTIC_MAX_N,
    _rows_by_bisect,
    iter_pair_chunks,
    num_pairs,
    pair_index_to_ij,
)


class TestNumPairs:
    def test_small_values(self):
        assert num_pairs(0) == 0
        assert num_pairs(1) == 0
        assert num_pairs(2) == 1
        assert num_pairs(5) == 10

    def test_large(self):
        n = 2_000_000
        assert num_pairs(n) == n * (n - 1) // 2


class TestPairIndexToIJ:
    def test_n2(self):
        i, j = pair_index_to_ij(np.array([0]), 2)
        assert (i[0], j[0]) == (0, 1)

    def test_exhaustive_small(self):
        for n in range(2, 30):
            k = np.arange(num_pairs(n))
            i, j = pair_index_to_ij(k, n)
            expected = [(a, b) for a in range(n) for b in range(a + 1, n)]
            got = list(zip(i.tolist(), j.tolist()))
            assert got == expected

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pair_index_to_ij(np.array([num_pairs(5)]), 5)
        with pytest.raises(ValueError):
            pair_index_to_ij(np.array([-1]), 5)

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_boundaries_each_row(self, n):
        # First and last flat index of a sampled row must invert correctly.
        rng = np.random.default_rng(n)
        rows = rng.integers(0, n - 1, size=5)
        firsts = rows * n - rows * (rows + 1) // 2
        i, j = pair_index_to_ij(firsts, n)
        np.testing.assert_array_equal(i, rows)
        np.testing.assert_array_equal(j, rows + 1)
        lasts = firsts + (n - rows - 1) - 1
        i2, j2 = pair_index_to_ij(lasts, n)
        np.testing.assert_array_equal(i2, rows)
        np.testing.assert_array_equal(j2, n - 1)

    def test_huge_n_no_overflow(self):
        n = 3_000_000
        total = num_pairs(n)
        k = np.array([0, total - 1, total // 2], dtype=np.int64)
        i, j = pair_index_to_ij(k, n)
        assert (i[0], j[0]) == (0, 1)
        assert (i[1], j[1]) == (n - 2, n - 1)
        # Invert: k == offset(i) + (j - i - 1)
        off = i * n - i * (i + 1) // 2
        np.testing.assert_array_equal(off + j - i - 1, k)

    def test_bisect_matches_analytic_in_range(self):
        rng = np.random.default_rng(7)
        for n in (2, 3, 17, 1_000, 100_003):
            total = num_pairs(n)
            k = rng.integers(0, total, size=min(total, 300))
            i_analytic, _ = pair_index_to_ij(k, n)
            np.testing.assert_array_equal(_rows_by_bisect(k, n), i_analytic)

    def test_float64_boundary_regression(self):
        """ISSUE 3: pair indices above 2**53 used to lose low bits in
        the float64 discriminant.  Above the analytic bound the mapping
        routes to the exact integer bisection; adjacent indices around
        2**53 must invert to distinct, correct pairs."""
        n = 1 << 28  # pair space ~2**55, well past float64 exactness
        total = num_pairs(n)
        assert total > 2**53
        k = np.array(
            [0, 1, 2**53 - 1, 2**53, 2**53 + 1, total - 2, total - 1],
            dtype=np.int64,
        )
        # The float conversion really is lossy here (the bug this
        # guards against): 2**53 and 2**53 + 1 collide as float64.
        assert float(np.int64(2**53)) == float(np.int64(2**53 + 1))
        i, j = pair_index_to_ij(k, n)
        off = i * n - i * (i + 1) // 2
        np.testing.assert_array_equal(off + j - i - 1, k)
        assert ((0 <= i) & (i < j) & (j < n)).all()
        # All seven flat indices are distinct, so all pairs must be.
        assert len({(a, b) for a, b in zip(i.tolist(), j.tolist())}) == len(k)

    def test_routing_threshold_consistency(self):
        """Either side of the analytic bound agrees on the inverse
        (same formula, different arithmetic)."""
        for n in (_ANALYTIC_MAX_N, _ANALYTIC_MAX_N + 1):
            total = num_pairs(n)
            k = np.array([0, total // 3, total - 1], dtype=np.int64)
            i, j = pair_index_to_ij(k, n)
            off = i * n - i * (i + 1) // 2
            np.testing.assert_array_equal(off + j - i - 1, k)

    def test_pair_space_overflow_raises(self):
        with pytest.raises(OverflowError, match="2\\^62"):
            pair_index_to_ij(np.array([0]), 1 << 32)


class TestIterPairChunks:
    def test_covers_all_pairs_once(self):
        n = 23
        seen = set()
        for i, j in iter_pair_chunks(n, 17):
            assert len(i) <= 17
            for a, b in zip(i.tolist(), j.tolist()):
                assert a < b
                assert (a, b) not in seen
                seen.add((a, b))
        assert len(seen) == num_pairs(n)

    def test_single_chunk(self):
        chunks = list(iter_pair_chunks(10, 10_000))
        assert len(chunks) == 1
        assert len(chunks[0][0]) == num_pairs(10)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_pair_chunks(5, 0))

    def test_empty_graph(self):
        assert list(iter_pair_chunks(1, 4)) == []
