"""RNG state round-trips: save mid-stream, restore anywhere (including
another process under either start method), get the identical tail.
This is the property the checkpoint format's bit-identical resume
stands on."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.util.rng import (
    as_generator,
    rng_state,
    set_rng_state,
    spawn_generators,
)


def _tail_from_state(state):
    """Worker: rebuild a generator from a state dict, emit a tail.

    Module-level so it pickles under spawn.
    """
    gen = set_rng_state(np.random.default_rng(), state)
    return gen.random(16).tolist()


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 7, 12345, 2**62])
    def test_mid_stream_save_restore_identical_tail(self, seed):
        gen = as_generator(seed)
        gen.random(100)  # advance mid-stream
        state = rng_state(gen)
        expected = gen.random(64)

        fresh = set_rng_state(np.random.default_rng(), state)
        np.testing.assert_array_equal(fresh.random(64), expected)

    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_integers_and_permutations_tail(self, seed):
        """Not just .random(): every draw kind repeats, because the
        restore is at the bit-generator level."""
        gen = as_generator(seed)
        gen.integers(0, 1000, size=37)
        state = rng_state(gen)
        want_ints = gen.integers(0, 10**9, size=20)
        want_perm = gen.permutation(50)

        fresh = set_rng_state(np.random.default_rng(), state)
        np.testing.assert_array_equal(
            fresh.integers(0, 10**9, size=20), want_ints
        )
        np.testing.assert_array_equal(fresh.permutation(50), want_perm)

    def test_state_is_plain_picklable_data(self):
        import pickle

        gen = as_generator(5)
        gen.random(10)
        state = rng_state(gen)
        back = pickle.loads(pickle.dumps(state))
        fresh = set_rng_state(np.random.default_rng(), back)
        np.testing.assert_array_equal(fresh.random(8), gen.random(8))

    def test_spawned_children_draw_identically_per_parent_seed(self):
        """What the state dict does *not* capture: ``spawn`` keys off
        the seed sequence, not the bit-generator state.  The library's
        determinism therefore comes from spawning at fixed points of
        the trajectory — same parent seed, same spawn order, same
        children."""
        for ca, cb in zip(spawn_generators(11, 3), spawn_generators(11, 3)):
            np.testing.assert_array_equal(ca.random(4), cb.random(4))


class TestCrossProcess:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_tail_identical_in_child_process(self, method):
        if method not in mp.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        gen = as_generator(42)
        gen.random(33)  # mid-stream
        state = rng_state(gen)
        expected = gen.random(16).tolist()

        ctx = mp.get_context(method)
        with ctx.Pool(1) as pool:
            got = pool.apply(_tail_from_state, (state,))
        assert got == expected
