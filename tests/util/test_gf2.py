"""Tests for GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.gf2 import gf2_nullspace, gf2_rank, gf2_row_reduce, gf2_solve


class TestRowReduce:
    def test_identity(self):
        rref, pivots = gf2_row_reduce(np.eye(3, dtype=np.uint8))
        np.testing.assert_array_equal(rref, np.eye(3, dtype=np.uint8))
        assert pivots == [0, 1, 2]

    def test_dependent_rows(self):
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        # Row 3 = row 1 XOR row 2.
        assert gf2_rank(m) == 2

    def test_zero_matrix(self):
        rref, pivots = gf2_row_reduce(np.zeros((2, 3), dtype=np.uint8))
        assert pivots == []
        assert not rref.any()

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            gf2_row_reduce(np.zeros(3, dtype=np.uint8))

    def test_rref_property(self):
        """Each pivot column has exactly one 1."""
        rng = np.random.default_rng(0)
        m = rng.integers(0, 2, size=(6, 9), dtype=np.uint8)
        rref, pivots = gf2_row_reduce(m)
        for r, c in enumerate(pivots):
            col = rref[:, c]
            assert col[r] == 1 and col.sum() == 1


class TestNullspace:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_vectors_annihilate(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)
        basis = gf2_nullspace(m)
        assert basis.shape[0] == cols - gf2_rank(m)
        for v in basis:
            np.testing.assert_array_equal((m @ v) % 2, 0)

    def test_basis_independent(self):
        rng = np.random.default_rng(1)
        m = rng.integers(0, 2, size=(4, 8), dtype=np.uint8)
        basis = gf2_nullspace(m)
        if len(basis):
            assert gf2_rank(basis) == len(basis)

    def test_full_rank_trivial_kernel(self):
        assert gf2_nullspace(np.eye(4, dtype=np.uint8)).shape[0] == 0


class TestSolve:
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_solution_or_consistent_none(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)
        # RHS from a known solution: always solvable.
        x0 = rng.integers(0, 2, size=cols, dtype=np.uint8)
        rhs = (m @ x0) % 2
        x = gf2_solve(m, rhs)
        assert x is not None
        np.testing.assert_array_equal((m @ x) % 2, rhs)

    def test_inconsistent(self):
        m = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        rhs = np.array([0, 1], dtype=np.uint8)
        assert gf2_solve(m, rhs) is None
