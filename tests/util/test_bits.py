"""Unit and property tests for packed-bitset primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import bits


class TestPopcount:
    def test_zero(self):
        assert bits.popcount(np.array([0], dtype=np.uint64))[0] == 0

    def test_all_ones(self):
        assert bits.popcount(np.array([np.uint64(2**64 - 1)]))[0] == 64

    def test_single_bits(self):
        for k in range(64):
            w = np.array([np.uint64(1) << np.uint64(k)])
            assert bits.popcount(w)[0] == 1

    def test_matches_python_bitcount(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=100, dtype=np.uint64)
        expected = [int(w).bit_count() for w in words]
        np.testing.assert_array_equal(bits.popcount(words), expected)

    def test_swar_fallback_matches(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 2**63, size=256, dtype=np.uint64)
        np.testing.assert_array_equal(
            bits._popcount_swar(words), bits.popcount(words)
        )

    def test_preserves_shape(self):
        words = np.zeros((3, 4), dtype=np.uint64)
        assert bits.popcount(words).shape == (3, 4)


class TestPopcountRows:
    def test_rows(self):
        m = np.array([[1, 1], [3, 0], [0, 0]], dtype=np.uint64)
        np.testing.assert_array_equal(bits.popcount_rows(m), [2, 2, 0])

    def test_parity(self):
        m = np.array([[1, 1], [3, 1], [0, 0]], dtype=np.uint64)
        np.testing.assert_array_equal(bits.parity_rows(m), [0, 1, 0])


class TestPackbitsRows:
    def test_roundtrip_simple(self):
        b = np.array([[1, 0, 1, 1], [0, 0, 0, 1]], dtype=np.uint8)
        packed = bits.packbits_rows(b)
        assert packed.shape == (2, 1)
        assert packed[0, 0] == 0b1101
        assert packed[1, 0] == 0b1000

    def test_multiword(self):
        b = np.zeros((1, 130), dtype=np.uint8)
        b[0, 0] = 1
        b[0, 64] = 1
        b[0, 129] = 1
        packed = bits.packbits_rows(b)
        assert packed.shape == (1, 3)
        assert packed[0, 0] == 1
        assert packed[0, 1] == 1
        assert packed[0, 2] == np.uint64(1) << np.uint64(1)

    def test_width_padding(self):
        b = np.ones((2, 3), dtype=np.uint8)
        packed = bits.packbits_rows(b, width=200)
        assert packed.shape == (2, 4)
        assert packed[0, 0] == 0b111

    def test_width_too_small_raises(self):
        with pytest.raises(ValueError):
            bits.packbits_rows(np.ones((1, 5), dtype=np.uint8), width=3)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            bits.packbits_rows(np.ones(5, dtype=np.uint8))

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=50, deadline=None)
    def test_popcount_of_packed_equals_sum(self, n, b, seed):
        rng = np.random.default_rng(seed)
        mat = rng.integers(0, 2, size=(n, b), dtype=np.uint8)
        packed = bits.packbits_rows(mat)
        np.testing.assert_array_equal(
            bits.popcount_rows(packed), mat.sum(axis=1)
        )


class TestBitsetOps:
    def test_set_test_clear(self):
        masks = np.zeros((2, 2), dtype=np.uint64)
        bits.bitset_set(masks, 0, 70)
        assert bits.bitset_test(masks, 0, 70)
        assert not bits.bitset_test(masks, 0, 69)
        assert not bits.bitset_test(masks, 1, 70)
        bits.bitset_clear(masks, 0, 70)
        assert not bits.bitset_test(masks, 0, 70)

    def test_from_ragged_lists(self):
        masks = bits.bitset_from_lists([np.array([0, 65]), np.array([], dtype=int)], 128)
        assert masks.shape == (2, 2)
        assert bits.bitset_test(masks, 0, 0)
        assert bits.bitset_test(masks, 0, 65)
        assert bits.popcount_rows(masks)[1] == 0

    def test_from_dense_matrix(self):
        lists = np.array([[0, 5], [1, -1]], dtype=np.int64)
        masks = bits.bitset_from_lists(lists, 64)
        assert bits.bitset_test(masks, 0, 0)
        assert bits.bitset_test(masks, 0, 5)
        assert bits.bitset_test(masks, 1, 1)
        assert bits.popcount_rows(masks)[1] == 1  # -1 padding skipped

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            bits.bitset_from_lists([np.array([64])], 64)
        with pytest.raises(ValueError):
            bits.bitset_from_lists(np.array([[64]]), 64)

    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_intersection_matches_sets(self, nbits, seed):
        rng = np.random.default_rng(seed)
        a = rng.choice(nbits, size=min(10, nbits), replace=False)
        b = rng.choice(nbits, size=min(10, nbits), replace=False)
        masks = bits.bitset_from_lists([a, b], nbits)
        inter = bits.popcount_rows(masks[0:1] & masks[1:2])[0]
        assert inter == len(set(a.tolist()) & set(b.tolist()))


class TestLowestSetBitRows:
    def test_basic(self):
        masks = np.array(
            [[0b1000, 0], [0, 1], [0, 0], [1, 1]], dtype=np.uint64
        )
        np.testing.assert_array_equal(
            bits.lowest_set_bit_rows(masks), [3, 64, -1, 0]
        )

    def test_high_bits(self):
        masks = np.zeros((2, 2), dtype=np.uint64)
        masks[0, 0] = np.uint64(1) << np.uint64(63)
        masks[1, 1] = np.uint64(1) << np.uint64(63)
        np.testing.assert_array_equal(
            bits.lowest_set_bit_rows(masks), [63, 127]
        )

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            bits.lowest_set_bit_rows(np.zeros(3, dtype=np.uint64))

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_bitset_indices(self, nbits, seed):
        rng = np.random.default_rng(seed)
        rows = [
            rng.choice(nbits, size=rng.integers(0, min(8, nbits) + 1), replace=False)
            for _ in range(5)
        ]
        masks = bits.bitset_from_lists(rows, nbits)
        got = bits.lowest_set_bit_rows(masks)
        for i, row in enumerate(rows):
            expect = int(row.min()) if len(row) else -1
            assert got[i] == expect


class TestSmallestAvailableColor:
    """Canonical home moved here from coloring.base — the same
    lowest-set-bit primitive the list engines pick colors with."""

    def test_empty(self):
        assert bits.smallest_available_color(np.array([], dtype=np.int64)) == 0

    def test_ignores_negative(self):
        assert bits.smallest_available_color(np.array([-1, -1])) == 0

    def test_gap(self):
        assert bits.smallest_available_color(np.array([0, 2, 3])) == 1

    def test_dense_prefix(self):
        assert bits.smallest_available_color(np.array([0, 1, 2])) == 3

    def test_duplicates(self):
        assert bits.smallest_available_color(np.array([0, 0, 1, 1])) == 2

    def test_huge_values_ignored(self):
        assert bits.smallest_available_color(np.array([10**9])) == 0

    def test_beyond_word_boundary(self):
        assert bits.smallest_available_color(np.arange(130)) == 130

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        forbidden = rng.integers(-1, 20, size=rng.integers(0, 40))
        taken = set(int(c) for c in forbidden if c >= 0)
        expect = next(c for c in range(len(forbidden) + 2) if c not in taken)
        assert bits.smallest_available_color(forbidden) == expect
