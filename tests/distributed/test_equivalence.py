"""ISSUE 5 acceptance: distributed builds and colorings are bit-identical.

A ``LocalCluster`` with 2 and 3 shards must produce bit-identical
conflict CSR and Picasso colorings per seed vs ``SerialExecutor`` and
``PoolExecutor``, for both the sweep and the ``parallel-list`` coloring
engine — sharding is purely a throughput knob, exactly like
``n_workers`` one PR earlier.
"""

import os

import numpy as np
import pytest

from repro.core import Picasso, PicassoParams
from repro.core.conflict import build_conflict_graph, count_conflict_edges
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.coloring.parallel_list import parallel_list_color
from repro.device.backends import available_backends
from repro.distributed import LocalCluster
from repro.parallel.executor import PoolExecutor
from repro.pauli import random_pauli_set

#: CI pins the pool size via REPRO_TEST_N_WORKERS (mirrors
#: tests/parallel); shard counts 2 and 3 are always covered.
_CI_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))


@pytest.fixture(scope="module", params=[2, 3])
def cluster(request):
    with LocalCluster(request.param) as c:
        yield c


def _assert_bit_identical(got, ref):
    np.testing.assert_array_equal(got.offsets, ref.offsets)
    np.testing.assert_array_equal(got.targets, ref.targets)
    assert got.targets.dtype == ref.targets.dtype


def _build(ps, masks, **kw):
    src = PauliComplementSource(ps)
    return build_conflict_graph(
        ps.n, src.edge_mask, masks, edge_block_fn=src.edge_block, **kw
    )


class TestConflictCSREquivalence:
    @pytest.mark.parametrize("engine", ["tiled", "pairs"])
    def test_cluster_bit_identical_to_serial_and_pool(self, cluster, engine):
        ps = random_pauli_set(120, 7, seed=5)
        _, masks = assign_color_lists(120, 18, 5, rng=3)
        ref, m_ref = _build(ps, masks, engine=engine)
        pool, m_pool = _build(
            ps, masks, engine=engine, executor=PoolExecutor(_CI_WORKERS)
        )
        got, m_got = _build(
            ps, masks, engine=engine, executor="cluster", hosts=cluster.hosts
        )
        assert m_got == m_ref == m_pool
        _assert_bit_identical(got, ref)
        _assert_bit_identical(got, pool)

    def test_repeat_builds_on_one_executor_use_token_cache(self, cluster):
        """The delta-install path: the root source installs once under
        a sweep token; later sweeps on the same executor ship only the
        colmasks delta and still build bit-identical CSR."""
        ps = random_pauli_set(90, 6, seed=3)
        src = PauliComplementSource(ps)
        with cluster.executor() as ex:
            for rng_seed in (0, 1, 2):
                _, masks = assign_color_lists(90, 14, 4, rng=rng_seed)
                ref, m_ref = build_conflict_graph(
                    90, src.edge_mask, masks, edge_block_fn=src.edge_block
                )
                got, m_got = build_conflict_graph(
                    90, src.edge_mask, masks, edge_block_fn=src.edge_block,
                    executor=ex, source=src,
                )
                assert m_got == m_ref
                _assert_bit_identical(got, ref)
                # The static payload is installed and pinned to the
                # current agent incarnations after each sweep.
                assert any(
                    ex.holds_token(t) for t in ex._tokens.values()
                )

    def test_count_conflict_edges_matches(self, cluster):
        ps = random_pauli_set(80, 6, seed=7)
        src = PauliComplementSource(ps)
        _, masks = assign_color_lists(80, 12, 4, rng=5)
        assert count_conflict_edges(
            80, src.edge_mask, masks, hosts=cluster.hosts, executor="cluster"
        ) == count_conflict_edges(80, src.edge_mask, masks)


class TestPicassoEquivalence:
    @pytest.mark.parametrize("fused", [False, True])
    def test_sweep_coloring_identical_per_seed(self, cluster, fused):
        """End-to-end Algorithm 1 with the default greedy-dynamic
        coloring: serial, pool and cluster draw identical graphs, so
        the coloring is identical per seed — in both the fused and the
        classic iterate."""
        ps = random_pauli_set(150, 8, seed=9)
        serial = Picasso(params=PicassoParams(fused=fused), seed=11).color(ps)
        pool = Picasso(
            params=PicassoParams(n_workers=_CI_WORKERS, fused=fused), seed=11
        ).color(ps)
        dist = Picasso(
            params=PicassoParams(hosts=cluster.hosts, fused=fused), seed=11
        ).color(ps)
        np.testing.assert_array_equal(serial.colors, pool.colors)
        np.testing.assert_array_equal(serial.colors, dist.colors)
        assert serial.n_colors == dist.n_colors

    @pytest.mark.parametrize("fused", [False, True])
    def test_parallel_list_engine_identical_per_seed(self, cluster, fused):
        """The round-synchronous coloring engine dispatched over the
        cluster: rounds are pure functions of committed state, so any
        shard count lands on the same colors as in-process rounds."""
        ps = random_pauli_set(150, 8, seed=9)
        serial = Picasso(
            params=PicassoParams(color_engine="parallel-list", fused=fused),
            seed=11,
        ).color(ps)
        pool = Picasso(
            params=PicassoParams(
                color_engine="parallel-list", n_workers=_CI_WORKERS,
                fused=fused,
            ),
            seed=11,
        ).color(ps)
        dist = Picasso(
            params=PicassoParams(
                color_engine="parallel-list", hosts=cluster.hosts,
                fused=fused,
            ),
            seed=11,
        ).color(ps)
        np.testing.assert_array_equal(serial.colors, pool.colors)
        np.testing.assert_array_equal(serial.colors, dist.colors)
        assert serial.engine == dist.engine == "parallel-list"

    @pytest.mark.parametrize("kernel_backend", available_backends())
    @pytest.mark.parametrize(
        "color_engine", ["greedy-dynamic", "parallel-list"]
    )
    def test_fused_identical_to_unfused(
        self, cluster, color_engine, kernel_backend
    ):
        """The PR 7 bit-identity contract: the fused iterate lands on
        the classic iterate's exact colors for every gather/executor
        combination, both coloring engines and every available kernel
        backend."""
        ps = random_pauli_set(150, 8, seed=9)
        ref = Picasso(
            params=PicassoParams(color_engine=color_engine, fused=False),
            seed=11,
        ).color(ps)
        for kw in (
            {},
            {"n_workers": _CI_WORKERS},
            {"n_workers": _CI_WORKERS, "shm_gather": True},
            {"hosts": cluster.hosts},
        ):
            got = Picasso(
                params=PicassoParams(
                    color_engine=color_engine, fused=True,
                    kernel_backend=kernel_backend, **kw
                ),
                seed=11,
            ).color(ps)
            np.testing.assert_array_equal(ref.colors, got.colors)
            assert all(s.fused for s in got.iterations)
            assert all(s.edge_sweep_s == 0.0 for s in got.iterations)

    def test_coloring_validates(self, cluster):
        ps = random_pauli_set(100, 7, seed=21)
        dist = Picasso(
            params=PicassoParams(hosts=cluster.hosts), seed=4
        ).color(ps)
        assert PauliComplementSource(ps).validate(dist.colors)


class TestParallelListDirect:
    def test_direct_rounds_identical(self, cluster):
        from repro.graphs.generators import erdos_renyi

        g = erdos_renyi(200, 0.05, seed=2)
        lists = np.tile(np.arange(24, dtype=np.int64), (200, 1))
        ref_colors, ref_vu, ref_info = parallel_list_color(g, lists, rng=7)
        with cluster.executor() as ex:
            got_colors, got_vu, got_info = parallel_list_color(
                g, lists, rng=7, executor=ex
            )
        np.testing.assert_array_equal(ref_colors, got_colors)
        np.testing.assert_array_equal(ref_vu, got_vu)
        assert ref_info["n_rounds"] == got_info["n_rounds"]
