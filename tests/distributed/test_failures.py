"""Transport failure paths: kills, wedges, restarts — bounded, never hung.

Mirrors the ``PoolExecutor`` kill-tests in ``tests/parallel``: a worker
agent killed mid-round must surface a bounded-timeout error (not a
hang) and the cluster executor must recycle its connections and be
usable again.
"""

import time

import numpy as np
import pytest

from repro.distributed import ClusterExecutor, LocalCluster
from repro.distributed.transport import TransportError

_STATE: dict = {}


def _install(bias):
    _STATE["bias"] = bias


def _square(x):
    return x * x


def _slow_echo(seconds):
    time.sleep(seconds)
    return seconds


class TestKilledWorker:
    def test_kill_mid_round_surfaces_bounded_error_and_recycles(self):
        """The satellite acceptance: SIGKILL an agent while its strip
        is in flight — the dispatcher raises within the bound (the OS
        resets the socket, so usually within milliseconds), recycles,
        and serves the next sweep after a restart."""
        with LocalCluster(2) as cluster:
            ex = cluster.executor(result_timeout_s=30.0)
            # Round-robin deal: shard 0 gets [0, 0], shard 1 gets the
            # two slow tasks — kill shard 1 while it sleeps.
            it = ex.imap(_slow_echo, [0.0, 5.0, 0.0, 5.0])
            assert next(it) == 0.0
            cluster.kill_worker(1)
            t0 = time.perf_counter()
            with pytest.raises(RuntimeError, match="died mid-strip"):
                list(it)
            assert time.perf_counter() - t0 < 40.0
            assert not ex.connected  # recycled, not wedged
            # Recovery: bring a fresh agent up on the same port; the
            # same executor reconnects transparently.
            cluster.restart_worker(1)
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
            ex.close()

    def test_wedged_worker_times_out(self):
        """An agent that is alive but stuck past the result bound is
        indistinguishable from dead: the dispatcher must give up at
        the bound, not wait forever."""
        with LocalCluster(2) as cluster:
            ex = cluster.executor(result_timeout_s=1.0)
            t0 = time.perf_counter()
            with pytest.raises(RuntimeError, match="within 1s|died mid-strip"):
                list(ex.imap(_slow_echo, [5.0, 5.0]))
            assert time.perf_counter() - t0 < 20.0
            assert not ex.connected
            ex.close()

    def test_broken_broadcast_recycles(self):
        """A dead agent fails the install broadcast within the bound
        and the connections recycle (the pool's broken-barrier
        behavior, over sockets)."""
        with LocalCluster(2) as cluster:
            ex = cluster.executor(broadcast_timeout_s=10.0)
            ex.map(_square, [1])  # connect
            assert ex.connected
            cluster.kill_worker(0)
            t0 = time.perf_counter()
            with pytest.raises(RuntimeError, match="broadcast failed"):
                ex.map(_square, [1, 2], initializer=_install, payload=(0,))
            assert time.perf_counter() - t0 < 30.0
            assert not ex.connected
            ex.close()

    def test_connect_to_dead_cluster_raises(self):
        """Nothing listening: connect fails fast with a TransportError,
        not a silent hang."""
        with LocalCluster(1) as cluster:
            hosts = cluster.hosts
        # Cluster closed: the port is free again, nothing listens.
        ex = ClusterExecutor(hosts, connect_timeout_s=5.0)
        with pytest.raises(TransportError, match="cannot connect"):
            ex.map(_square, [1])
        ex.close()


class TestRestartInvalidatesTokens:
    def test_incarnation_change_forces_full_install(self):
        """A restarted agent has an empty payload cache; the executor
        must see the incarnation change and refuse the delta path."""
        with LocalCluster(2) as cluster:
            ex = cluster.executor()
            ex.map(
                _square, [1, 2], initializer=_install,
                payload=(0,), payload_token=("sweep", 1),
            )
            assert ex.holds_token(("sweep", 1))
            cluster.kill_worker(0)
            cluster.restart_worker(0)
            # The stale connection may not have noticed the death yet,
            # but the install path is what matters: the next sweep must
            # recover (recycle + reconnect) and re-install in full.
            out = None
            for _ in range(2):
                try:
                    out = ex.map(
                        _square, [3], initializer=_install,
                        payload=(1,), payload_token=("sweep", 1),
                    )
                    break
                except RuntimeError:
                    continue  # first attempt may hit the dead socket
            assert out == [9]
            assert ex.holds_token(("sweep", 1))
            ex.close()

    def test_payload_not_installed_travels_verbatim(self):
        """The delta-install guard exception crosses the wire as
        itself, so the dispatcher's one-shot full-install retry
        (imap_delta_install) can catch it."""
        from repro.parallel.pool import PayloadNotInstalled, init_sweep_worker

        with LocalCluster(2) as cluster:
            with cluster.executor() as ex:
                # A delta-only payload against agents that never saw
                # the full install: the worker raises
                # PayloadNotInstalled and it must arrive as that type.
                payload = {
                    "token": ("sweep", 999, "tiled", 1 << 18),
                    "static": None,
                    "delta": {},
                }
                with pytest.raises(PayloadNotInstalled):
                    ex.map(
                        _square, [1],
                        initializer=init_sweep_worker, payload=(payload,),
                    )
                # The failed broadcast recycled the connections.
                assert not ex.connected


class TestAgentResilience:
    def test_agent_survives_dispatcher_churn(self):
        """Agents outlive executors: abandoned streams, closes and
        reconnects leave them serving."""
        with LocalCluster(1) as cluster:
            for _ in range(3):
                with cluster.executor() as ex:
                    it = ex.imap(_square, [1, 2, 3, 4])
                    next(it)  # abandon mid-stream
                    del it
            with cluster.executor() as ex:
                assert ex.map(_square, [7]) == [49]

    def test_distributed_build_recovers_after_restart(self):
        """End to end: a build that loses an agent raises bounded; the
        next build on a fresh executor (after restart) is bit-identical
        to serial."""
        from repro.core.conflict import build_conflict_graph
        from repro.core.palette import assign_color_lists
        from repro.core.sources import PauliComplementSource
        from repro.pauli import random_pauli_set

        ps = random_pauli_set(90, 6, seed=3)
        _, masks = assign_color_lists(90, 14, 4, rng=1)
        src = PauliComplementSource(ps)
        ref, m_ref = build_conflict_graph(
            90, src.edge_mask, masks, edge_block_fn=src.edge_block
        )
        with LocalCluster(2) as cluster:
            cluster.kill_worker(1)
            cluster.restart_worker(1)
            with cluster.executor() as ex:
                got, m_got = build_conflict_graph(
                    90, src.edge_mask, masks,
                    edge_block_fn=src.edge_block, executor=ex,
                )
        assert m_got == m_ref
        np.testing.assert_array_equal(got.offsets, ref.offsets)
        np.testing.assert_array_equal(got.targets, ref.targets)
