"""Executor-contract tests for ClusterExecutor over a LocalCluster.

Mirrors ``tests/parallel/test_executor.py``: the cluster backend must
honor the same imap/token/lifecycle contract as the process pool, just
over sockets.  CI runs this directory under forced ``spawn``.
"""

import pytest

from repro.distributed import ClusterExecutor, LocalCluster, make_cluster_executor
from repro.parallel.executor import make_executor

# Module-level so they pickle into the (possibly spawn-started) agents.
_STATE: dict = {}


def _install(bias):
    _STATE["bias"] = bias


def _square_plus_bias(x):
    return x * x + _STATE["bias"]


def _square(x):
    return x * x


def _raise_task(x):
    raise ValueError(f"task {x} exploded")


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(2) as c:
        yield c


class TestClusterExecutor:
    def test_map_order_and_initializer(self, cluster):
        with cluster.executor() as ex:
            out = ex.map(
                _square_plus_bias, [3, 1, 2], initializer=_install, payload=(10,)
            )
            assert out == [19, 11, 14]

    def test_imap_streams_in_task_order(self, cluster):
        with cluster.executor() as ex:
            it = ex.imap(_square, list(range(9)))
            assert next(it) == 0
            assert list(it) == [k * k for k in range(1, 9)]

    def test_empty_tasks_never_connect(self, cluster):
        with cluster.executor() as ex:
            assert ex.map(_square, []) == []
            # Contract: no tasks -> no connections, no installs anywhere.
            assert not ex.connected

    def test_connections_persist_across_sweeps(self, cluster):
        with cluster.executor() as ex:
            ex.map(_square_plus_bias, [1], initializer=_install, payload=(0,))
            incs = ex.worker_incarnations()
            assert incs is not None and len(incs) == 2
            ex.map(_square_plus_bias, [2], initializer=_install, payload=(1,))
            assert ex.worker_incarnations() == incs

    def test_payload_token_tracking(self, cluster):
        with cluster.executor() as ex:
            assert not ex.holds_token("t")
            ex.map(
                _square_plus_bias, [1, 2], initializer=_install,
                payload=(0,), payload_token="t",
            )
            assert ex.holds_token("t")
            assert not ex.holds_token("other")
            assert not ex.holds_token(None)
            # Channelled tokens coexist (sweep vs color on one cluster).
            ex.map(
                _square_plus_bias, [1], initializer=_install,
                payload=(0,), payload_token=("sweep", 1),
            )
            ex.map(
                _square_plus_bias, [1], initializer=_install,
                payload=(0,), payload_token=("color", 2),
            )
            assert ex.holds_token(("sweep", 1))
            assert ex.holds_token(("color", 2))
            # A tokenless install clears every channel's record.
            ex.map(_square_plus_bias, [1], initializer=_install, payload=(0,))
            assert not ex.holds_token(("sweep", 1))
            assert not ex.holds_token(("color", 2))

    def test_overlapping_sweeps_raise(self, cluster):
        with cluster.executor() as ex:
            it = ex.imap(_square, [1, 2, 3, 4])
            next(it)
            with pytest.raises(RuntimeError, match="overlapping"):
                ex.imap(_square, [5])
            # Abandon the first stream; the executor recycles and works.
            del it
            assert ex.map(_square, [5]) == [25]

    def test_task_exception_propagates_and_recycles(self, cluster):
        with cluster.executor() as ex:
            with pytest.raises(ValueError, match="task 1 exploded"):
                ex.map(_raise_task, [1, 2])
            assert not ex.connected  # aborted stream -> recycled
            assert ex.map(_square, [3]) == [9]  # reconnects transparently

    def test_close_idempotent_and_reusable(self, cluster):
        ex = cluster.executor()
        assert ex.map(_square, [2]) == [4]
        ex.close()
        ex.close()
        assert not ex.connected
        # Agents outlive the executor; a closed executor reconnects.
        assert ex.map(_square, [3]) == [9]
        ex.close()

    def test_n_workers_matches_shards(self, cluster):
        ex = cluster.executor()
        assert ex.n_workers == 2
        assert ex.supports_payload_cache
        assert not ex.supports_shm_gather

    def test_fewer_tasks_than_shards(self, cluster):
        with cluster.executor() as ex:
            assert ex.map(_square, [5]) == [25]


class TestFactories:
    def test_make_cluster_executor_transport_validation(self, cluster):
        ex = make_cluster_executor(cluster.hosts, "socket")
        assert isinstance(ex, ClusterExecutor)
        ex.close()
        with pytest.raises(ValueError, match="unknown transport"):
            make_cluster_executor(cluster.hosts, "carrier-pigeon")

    def test_make_executor_cluster_spec(self, cluster, monkeypatch):
        ex = make_executor("cluster", hosts=",".join(cluster.hosts))
        assert isinstance(ex, ClusterExecutor)
        ex.close()
        # auto + hosts routes to the cluster backend too.
        ex = make_executor("auto", hosts=cluster.hosts)
        assert isinstance(ex, ClusterExecutor)
        ex.close()
        # REPRO_HOSTS is the no-code-changes path.
        monkeypatch.setenv("REPRO_HOSTS", ",".join(cluster.hosts))
        ex = make_executor("cluster")
        assert isinstance(ex, ClusterExecutor)
        assert ex.n_workers == 2
        ex.close()

    def test_make_executor_cluster_without_hosts(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        with pytest.raises(ValueError, match="needs hosts"):
            make_executor("cluster")

    def test_auto_without_hosts_stays_local(self):
        from repro.parallel.executor import PoolExecutor, SerialExecutor

        assert isinstance(make_executor("auto", 1), SerialExecutor)
        ex = make_executor("auto", 2)
        assert isinstance(ex, PoolExecutor)
        ex.close()

    def test_local_cluster_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            LocalCluster(0)
