"""Hierarchical cluster agents: each agent fans out to a local pool.

PR 7 acceptance: an agent started with ``inner_workers > 1`` advertises
its pool size as capacity in the handshake, runs its shard's strips on
the inner pool, and keeps every PR 6 failure contract — a SIGKILLed
*inner* worker surfaces on the dispatcher as the pool's typed
:class:`~repro.parallel.executor.WorkerFailure` (within the inner
result bound), a SIGKILLed *agent* behaves exactly like a flat one, and
redistribution over hierarchical shards stays bit-identical.
"""

import os
import time

import numpy as np
import pytest

from repro.core import Picasso, PicassoParams
from repro.core.conflict import build_conflict_graph
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.distributed import ClusterExecutor, LocalCluster
from repro.parallel.executor import WorkerFailure
from repro.pauli import random_pauli_set
from repro.resilience.faults import clear_faults


@pytest.fixture(autouse=True)
def _disarm():
    clear_faults()
    yield
    clear_faults()


def _getpid(_):
    return os.getpid()


def _square(x):
    return x * x


def _slow_echo(seconds):
    time.sleep(seconds)
    return seconds


def _problem(n=120, seed=3):
    ps = random_pauli_set(n, 6, seed=seed)
    _, masks = assign_color_lists(n, 16, 4, rng=1)
    src = PauliComplementSource(ps)
    ref, m_ref = build_conflict_graph(
        n, src.edge_mask, masks, edge_block_fn=src.edge_block
    )
    return src, masks, ref, m_ref


def _build(src, masks, ex, **kw):
    return build_conflict_graph(
        src.n, src.edge_mask, masks, edge_block_fn=src.edge_block,
        executor=ex, **kw
    )


def _assert_identical(got, m_got, ref, m_ref):
    assert m_got == m_ref
    np.testing.assert_array_equal(got.offsets, ref.offsets)
    np.testing.assert_array_equal(got.targets, ref.targets)


class TestHierarchicalAgent:
    def test_capacity_advertised_in_hello(self):
        with LocalCluster(2, inner_workers=3) as cluster:
            with cluster.executor() as ex:
                assert ex.worker_capacities() == [3, 3]

    def test_flat_agent_capacity_is_one(self):
        with LocalCluster(2) as cluster:
            with cluster.executor() as ex:
                assert ex.worker_capacities() == [1, 1]

    def test_tasks_run_on_inner_pool(self):
        """Strips execute in the agent's pool workers, not the agent
        process itself."""
        with LocalCluster(1, inner_workers=2) as cluster:
            agent_pid = cluster.worker_pids()[0]
            with cluster.executor() as ex:
                pids = set(ex.map(_getpid, list(range(8))))
            assert agent_pid not in pids
            assert 1 <= len(pids) <= 2

    def test_build_bit_identical_and_delta_path(self):
        """Sharded build over hierarchical agents matches serial, and
        repeat sweeps on one executor ride the token-cached delta path
        through the agents' inner pools."""
        src, masks, ref, m_ref = _problem()
        with LocalCluster(2, inner_workers=2) as cluster:
            with cluster.executor() as ex:
                for _ in range(2):
                    got, m_got = _build(src, masks, ex, source=src)
                    _assert_identical(got, m_got, ref, m_ref)
                assert any(ex.holds_token(t) for t in ex._tokens.values())

    def test_heterogeneous_capacities_weighted_and_identical(self):
        """Mixed flat + hierarchical agents trigger the capacity-
        weighted strip deal; the result is still bit-identical."""
        from repro.parallel.pool import strip_shares

        src, masks, ref, m_ref = _problem()
        with LocalCluster(1) as flat, LocalCluster(1, inner_workers=3) as hier:
            hosts = flat.hosts + hier.hosts
            with ClusterExecutor(hosts) as ex:
                assert ex.worker_capacities() == [1, 3]
                assert strip_shares(ex, 6) == [1, 3, 1, 3, 1, 3]
                got, m_got = _build(src, masks, ex)
        _assert_identical(got, m_got, ref, m_ref)

    def test_picasso_hierarchical_identical_fused_and_classic(self):
        ps = random_pauli_set(120, 7, seed=5)
        ref = Picasso(params=PicassoParams(fused=False), seed=3).color(ps)
        with LocalCluster(2, inner_workers=2) as cluster:
            for fused in (False, True):
                got = Picasso(
                    params=PicassoParams(hosts=cluster.hosts, fused=fused),
                    seed=3,
                ).color(ps)
                np.testing.assert_array_equal(ref.colors, got.colors)


class TestHierarchicalFailures:
    def test_killed_inner_worker_surfaces_typed_failure(
        self, monkeypatch, tmp_path
    ):
        """SIGKILL an *inner* pool worker mid-strip: the agent's pool
        detects it within its result bound, the typed WorkerFailure
        crosses the wire verbatim, and the agent (inner pool recycled)
        serves the next sweep bit-identically."""
        src, masks, ref, m_ref = _problem()
        # The agent reads its inner result bound at spawn; the kill
        # fault fires in the first inner worker to run a strip, once.
        monkeypatch.setenv("REPRO_RESULT_TIMEOUT_S", "5")
        monkeypatch.setenv("REPRO_FAULT", "kill:task:1")
        monkeypatch.setenv("REPRO_FAULT_ONCE", str(tmp_path / "once"))
        monkeypatch.setenv("REPRO_FAULT_SPARE_PID", str(os.getpid()))
        with LocalCluster(2, inner_workers=2) as cluster:
            with cluster.executor(result_timeout_s=30.0) as ex:
                t0 = time.perf_counter()
                with pytest.raises(WorkerFailure):
                    _build(src, masks, ex)
                assert time.perf_counter() - t0 < 40.0
                got, m_got = _build(src, masks, ex)
        _assert_identical(got, m_got, ref, m_ref)
        assert os.path.exists(tmp_path / "once")

    def test_killed_agent_behaves_like_flat(self):
        """PR 6 parity: SIGKILLing a hierarchical agent mid-round
        surfaces a bounded error, recycles, and a same-port restart
        serves again."""
        with LocalCluster(2, inner_workers=2) as cluster:
            ex = cluster.executor(result_timeout_s=30.0)
            it = ex.imap(_slow_echo, [0.0, 5.0, 0.0, 5.0])
            assert next(it) == 0.0
            cluster.kill_worker(1)
            t0 = time.perf_counter()
            with pytest.raises(RuntimeError):
                list(it)
            assert time.perf_counter() - t0 < 40.0
            assert not ex.connected
            cluster.restart_worker(1)
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
            ex.close()

    def test_redistribution_over_hierarchical_shards_identical(
        self, monkeypatch, tmp_path
    ):
        """A shard that fails (inner worker killed) redistributes to
        the survivors and the CSR stays bit-identical — the PR 6
        redistribution contract, unchanged under hierarchy."""
        src, masks, ref, m_ref = _problem()
        monkeypatch.setenv("REPRO_RESULT_TIMEOUT_S", "5")
        monkeypatch.setenv("REPRO_FAULT", "kill:task:1")
        monkeypatch.setenv("REPRO_FAULT_ONCE", str(tmp_path / "once"))
        monkeypatch.setenv("REPRO_FAULT_SPARE_PID", str(os.getpid()))
        with LocalCluster(2, inner_workers=2) as cluster:
            with cluster.executor(
                result_timeout_s=30.0, redistribute=True
            ) as ex:
                got, m_got = _build(src, masks, ex)
        _assert_identical(got, m_got, ref, m_ref)
