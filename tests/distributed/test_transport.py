"""Tests for the length-prefixed socket transport (frames, handshake)."""

import socket

import numpy as np
import pytest

from repro.distributed.transport import (
    MAGIC,
    PROTOCOL_VERSION,
    HandshakeError,
    TransportError,
    TransportVersionError,
    check_hello,
    parse_hosts,
    recv_msg,
    send_msg,
    server_hello,
)


def _pair():
    return socket.socketpair()


class TestFrames:
    def test_roundtrip_plain_objects(self):
        a, b = _pair()
        try:
            for obj in [{"op": "ping"}, [1, "two", None], 42, b"raw"]:
                send_msg(a, obj)
                assert recv_msg(b, 5.0) == obj
        finally:
            a.close()
            b.close()

    def test_roundtrip_numpy_out_of_band(self):
        """Arrays inside arbitrary containers survive, bit for bit.

        The receiver drains on a thread, as a real peer does — frames
        larger than the kernel's socket buffer cannot round-trip
        single-threaded (true of any stream protocol).
        """
        import threading

        a, b = _pair()
        try:
            msg = {
                "u": np.arange(1_000_000, dtype=np.int64),  # ~8 MB raw
                "f": np.linspace(0, 1, 7),
                "packed": np.array([[1, 2], [3, 4]], dtype=np.uint64),
                "empty": np.empty(0, dtype=np.int64),
                "nested": [np.array([5, 6], dtype=np.int32), "tag"],
            }
            box = {}
            reader = threading.Thread(
                target=lambda: box.setdefault("got", recv_msg(b, 10.0))
            )
            reader.start()
            send_msg(a, msg, 10.0)
            reader.join(15.0)
            got = box["got"]
            for key in ("u", "f", "packed", "empty"):
                np.testing.assert_array_equal(got[key], msg[key])
                assert got[key].dtype == msg[key].dtype
            np.testing.assert_array_equal(got["nested"][0], msg["nested"][0])
        finally:
            a.close()
            b.close()

    def test_received_arrays_are_writable(self):
        """Out-of-band buffers land in bytearrays, so workers can
        mutate received state in place (the forbidden-bitset delta)."""
        a, b = _pair()
        try:
            send_msg(a, np.arange(8, dtype=np.uint64))
            got = recv_msg(b, 5.0)
            got[0] = np.uint64(7)  # must not raise
            assert got[0] == 7
        finally:
            a.close()
            b.close()

    def test_large_array_pickle_stays_small(self):
        """The point of the raw-buffer protocol: a big array's bytes do
        not pass through the pickle stream."""
        import pickle

        arr = np.arange(1 << 16, dtype=np.int64)  # 512 KB
        buffers = []
        payload = pickle.dumps(
            {"arr": arr}, protocol=5, buffer_callback=buffers.append
        )
        assert len(payload) < 4096
        assert sum(b.raw().nbytes for b in buffers) == arr.nbytes

    def test_bad_magic_rejected(self):
        a, b = _pair()
        try:
            a.sendall(b"GET / HTTP/1.1\r\n" + b"\x00" * 16)
            with pytest.raises(TransportError, match="magic"):
                recv_msg(b, 5.0)
        finally:
            a.close()
            b.close()

    def test_peer_close_mid_frame(self):
        a, b = _pair()
        a.close()
        try:
            with pytest.raises(TransportError, match="closed"):
                recv_msg(b, 5.0)
        finally:
            b.close()

    def test_recv_timeout_is_bounded(self):
        import time

        a, b = _pair()
        try:
            t0 = time.perf_counter()
            with pytest.raises(TransportError, match="timed out"):
                recv_msg(b, 0.2)
            assert time.perf_counter() - t0 < 5.0
        finally:
            a.close()
            b.close()


class TestHandshake:
    def test_server_hello_accepted(self):
        hello = server_hello("abc123")
        assert check_hello(hello) is hello
        assert hello["incarnation"] == "abc123"

    def test_version_mismatch_raises(self):
        bad = {"magic": MAGIC, "version": PROTOCOL_VERSION + 1}
        with pytest.raises(HandshakeError, match="version mismatch"):
            check_hello(bad)

    def test_version_mismatch_is_typed_and_names_both_sides(self):
        """The satellite: a typed error carrying both protocol
        versions, so an operator sees *which* side is stale."""
        bad = {"magic": MAGIC, "version": PROTOCOL_VERSION + 3}
        with pytest.raises(TransportVersionError) as info:
            check_hello(bad)
        exc = info.value
        assert exc.peer_version == PROTOCOL_VERSION + 3
        assert exc.local_version == PROTOCOL_VERSION
        assert str(PROTOCOL_VERSION + 3) in str(exc)
        assert str(PROTOCOL_VERSION) in str(exc)
        assert "upgrade" in str(exc)

    def test_version_error_survives_pickling(self):
        """Exceptions cross the wire pickled; the two-arg constructor
        must round-trip (the default reduce would replay the formatted
        message into it)."""
        import pickle

        exc = TransportVersionError(9, PROTOCOL_VERSION)
        back = pickle.loads(pickle.dumps(exc))
        assert isinstance(back, TransportVersionError)
        assert back.peer_version == 9
        assert back.local_version == PROTOCOL_VERSION
        assert str(back) == str(exc)

    def test_non_agent_peer_raises(self):
        with pytest.raises(HandshakeError, match="not a repro worker"):
            check_hello({"hello": "world"})
        with pytest.raises(HandshakeError):
            check_hello("nope")


class TestParseHosts:
    def test_comma_string(self):
        assert parse_hosts("a:1, b:2 ,c:3") == (
            ("a", 1), ("b", 2), ("c", 3),
        )

    def test_sequences(self):
        assert parse_hosts(["a:1", ("b", 2)]) == (("a", 1), ("b", 2))
        assert parse_hosts(("127.0.0.1:7070",)) == (("127.0.0.1", 7070),)

    def test_errors(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_hosts("justahost")
        with pytest.raises(ValueError, match="empty"):
            parse_hosts("")
        with pytest.raises(ValueError):
            parse_hosts("a:notaport")

    def test_duplicate_host_port_rejected(self):
        """The satellite: a repeated address would double-deal tasks to
        one agent and double-count it as a worker."""
        with pytest.raises(ValueError, match="duplicate host a:1"):
            parse_hosts("a:1,b:2,a:1")
        with pytest.raises(ValueError, match="duplicate"):
            parse_hosts([("h", 7), "h:7"])
        # Same host, different ports: two shards on one box is fine.
        assert parse_hosts("h:1,h:2") == (("h", 1), ("h", 2))
