"""Tests for the zero-copy shared-memory gather and the persistent pool.

ISSUE 3 acceptance: serial, pickled-pool and shm-pool builds are
bit-identical per seed; the Lemma 2 undershoot path grows and retries;
a persistent pool is reused (same worker processes) across >= 3 builds;
pinning is a no-op where ``sched_setaffinity`` does not exist.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core import Picasso, PicassoParams
from repro.core.conflict import build_conflict_graph
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.device.csr_build import build_conflict_csr
from repro.device.sim import DeviceSim
from repro.graphs.csr import csr_from_coo_chunks
from repro.parallel import (
    PoolExecutor,
    SerialExecutor,
    ShmCooRegion,
    estimate_conflict_edges,
    pin_current_worker,
    plan_strip_slots,
    shm_conflict_gather,
)
from repro.parallel.shm import MIN_STRIP_SLOTS
from repro.pauli import random_pauli_set
from repro.util.bits import bitset_from_lists


def _worker_pid(_):
    return os.getpid()


def _problem(n=90, nq=6, seed=3, palette=14, lsize=4, rng=1):
    ps = random_pauli_set(n, nq, seed=seed)
    _, masks = assign_color_lists(n, palette, lsize, rng=rng)
    src = PauliComplementSource(ps)
    return ps, src, masks


def _assert_bit_identical(got, ref):
    np.testing.assert_array_equal(got.offsets, ref.offsets)
    np.testing.assert_array_equal(got.targets, ref.targets)
    assert got.targets.dtype == ref.targets.dtype


class TestShmCooRegion:
    def test_create_write_attach_roundtrip(self):
        region = ShmCooRegion.create(64)
        try:
            region.u[:3] = [1, 2, 3]
            region.v[:3] = [4, 5, 6]
            other = ShmCooRegion.attach(region.name, 64)
            u, v = other.slice(0, 3)
            np.testing.assert_array_equal(u, [1, 2, 3])
            np.testing.assert_array_equal(v, [4, 5, 6])
            del u, v  # views must die before the segment unmaps
            other.close()
        finally:
            region.close()
            region.unlink()

    def test_zero_capacity_clamped(self):
        region = ShmCooRegion.create(0)
        try:
            assert region.capacity >= 1
        finally:
            region.close()
            region.unlink()


class TestSizing:
    def test_plan_caps_at_strip_weight(self):
        weights = np.array([10, 1000, 5], dtype=np.int64)
        slots = plan_strip_slots(weights, est_edges=10_000, safety=10.0)
        assert (slots <= weights).all()
        # An over-the-top estimate saturates every strip.
        np.testing.assert_array_equal(slots, weights)

    def test_plan_floor(self):
        weights = np.array([500, 500], dtype=np.int64)
        slots = plan_strip_slots(weights, est_edges=0.0)
        np.testing.assert_array_equal(slots, [MIN_STRIP_SLOTS, MIN_STRIP_SLOTS])

    def test_plan_empty(self):
        assert plan_strip_slots(np.array([], dtype=np.int64), 10.0).size == 0

    def test_estimate_positive_for_overlapping_lists(self):
        _, _, masks = _problem()
        est = estimate_conflict_edges(90, masks)
        assert est > 0
        # Bounded by pair space.
        assert est <= 90 * 89 / 2

    def test_estimate_zero_for_empty_masks(self):
        masks = np.zeros((10, 1), dtype=np.uint64)
        assert estimate_conflict_edges(10, masks) == 0.0


class TestShmGatherEquivalence:
    """shm-pool CSR must be bit-identical to serial and pickled-pool."""

    def _ref(self, src, masks, n):
        return build_conflict_graph(
            n, src.edge_mask, masks, edge_block_fn=src.edge_block
        )

    @pytest.mark.parametrize("engine", ["tiled", "pairs"])
    def test_shm_pool_matches_serial(self, engine):
        ps, src, masks = _problem()
        ref, m_ref = self._ref(src, masks, ps.n)
        with PoolExecutor(2) as ex:
            got, m = build_conflict_graph(
                ps.n, src.edge_mask, masks, engine=engine,
                edge_block_fn=src.edge_block, executor=ex, shm=True,
            )
        assert m == m_ref
        _assert_bit_identical(got, ref)

    def test_shm_spawn_matches_serial(self):
        """The shm path must work without fork (CI forces spawn too)."""
        ps, src, masks = _problem()
        ref, m_ref = self._ref(src, masks, ps.n)
        with PoolExecutor(2, start_method="spawn") as ex:
            got, m = build_conflict_graph(
                ps.n, src.edge_mask, masks,
                edge_block_fn=src.edge_block, executor=ex, shm=True,
            )
        assert m == m_ref
        _assert_bit_identical(got, ref)

    def test_serial_executor_ignores_shm(self):
        """No pipe to avoid for in-process sweeps: shm=True degrades to
        the plain streaming path, same result."""
        ps, src, masks = _problem()
        ref, m_ref = self._ref(src, masks, ps.n)
        got, m = build_conflict_graph(
            ps.n, src.edge_mask, masks, edge_block_fn=src.edge_block,
            executor=SerialExecutor(), shm=True,
        )
        assert m == m_ref
        _assert_bit_identical(got, ref)

    def test_zero_hit_strips(self):
        """Disjoint singleton lists: every strip writes nothing, the
        gather still produces the (empty) graph."""
        ps = random_pauli_set(30, 5, seed=2)
        lists = np.arange(30, dtype=np.int64).reshape(-1, 1)
        masks = bitset_from_lists(lists, 30)
        src = PauliComplementSource(ps)
        with PoolExecutor(2) as ex:
            with shm_conflict_gather(
                30, src.edge_mask, masks,
                edge_block_fn=src.edge_block, executor=ex,
            ) as gather:
                graph = csr_from_coo_chunks(gather.chunks, 30)
            assert gather.n_edges == 0
            assert gather.n_zero_strips == gather.n_strips > 0
            assert gather.chunks == []
        assert graph.n_edges == 0

    def test_undershoot_grows_and_retries(self):
        """A deliberately absurd Lemma 2 estimate (zero) forces strip
        overflow; the retry region is sized exactly and the result stays
        bit-identical."""
        ps, src, masks = _problem()
        ref, m_ref = self._ref(src, masks, ps.n)
        with PoolExecutor(2) as ex:
            with shm_conflict_gather(
                ps.n, src.edge_mask, masks,
                edge_block_fn=src.edge_block, executor=ex,
                est_conflict_edges=0.0, safety=0.0,
            ) as gather:
                graph = csr_from_coo_chunks(gather.chunks, ps.n)
                assert gather.n_retries >= 1
                assert gather.n_edges == m_ref
        _assert_bit_identical(graph, ref)

    def test_views_are_views_not_copies(self):
        """The chunks handed to the assembly alias the shared region."""
        ps, src, masks = _problem()
        with shm_conflict_gather(
            ps.n, src.edge_mask, masks,
            edge_block_fn=src.edge_block, executor=SerialExecutor(),
        ) as gather:
            assert gather.chunks, "expected conflict edges"
            u, v = gather.chunks[0]
            assert u.base is not None  # a view into the region buffer
            del u, v  # views must die before the segment unmaps


class TestPersistentPool:
    def test_reuse_across_three_builds_bit_identical(self):
        """One pool, >= 3 builds: same worker processes every time and
        bit-identical CSR every time (pickled and shm gathers)."""
        ps, src, masks = _problem()
        ref, m_ref = build_conflict_graph(
            ps.n, src.edge_mask, masks, edge_block_fn=src.edge_block
        )
        with PoolExecutor(2) as ex:
            ex.map(_worker_pid, range(8))  # spin the pool up
            pids0 = ex.worker_pids()
            assert len(pids0) == 2
            for k in range(3):
                got, m = build_conflict_graph(
                    ps.n, src.edge_mask, masks,
                    edge_block_fn=src.edge_block, executor=ex,
                    shm=(k % 2 == 0),
                )
                assert m == m_ref
                _assert_bit_identical(got, ref)
                # Same pool, same worker processes every build.
                assert ex.worker_pids() == pids0

    def test_payload_token_delta(self):
        """A source-keyed install leaves its token behind; the next
        sweep on the same executor ships only the delta."""
        ps, src, masks = _problem()
        ref, m_ref = build_conflict_graph(
            ps.n, src.edge_mask, masks, edge_block_fn=src.edge_block
        )
        with PoolExecutor(2) as ex:
            assert not ex.holds_token(object())
            installed = None
            for _ in range(3):
                got, m = build_conflict_graph(
                    ps.n, src.edge_mask, masks,
                    edge_block_fn=src.edge_block, executor=ex,
                    source=src,
                )
                assert m == m_ref
                _assert_bit_identical(got, ref)
                # A token is installed after the first build and stays
                # put across repeats — the signal that later sweeps
                # shipped only the delta.
                token = ex._installed_token
                assert token is not None
                assert installed in (None, token)
                installed = token
                assert ex.holds_token(token)
        assert not ex.holds_token(installed)  # closed pool holds nothing

    def test_engine_switch_on_shared_executor(self):
        """Regression: the payload token names the whole static config,
        so swapping engines (or chunk sizes) on one executor + source
        must force a full re-install, not run a stale cached engine."""
        ps, src, masks = _problem()
        ref_t, m_t = build_conflict_graph(
            ps.n, src.edge_mask, masks, edge_block_fn=src.edge_block
        )
        ref_p, m_p = build_conflict_graph(
            ps.n, src.edge_mask, masks, edge_block_fn=src.edge_block,
            engine="pairs",
        )
        with PoolExecutor(2) as ex:
            for engine, ref, m_ref in (
                ("tiled", ref_t, m_t),
                ("pairs", ref_p, m_p),
                ("tiled", ref_t, m_t),
            ):
                got, m = build_conflict_graph(
                    ps.n, src.edge_mask, masks, engine=engine,
                    edge_block_fn=src.edge_block, executor=ex, source=src,
                )
                assert m == m_ref
                _assert_bit_identical(got, ref)

    def test_close_is_idempotent_and_leaves_no_children(self):
        before = len(mp.active_children())
        ex = PoolExecutor(2)
        ex.map(_worker_pid, range(4))
        ex.close()
        ex.close()
        assert len(mp.active_children()) == before

    def test_abandoned_stream_recycles_pool(self):
        """Dropping a result stream mid-sweep must not poison the next
        sweep (the executor recycles its pool)."""
        with PoolExecutor(2) as ex:
            it = ex.imap(_worker_pid, range(64))
            next(it)
            it.close()
            assert not ex.pool_alive
            out = ex.map(_worker_pid, range(4))
            assert len(out) == 4

    def test_picasso_executor_not_leaked(self):
        """Picasso owns its spec-created pool and closes it."""
        before = len(mp.active_children())
        ps = random_pauli_set(80, 6, seed=1)
        Picasso(params=PicassoParams(n_workers=2), seed=5).color(ps)
        assert len(mp.active_children()) == before


class TestPicassoShmEndToEnd:
    def test_colorings_identical_across_gathers(self):
        ps = random_pauli_set(150, 8, seed=9)
        serial = Picasso(params=PicassoParams(), seed=11).color(ps)
        pickled = Picasso(
            params=PicassoParams(n_workers=2), seed=11
        ).color(ps)
        shm = Picasso(
            params=PicassoParams(n_workers=2, shm_gather=True), seed=11
        ).color(ps)
        np.testing.assert_array_equal(serial.colors, pickled.colors)
        np.testing.assert_array_equal(serial.colors, shm.colors)

    def test_device_shm_under_memory_pressure(self):
        """Regression: once the worst-case COO buffer reaches the
        budget, the COO grab used to leave 0 bytes for the mandatory
        staging region and every shm device build OOMed.  The staging
        hint must be reserved first."""
        n = 1500
        ps = random_pauli_set(n, 12, seed=0)
        _, masks = assign_color_lists(n, 200, 10, rng=0)
        src = PauliComplementSource(ps)
        # Worst-case COO (2 * n * (n-1) * 4 B ~ 18 MB) exceeds what is
        # left of the 40 MB default budget after payload + scratch, so
        # the COO buffer is budget-limited — the regression regime.
        ref, _ = build_conflict_csr(
            ps.n, src.edge_mask, masks, DeviceSim(),
            edge_block_fn=src.edge_block,
        )
        with PoolExecutor(2) as ex:
            got, stats = build_conflict_csr(
                ps.n, src.edge_mask, masks, DeviceSim(),
                edge_block_fn=src.edge_block, executor=ex, shm=True,
            )
        assert stats.gather == "shm"
        _assert_bit_identical(got, ref)

    def test_device_build_charges_shm_region(self):
        ps, src, masks = _problem()
        dev_ref = DeviceSim()
        ref, stats_ref = build_conflict_csr(
            ps.n, src.edge_mask, masks, dev_ref,
            edge_block_fn=src.edge_block,
        )
        dev = DeviceSim()
        with PoolExecutor(2) as ex:
            got, stats = build_conflict_csr(
                ps.n, src.edge_mask, masks, dev,
                edge_block_fn=src.edge_block, executor=ex, shm=True,
            )
        _assert_bit_identical(got, ref)
        assert stats.gather == "shm"
        assert stats_ref.gather == "pickle"
        # The staging region showed up in the budget ledger and was
        # released with everything else.
        assert dev.peak_bytes > dev_ref.peak_bytes
        assert dev.used_bytes == 0
        assert not dev.live_allocations()


class TestPinning:
    def test_noop_without_sched_setaffinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_setaffinity", raising=False)
        assert pin_current_worker(0) is False

    def test_noop_without_sched_getaffinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert pin_current_worker(0) is False

    @pytest.mark.skipif(
        not hasattr(os, "sched_setaffinity"), reason="no affinity syscall"
    )
    def test_pinned_pool_builds_bit_identical(self):
        ps, src, masks = _problem()
        ref, m_ref = build_conflict_graph(
            ps.n, src.edge_mask, masks, edge_block_fn=src.edge_block
        )
        with PoolExecutor(2, pin=True) as ex:
            got, m = build_conflict_graph(
                ps.n, src.edge_mask, masks,
                edge_block_fn=src.edge_block, executor=ex, shm=True,
            )
        assert m == m_ref
        _assert_bit_identical(got, ref)
