"""Tests for pair-space partitioning and executor-routed conflict builds."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Picasso, PicassoParams
from repro.core.conflict import build_conflict_graph, count_conflict_edges
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.device.backends import available_backends
from repro.parallel import (
    PoolExecutor,
    parallel_conflict_graph,
    partition_pairs,
)
from repro.pauli import random_pauli_set
from repro.util.chunking import num_pairs

#: CI pins the backend-equivalence pool size via REPRO_TEST_N_WORKERS
#: (the Actions matrix sets 2); the suite always covers 2 and 3 too.
_CI_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))
_WORKER_COUNTS = sorted({2, 3, _CI_WORKERS})


class TestPartition:
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_covers_exactly(self, n, parts):
        ranges = partition_pairs(n, parts)
        total = 0
        prev_stop = 0
        for r in ranges:
            assert r.start == prev_stop
            prev_stop = r.stop
            total += len(r)
        assert total == num_pairs(n)

    def test_balanced(self):
        ranges = partition_pairs(100, 7)
        sizes = [len(r) for r in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_pairs(10, 0)

    def test_degenerate(self):
        ranges = partition_pairs(1, 4)
        assert sum(len(r) for r in ranges) == 0


def _assert_bit_identical(got, ref):
    np.testing.assert_array_equal(got.offsets, ref.offsets)
    np.testing.assert_array_equal(got.targets, ref.targets)
    assert got.targets.dtype == ref.targets.dtype


class TestParallelConflictGraph:
    def _expected(self, ps, masks):
        src = PauliComplementSource(ps)
        return build_conflict_graph(ps.n, src.edge_mask, masks)

    @pytest.mark.parametrize("engine", ["tiled", "pairs"])
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_matches_sequential(self, n_workers, engine):
        ps = random_pauli_set(70, 6, seed=0)
        _, masks = assign_color_lists(70, 12, 4, rng=0)
        expect_g, expect_m = self._expected(ps, masks)
        got_g, got_m = parallel_conflict_graph(
            ps, masks, n_workers=n_workers, chunk_size=101, engine=engine
        )
        assert got_m == expect_m
        _assert_bit_identical(got_g, expect_g)

    def test_anticommute_orientation(self):
        """want_anticommute flips which pairs count as edges."""
        ps = random_pauli_set(40, 5, seed=1)
        # Full palette overlap: every pair shares a color, so the
        # conflict graph equals the underlying edge set.
        _, masks = assign_color_lists(40, 2, 2, rng=0)
        g_comm, m_comm = parallel_conflict_graph(ps, masks, n_workers=1)
        g_anti, m_anti = parallel_conflict_graph(
            ps, masks, n_workers=1, want_anticommute=True
        )
        assert m_comm + m_anti == num_pairs(40)

    def test_anticommute_parallel_matches_serial(self):
        ps = random_pauli_set(50, 5, seed=4)
        _, masks = assign_color_lists(50, 8, 3, rng=2)
        ref, m_ref = parallel_conflict_graph(
            ps, masks, n_workers=1, want_anticommute=True
        )
        got, m_got = parallel_conflict_graph(
            ps, masks, n_workers=2, want_anticommute=True
        )
        assert m_got == m_ref
        _assert_bit_identical(got, ref)

    def test_empty_conflicts(self):
        """Disjoint singleton lists across a huge palette -> few conflicts."""
        ps = random_pauli_set(30, 5, seed=2)
        lists = np.arange(30, dtype=np.int64).reshape(-1, 1)
        from repro.util.bits import bitset_from_lists

        masks = bitset_from_lists(lists, 30)
        _, m = parallel_conflict_graph(ps, masks, n_workers=2)
        assert m == 0


class TestBackendEquivalence:
    """ISSUE 2 acceptance: tiled-parallel builds are bit-identical to
    tiled-serial and to the pairs engine, and colorings match per seed."""

    def _build(self, ps, masks, **kw):
        src = PauliComplementSource(ps)
        return build_conflict_graph(
            ps.n, src.edge_mask, masks, edge_block_fn=src.edge_block, **kw
        )

    @pytest.mark.parametrize("kernel_backend", available_backends())
    @pytest.mark.parametrize("n_workers", _WORKER_COUNTS)
    def test_tiled_parallel_bit_identical(self, n_workers, kernel_backend):
        ps = random_pauli_set(120, 7, seed=5)
        _, masks = assign_color_lists(120, 18, 5, rng=3)
        ref, m_ref = self._build(ps, masks)
        pairs, m_pairs = self._build(ps, masks, engine="pairs")
        got, m_got = self._build(
            ps, masks, n_workers=n_workers, kernel_backend=kernel_backend
        )
        serial, m_serial = self._build(
            ps, masks, kernel_backend=kernel_backend
        )
        assert m_got == m_ref == m_pairs == m_serial
        _assert_bit_identical(got, ref)
        _assert_bit_identical(got, pairs)
        _assert_bit_identical(serial, ref)

    @pytest.mark.parametrize("n_workers", _WORKER_COUNTS)
    def test_shm_gather_bit_identical(self, n_workers):
        """ISSUE 3 acceptance: the shared-memory gather reproduces the
        pickled gather bit for bit at every pool size."""
        ps = random_pauli_set(120, 7, seed=5)
        _, masks = assign_color_lists(120, 18, 5, rng=3)
        ref, m_ref = self._build(ps, masks)
        got, m_got = self._build(ps, masks, n_workers=n_workers, shm=True)
        assert m_got == m_ref
        _assert_bit_identical(got, ref)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_property_backends_agree_per_seed(self, seed):
        """For random seeds: serial tiled, parallel tiled (2 workers)
        and the pairs engine all build the same CSR bit for bit."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 90))
        ps = random_pauli_set(n, int(rng.integers(4, 9)), seed=seed)
        palette = int(rng.integers(2, max(3, n // 3)))
        lsize = int(rng.integers(1, palette + 1))
        _, masks = assign_color_lists(n, palette, lsize, rng=seed)
        ref, m_ref = self._build(ps, masks)
        par, m_par = self._build(ps, masks, n_workers=2)
        pairs, m_pairs = self._build(ps, masks, engine="pairs")
        assert m_par == m_ref == m_pairs
        _assert_bit_identical(par, ref)
        _assert_bit_identical(pairs, ref)

    @pytest.mark.parametrize("kernel_backend", available_backends())
    @pytest.mark.parametrize("n_workers", _WORKER_COUNTS)
    def test_picasso_colorings_identical(self, n_workers, kernel_backend):
        """End-to-end Algorithm 1: the parallel backend draws the same
        conflict graphs, so the coloring is identical per seed — on
        every available kernel backend."""
        ps = random_pauli_set(150, 8, seed=9)
        serial = Picasso(params=PicassoParams(), seed=11).color(ps)
        par = Picasso(
            params=PicassoParams(
                n_workers=n_workers, kernel_backend=kernel_backend
            ),
            seed=11,
        ).color(ps)
        np.testing.assert_array_equal(serial.colors, par.colors)
        assert serial.n_colors == par.n_colors
        pairs_par = Picasso(
            params=PicassoParams(engine="pairs", n_workers=n_workers), seed=11
        ).color(ps)
        np.testing.assert_array_equal(serial.colors, pairs_par.colors)

    def test_forced_pool_single_worker(self):
        """executor="pool" with one worker still routes through the
        process pool and stays bit-identical."""
        ps = random_pauli_set(60, 6, seed=6)
        _, masks = assign_color_lists(60, 10, 3, rng=4)
        ref, m_ref = self._build(ps, masks)
        got, m_got = self._build(ps, masks, n_workers=1, executor="pool")
        assert m_got == m_ref
        _assert_bit_identical(got, ref)

    def test_count_conflict_edges_parallel(self):
        ps = random_pauli_set(80, 6, seed=7)
        src = PauliComplementSource(ps)
        _, masks = assign_color_lists(80, 12, 4, rng=5)
        assert count_conflict_edges(
            80, src.edge_mask, masks, n_workers=2
        ) == count_conflict_edges(80, src.edge_mask, masks)

    def test_explicit_pool_executor_instance(self):
        ps = random_pauli_set(100, 7, seed=8)
        _, masks = assign_color_lists(100, 15, 4, rng=6)
        ref, m_ref = self._build(ps, masks)
        got, m_got = self._build(
            ps, masks, executor=PoolExecutor(_CI_WORKERS)
        )
        assert m_got == m_ref
        _assert_bit_identical(got, ref)
