"""Tests for pair-space partitioning and the process-pool conflict build."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import build_conflict_graph
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.parallel import parallel_conflict_graph, partition_pairs
from repro.pauli import random_pauli_set
from repro.util.chunking import num_pairs


class TestPartition:
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_covers_exactly(self, n, parts):
        ranges = partition_pairs(n, parts)
        total = 0
        prev_stop = 0
        for r in ranges:
            assert r.start == prev_stop
            prev_stop = r.stop
            total += len(r)
        assert total == num_pairs(n)

    def test_balanced(self):
        ranges = partition_pairs(100, 7)
        sizes = [len(r) for r in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_pairs(10, 0)

    def test_degenerate(self):
        ranges = partition_pairs(1, 4)
        assert sum(len(r) for r in ranges) == 0


class TestParallelConflictGraph:
    def _expected(self, ps, masks):
        src = PauliComplementSource(ps)
        return build_conflict_graph(ps.n, src.edge_mask, masks)

    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_matches_sequential(self, n_workers):
        ps = random_pauli_set(70, 6, seed=0)
        _, masks = assign_color_lists(70, 12, 4, rng=0)
        expect_g, expect_m = self._expected(ps, masks)
        got_g, got_m = parallel_conflict_graph(
            ps, masks, n_workers=n_workers, chunk_size=101
        )
        assert got_m == expect_m
        np.testing.assert_array_equal(got_g.offsets, expect_g.offsets)
        for v in range(70):
            np.testing.assert_array_equal(
                np.sort(got_g.neighbors(v)), np.sort(expect_g.neighbors(v))
            )

    def test_anticommute_orientation(self):
        """want_anticommute flips which pairs count as edges."""
        ps = random_pauli_set(40, 5, seed=1)
        # Full palette overlap: every pair shares a color, so the
        # conflict graph equals the underlying edge set.
        _, masks = assign_color_lists(40, 2, 2, rng=0)
        g_comm, m_comm = parallel_conflict_graph(ps, masks, n_workers=1)
        g_anti, m_anti = parallel_conflict_graph(
            ps, masks, n_workers=1, want_anticommute=True
        )
        assert m_comm + m_anti == num_pairs(40)

    def test_empty_conflicts(self):
        """Disjoint singleton lists across a huge palette -> few conflicts."""
        ps = random_pauli_set(30, 5, seed=2)
        lists = np.arange(30, dtype=np.int64).reshape(-1, 1)
        from repro.util.bits import bitset_from_lists

        masks = bitset_from_lists(lists, 30)
        _, m = parallel_conflict_graph(ps, masks, n_workers=2)
        assert m == 0
