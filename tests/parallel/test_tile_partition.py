"""Unit tests for the TileBlock tile-grid partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.tiles import iter_tiles, upper_triangle_mask
from repro.parallel.partition import (
    TileBlock,
    block_pair_count,
    partition_tiles,
    tile_grid,
)
from repro.util.chunking import num_pairs


class TestTileGrid:
    def test_matches_iter_tiles_order(self):
        assert tile_grid(300, 64) == list(iter_tiles(300, 64))

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=50, deadline=None)
    def test_block_pair_count_exact(self, n, tile):
        """Per-tile weights sum to the whole pair space, and each equals
        the tile's actual strict-upper-triangle census."""
        total = 0
        for r0, r1, c0, c1 in tile_grid(n, tile):
            w = block_pair_count(r0, r1, c0, c1)
            assert w == int(upper_triangle_mask(r0, r1, c0, c1).sum())
            total += w
        assert total == num_pairs(n)


class TestPartitionTiles:
    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=97),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_full_coverage_no_overlap(self, n, tile, parts):
        """Strips tile [0, n_tiles) contiguously, weights add up."""
        grid = tile_grid(n, tile)
        blocks = partition_tiles(n, tile, parts)
        prev_stop = 0
        for b in blocks:
            assert b.start == prev_stop
            prev_stop = b.stop
        assert prev_stop == len(grid) or (
            num_pairs(n) == 0 and blocks == [TileBlock(0, 0, 0)]
        )
        assert sum(b.n_pairs for b in blocks) == num_pairs(n)

    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=1, max_value=97),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_balance_within_one_tile(self, n, tile, parts):
        """Every strip's weight is within one tile's weight of the
        ideal share — tiles are atomic, so that is the best possible
        contiguous balance."""
        grid = tile_grid(n, tile)
        weights = [block_pair_count(*b) for b in grid]
        w_max = max(weights)
        ideal = num_pairs(n) / parts
        for b in partition_tiles(n, tile, parts):
            assert abs(b.n_pairs - ideal) < w_max + 1

    def test_covers_every_pair_exactly_once(self):
        """Expanding the strips' tiles marks each i < j pair once."""
        n, tile = 37, 8
        grid = tile_grid(n, tile)
        seen = np.zeros((n, n), dtype=np.int64)
        for b in partition_tiles(n, tile, 5):
            for r0, r1, c0, c1 in grid[b.start : b.stop]:
                seen[r0:r1, c0:c1] += upper_triangle_mask(r0, r1, c0, c1)
        ii, jj = np.triu_indices(n, k=1)
        assert (seen[ii, jj] == 1).all()
        assert seen.sum() == num_pairs(n)

    def test_more_parts_than_tiles(self):
        blocks = partition_tiles(10, 64, 8)
        assert len(blocks) == 1
        assert blocks[0].n_pairs == num_pairs(10)

    def test_degenerate(self):
        assert partition_tiles(1, 64, 4) == [TileBlock(0, 0, 0)]
        assert partition_tiles(0, 64, 4) == [TileBlock(0, 0, 0)]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_tiles(10, 64, 0)
