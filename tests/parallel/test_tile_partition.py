"""Unit tests for the TileBlock tile-grid partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.tiles import iter_tiles, upper_triangle_mask
from repro.parallel.partition import (
    TileBlock,
    block_pair_count,
    partition_pairs,
    partition_tiles,
    tile_grid,
)
from repro.util.chunking import num_pairs


class TestTileGrid:
    def test_matches_iter_tiles_order(self):
        assert tile_grid(300, 64) == list(iter_tiles(300, 64))

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=50, deadline=None)
    def test_block_pair_count_exact(self, n, tile):
        """Per-tile weights sum to the whole pair space, and each equals
        the tile's actual strict-upper-triangle census."""
        total = 0
        for r0, r1, c0, c1 in tile_grid(n, tile):
            w = block_pair_count(r0, r1, c0, c1)
            assert w == int(upper_triangle_mask(r0, r1, c0, c1).sum())
            total += w
        assert total == num_pairs(n)


class TestPartitionTiles:
    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=97),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_full_coverage_no_overlap(self, n, tile, parts):
        """Strips tile [0, n_tiles) contiguously, weights add up."""
        grid = tile_grid(n, tile)
        blocks = partition_tiles(n, tile, parts)
        prev_stop = 0
        for b in blocks:
            assert b.start == prev_stop
            prev_stop = b.stop
        assert prev_stop == len(grid) or (
            num_pairs(n) == 0 and blocks == [TileBlock(0, 0, 0)]
        )
        assert sum(b.n_pairs for b in blocks) == num_pairs(n)

    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=1, max_value=97),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_balance_within_one_tile(self, n, tile, parts):
        """Every strip's weight is within one tile's weight of the
        ideal share — tiles are atomic, so that is the best possible
        contiguous balance."""
        grid = tile_grid(n, tile)
        weights = [block_pair_count(*b) for b in grid]
        w_max = max(weights)
        ideal = num_pairs(n) / parts
        for b in partition_tiles(n, tile, parts):
            assert abs(b.n_pairs - ideal) < w_max + 1

    def test_covers_every_pair_exactly_once(self):
        """Expanding the strips' tiles marks each i < j pair once."""
        n, tile = 37, 8
        grid = tile_grid(n, tile)
        seen = np.zeros((n, n), dtype=np.int64)
        for b in partition_tiles(n, tile, 5):
            for r0, r1, c0, c1 in grid[b.start : b.stop]:
                seen[r0:r1, c0:c1] += upper_triangle_mask(r0, r1, c0, c1)
        ii, jj = np.triu_indices(n, k=1)
        assert (seen[ii, jj] == 1).all()
        assert seen.sum() == num_pairs(n)

    def test_more_parts_than_tiles(self):
        blocks = partition_tiles(10, 64, 8)
        assert len(blocks) == 1
        assert blocks[0].n_pairs == num_pairs(10)

    def test_degenerate(self):
        assert partition_tiles(1, 64, 4) == [TileBlock(0, 0, 0)]
        assert partition_tiles(0, 64, 4) == [TileBlock(0, 0, 0)]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_tiles(10, 64, 0)


_shares = st.lists(
    st.integers(min_value=1, max_value=9), min_size=1, max_size=12
)


class TestWeightedPartition:
    """Property tests for the capacity-weighted partitioners (PR 7)."""

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=97),
        _shares,
    )
    @settings(max_examples=60, deadline=None)
    def test_tiles_weighted_balance_within_one_tile(self, n, tile, shares):
        """Strip k's pair weight is within one tile's weight of its
        proportional quota total * shares[k] / sum(shares)."""
        grid = tile_grid(n, tile)
        weights = [block_pair_count(*b) for b in grid]
        w_max = max(weights, default=0)
        total = num_pairs(n)
        blocks = partition_tiles(
            n, tile, len(shares), shares=shares, keep_empty=True
        )
        assert len(blocks) == len(shares)
        assert sum(b.n_pairs for b in blocks) == total
        prev_stop = 0
        for b, share in zip(blocks, shares):
            assert b.start == prev_stop or total == 0
            prev_stop = b.stop
            quota = total * share / sum(shares)
            assert abs(b.n_pairs - quota) < w_max + 1

    @given(
        st.integers(min_value=0, max_value=300),
        _shares,
    )
    @settings(max_examples=60, deadline=None)
    def test_pairs_weighted_balance_within_one_pair(self, n, shares):
        total = num_pairs(n)
        ranges = partition_pairs(
            n, len(shares), shares=shares, keep_empty=True
        )
        assert len(ranges) == len(shares)
        assert sum(len(r) for r in ranges) == total
        prev_stop = 0
        for r, share in zip(ranges, shares):
            assert r.start == prev_stop
            prev_stop = r.stop
            quota = total * share / sum(shares)
            assert abs(len(r) - quota) <= 1
        assert prev_stop == total

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=97),
        _shares,
    )
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, n, tile, shares):
        """Same inputs -> same partition, across call sites and list vs
        array share types (the bit-identity contract rests on this)."""
        a = partition_tiles(n, tile, len(shares), shares=shares, keep_empty=True)
        b = partition_tiles(
            n, tile, len(shares),
            shares=np.asarray(shares, dtype=np.int64), keep_empty=True,
        )
        assert a == b
        pa = partition_pairs(n, len(shares), shares=shares, keep_empty=True)
        pb = partition_pairs(n, len(shares), shares=list(shares), keep_empty=True)
        assert pa == pb

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=97),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_shares_reproduce_unweighted(self, n, tile, parts):
        """Equal tile shares are a strict generalization: byte-exact
        match with the classic partition (with empties dropped).  The
        pairs partitioner's classic path front-loads remainders
        (divmod) while quotas spread them, so for pairs only the cover
        and the one-pair balance are shared — exactness there is not
        load-bearing (uniform capacities take the classic path)."""
        classic = partition_tiles(n, tile, parts)
        weighted = partition_tiles(
            n, tile, parts, shares=[3] * parts, keep_empty=True
        )
        kept = [b for b in weighted if len(b)] or [TileBlock(0, 0, 0)]
        assert kept == classic
        pw = partition_pairs(n, parts, shares=[5] * parts, keep_empty=True)
        assert sum(len(r) for r in pw) == num_pairs(n)
        assert all(
            abs(len(r) - num_pairs(n) / parts) <= 1 for r in pw
        )

    def test_one_strip(self):
        assert partition_tiles(37, 8, 1, shares=[4], keep_empty=True) == (
            partition_tiles(37, 8, 1)
        )
        assert partition_pairs(37, 1, shares=[4], keep_empty=True) == (
            partition_pairs(37, 1)
        )

    def test_zero_pair_grid_keeps_all_strips(self):
        blocks = partition_tiles(1, 64, 4, shares=[1, 2, 3, 4], keep_empty=True)
        assert blocks == [TileBlock(0, 0, 0)] * 4

    def test_more_strips_than_tiles_keeps_empties_in_place(self):
        """With more strips than tiles the surplus strips are empty but
        stay at their positional index (the deal alignment)."""
        shares = [1] * 8
        blocks = partition_tiles(10, 64, 8, shares=shares, keep_empty=True)
        assert len(blocks) == 8
        assert sum(b.n_pairs for b in blocks) == num_pairs(10)
        assert sum(1 for b in blocks if len(b)) == 1

    def test_extreme_skew_starves_light_strips(self):
        """A dominant share takes (nearly) everything; tiny shares can
        legitimately come out empty but positions are kept."""
        n, tile = 120, 16
        shares = [1, 1000, 1]
        blocks = partition_tiles(n, tile, 3, shares=shares, keep_empty=True)
        assert len(blocks) == 3
        assert blocks[1].n_pairs >= 0.9 * num_pairs(n)

    def test_invalid_shares(self):
        for bad in ([0, 1], [-1, 2], [1, 2, 3]):
            with pytest.raises(ValueError):
                partition_tiles(10, 8, 2, shares=bad)
            with pytest.raises(ValueError):
                partition_pairs(10, 2, shares=bad)
