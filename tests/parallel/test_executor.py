"""Tests for the execution backend layer (serial / pool, fork / spawn)."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.conflict import build_conflict_graph
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.parallel.executor import (
    PoolExecutor,
    SerialExecutor,
    default_start_method,
    make_executor,
)
from repro.pauli import random_pauli_set

# Module-level so they pickle into spawn-context pool workers.
_STATE: dict = {}


def _install(bias):
    _STATE["bias"] = bias


def _square_plus_bias(x):
    return x * x + _STATE["bias"]


def _raise_install():
    raise ValueError("install failed")


class TestSerialExecutor:
    def test_map_order_and_initializer(self):
        ex = SerialExecutor()
        out = ex.map(_square_plus_bias, [3, 1, 2], initializer=_install, payload=(10,))
        assert out == [19, 11, 14]

    def test_empty_tasks(self):
        assert SerialExecutor().map(_square_plus_bias, []) == []

    def test_empty_tasks_never_run_initializer(self):
        """The unified imap contract: no work, no payload install."""
        _STATE.clear()
        out = list(
            SerialExecutor().imap(
                _square_plus_bias, [], initializer=_install, payload=(7,)
            )
        )
        assert out == []
        assert "bias" not in _STATE

    def test_initializer_is_eager(self):
        """The initializer runs when imap *returns*, not when the first
        result is consumed — consumers may rely on installed state."""
        _STATE.clear()
        it = SerialExecutor().imap(
            _square_plus_bias, [2], initializer=_install, payload=(5,)
        )
        assert _STATE.get("bias") == 5  # before any next()
        assert list(it) == [9]


class TestPoolExecutor:
    def test_map_preserves_task_order(self):
        ex = PoolExecutor(2)
        out = ex.map(_square_plus_bias, list(range(10)), initializer=_install, payload=(1,))
        assert out == [k * k + 1 for k in range(10)]

    def test_spawn_forced(self):
        """The documented fallback path: payload pickled per worker."""
        ex = PoolExecutor(2, start_method="spawn")
        assert ex.resolved_start_method() == "spawn"
        out = ex.map(_square_plus_bias, [4, 5], initializer=_install, payload=(-16,))
        assert out == [0, 9]

    def test_empty_tasks_skip_pool(self):
        ex = PoolExecutor(2)
        assert ex.map(_square_plus_bias, []) == []
        # Contract: no tasks -> no pool, no initializer anywhere.
        assert not ex.pool_alive

    def test_pool_persists_across_maps(self):
        with PoolExecutor(2) as ex:
            ex.map(_square_plus_bias, [1, 2], initializer=_install, payload=(0,))
            pids = ex.worker_pids()
            assert len(pids) == 2
            ex.map(_square_plus_bias, [3], initializer=_install, payload=(1,))
            assert ex.worker_pids() == pids
        assert not ex.pool_alive

    def test_payload_token_tracking(self):
        with PoolExecutor(2) as ex:
            assert not ex.holds_token("t")
            ex.map(
                _square_plus_bias, [1, 2], initializer=_install,
                payload=(0,), payload_token="t",
            )
            assert ex.holds_token("t")
            assert not ex.holds_token("other")
            # A tokenless install clears the record.
            ex.map(_square_plus_bias, [1], initializer=_install, payload=(0,))
            assert not ex.holds_token("t")
        assert not ex.holds_token("t")

    def test_holds_token_never_true_for_none(self):
        ex = SerialExecutor()
        ex.map(_square_plus_bias, [1], initializer=_install, payload=(0,))
        assert not ex.holds_token(None)

    def test_close_idempotent(self):
        ex = PoolExecutor(2)
        ex.map(_square_plus_bias, [1], initializer=_install, payload=(0,))
        ex.close()
        ex.close()
        assert not ex.pool_alive

    def test_pin_flag_accepted(self):
        with PoolExecutor(2, pin=True) as ex:
            assert ex.map(_square_plus_bias, [2, 3], initializer=_install,
                          payload=(0,)) == [4, 9]

    def test_failed_install_surfaces_fast_and_recycles(self):
        """A failing initializer must abort the install barrier (peers
        release immediately, not after the 120 s timeout), recycle the
        pool, and leave the executor usable."""
        import time

        ex = PoolExecutor(2)
        t0 = time.perf_counter()
        with pytest.raises(Exception):
            ex.map(_square_plus_bias, [1, 2], initializer=_raise_install)
        assert time.perf_counter() - t0 < 30
        assert not ex.pool_alive  # broken barrier -> recycled
        assert ex.map(_square_plus_bias, [2], initializer=_install,
                      payload=(0,)) == [4]
        ex.close()

    def test_env_forced_start_method(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert default_start_method() == "spawn"
        assert PoolExecutor(2).resolved_start_method() == "spawn"
        monkeypatch.setenv("REPRO_START_METHOD", "teleport")
        with pytest.raises(ValueError, match="not available"):
            default_start_method()

    def test_imap_streams_in_task_order(self):
        """The streaming form the device COO path consumes: results
        arrive incrementally but strictly in task order."""
        ex = PoolExecutor(2)
        it = ex.imap(_square_plus_bias, [3, 1, 2], initializer=_install, payload=(0,))
        assert next(it) == 9
        assert list(it) == [1, 4]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            PoolExecutor(0)

    def test_invalid_start_method(self):
        with pytest.raises(ValueError, match="not available"):
            PoolExecutor(2, start_method="teleport")

    def test_default_start_method_prefers_fork(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        if "fork" in mp.get_all_start_methods():
            assert default_start_method() == "fork"
        monkeypatch.setattr(
            mp, "get_all_start_methods", lambda: ["spawn", "forkserver"]
        )
        assert default_start_method() == "spawn"
        assert PoolExecutor(2).resolved_start_method() == "spawn"


class TestMakeExecutor:
    def test_auto(self):
        assert isinstance(make_executor("auto", 1), SerialExecutor)
        ex = make_executor("auto", 3)
        assert isinstance(ex, PoolExecutor)
        assert ex.n_workers == 3

    def test_forced_backends(self):
        assert isinstance(make_executor("serial", 8), SerialExecutor)
        ex = make_executor("pool", 1)
        assert isinstance(ex, PoolExecutor)
        assert ex.n_workers == 1

    def test_instance_passthrough(self):
        ex = PoolExecutor(2)
        assert make_executor(ex) is ex

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("threads")


class TestSpawnConflictBuild:
    def test_spawn_build_bit_identical(self):
        """Forcing spawn must reproduce the serial CSR bit for bit —
        the backend the fork-less platforms fall back to."""
        ps = random_pauli_set(90, 6, seed=3)
        _, masks = assign_color_lists(90, 14, 4, rng=1)
        src = PauliComplementSource(ps)
        ref, m_ref = build_conflict_graph(
            90, src.edge_mask, masks, edge_block_fn=src.edge_block
        )
        got, m_got = build_conflict_graph(
            90,
            src.edge_mask,
            masks,
            edge_block_fn=src.edge_block,
            executor=PoolExecutor(2, start_method="spawn"),
        )
        assert m_got == m_ref
        np.testing.assert_array_equal(got.offsets, ref.offsets)
        np.testing.assert_array_equal(got.targets, ref.targets)
