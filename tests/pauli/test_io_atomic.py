"""Atomicity of :func:`repro.pauli.io.save_pauli_set`: a writer killed
mid-write must never leave a truncated file where a good one stood."""

import os

import pytest

from repro.pauli import load_pauli_set, random_pauli_set, save_pauli_set
from repro.pauli import io as pauli_io


class _DieMidWrite(BaseException):
    """Stand-in for SIGKILL: unwinds without running the write to
    completion (BaseException so even broad handlers cannot eat it)."""


def _assert_same(a, b):
    assert a.to_strings() == b.to_strings()


class TestAtomicSave:
    def test_kill_mid_write_preserves_previous_file(
        self, tmp_path, monkeypatch
    ):
        """The regression: old code opened the target directly, so a
        crash mid-write truncated it.  Now the previous version must
        survive byte-for-byte."""
        path = tmp_path / "terms.txt"
        first = random_pauli_set(50, 6, seed=0)
        save_pauli_set(first, path)
        before = path.read_bytes()

        real = pauli_io._write_pauli_text

        def dies(ps, fh):
            fh.write("# name: half-written garbage\nXXYZ")
            raise _DieMidWrite

        monkeypatch.setattr(pauli_io, "_write_pauli_text", dies)
        with pytest.raises(_DieMidWrite):
            save_pauli_set(random_pauli_set(50, 6, seed=1), path)

        assert path.read_bytes() == before  # untouched
        _assert_same(load_pauli_set(path), first)
        monkeypatch.setattr(pauli_io, "_write_pauli_text", real)

    def test_no_temp_litter_after_crash(self, tmp_path, monkeypatch):
        path = tmp_path / "terms.txt"

        def dies(ps, fh):
            raise _DieMidWrite

        monkeypatch.setattr(pauli_io, "_write_pauli_text", dies)
        with pytest.raises(_DieMidWrite):
            save_pauli_set(random_pauli_set(10, 4, seed=0), path)
        assert os.listdir(tmp_path) == []

    def test_fresh_write_roundtrips(self, tmp_path):
        path = tmp_path / "terms.txt"
        ps = random_pauli_set(40, 5, seed=2)
        save_pauli_set(ps, path)
        _assert_same(load_pauli_set(path), ps)
        assert [n for n in os.listdir(tmp_path)] == ["terms.txt"]

    def test_relative_path_in_cwd(self, tmp_path, monkeypatch):
        """dirname('terms.txt') is '' — the temp file must land in the
        cwd, not at filesystem root."""
        monkeypatch.chdir(tmp_path)
        ps = random_pauli_set(10, 4, seed=3)
        save_pauli_set(ps, "terms.txt")
        _assert_same(load_pauli_set("terms.txt"), ps)
