"""Tests for the PauliSet container and text IO."""

import numpy as np
import pytest

from repro.pauli import PauliSet, load_pauli_set, random_pauli_set, save_pauli_set
from repro.pauli.random import random_pauli_set_density


class TestPauliSet:
    def test_from_strings_basic(self):
        ps = PauliSet.from_strings(["XY", "ZI"], name="toy")
        assert ps.n == 2
        assert ps.n_qubits == 2
        assert len(ps) == 2
        assert ps.to_strings() == ["XY", "ZI"]

    def test_coefficients_shape_check(self):
        with pytest.raises(ValueError):
            PauliSet.from_strings(["XY", "ZI"], coefficients=np.ones(3))

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            PauliSet(np.zeros(4, dtype=np.uint8))

    def test_subset(self):
        ps = PauliSet.from_strings(["XX", "YY", "ZZ"], coefficients=np.arange(3.0))
        sub = ps.subset(np.array([2, 0]))
        assert sub.to_strings() == ["ZZ", "XX"]
        np.testing.assert_array_equal(sub.coefficients, [2.0, 0.0])

    def test_dedupe_sums_coefficients(self):
        ps = PauliSet.from_strings(
            ["XX", "YY", "XX"], coefficients=np.array([1.0, 2.0, 3.0])
        )
        dd = ps.dedupe()
        assert dd.n == 2
        strings = dd.to_strings()
        assert strings == ["XX", "YY"]
        np.testing.assert_allclose(dd.coefficients, [4.0, 2.0])

    def test_drop_identity(self):
        ps = PauliSet.from_strings(["II", "XY", "II"])
        assert ps.drop_identity().to_strings() == ["XY"]

    def test_weights(self):
        ps = PauliSet.from_strings(["II", "XI", "XY"])
        np.testing.assert_array_equal(ps.weights(), [0, 1, 2])

    def test_oracle_cached(self):
        ps = random_pauli_set(10, 4, seed=1)
        assert ps.oracle() is ps.oracle()

    def test_nbytes(self):
        ps = random_pauli_set(10, 4, seed=1)
        assert ps.nbytes == 40


class TestRandomGenerators:
    def test_unique(self):
        ps = random_pauli_set(50, 4, seed=7)
        assert ps.n == 50
        assert len(set(ps.to_strings())) == 50

    def test_too_many_unique_raises(self):
        with pytest.raises(ValueError):
            random_pauli_set(17, 2, seed=0)  # 4^2 = 16 possible

    def test_reproducible(self):
        a = random_pauli_set(20, 5, seed=42)
        b = random_pauli_set(20, 5, seed=42)
        np.testing.assert_array_equal(a.chars, b.chars)

    def test_density_extremes(self):
        dense_i = random_pauli_set_density(200, 10, identity_fraction=0.8, seed=0)
        sparse_i = random_pauli_set_density(200, 10, identity_fraction=0.05, seed=0)
        assert dense_i.weights().mean() < sparse_i.weights().mean()

    def test_density_validates(self):
        with pytest.raises(ValueError):
            random_pauli_set_density(10, 4, identity_fraction=1.0)


class TestIO:
    def test_roundtrip_with_coeffs(self, tmp_path):
        ps = PauliSet.from_strings(
            ["XYZI", "IIXX"], coefficients=np.array([0.5 + 0.25j, -1.0]), name="demo"
        )
        path = tmp_path / "ps.txt"
        save_pauli_set(ps, path)
        back = load_pauli_set(path)
        assert back.name == "demo"
        assert back.to_strings() == ps.to_strings()
        np.testing.assert_allclose(back.coefficients, ps.coefficients)

    def test_roundtrip_without_coeffs(self, tmp_path):
        ps = PauliSet.from_strings(["XY", "ZI"])
        path = tmp_path / "ps.txt"
        save_pauli_set(ps, path)
        back = load_pauli_set(path)
        assert back.coefficients is None
        assert back.to_strings() == ["XY", "ZI"]

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "ps.txt"
        path.write_text("# comment\n\nXY 1.0\nZI 2.0\n")
        back = load_pauli_set(path)
        assert back.n == 2
