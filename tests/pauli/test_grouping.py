"""Tests for the three Pauli-grouping relations (§III)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chemistry import hn_pauli_set
from repro.pauli import (
    PauliSet,
    group_pauli_set,
    qubitwise_commute_pairs,
    random_pauli_set,
    validate_grouping,
)
from repro.pauli.grouping import PauliRelationSource
from repro.pauli.encoding import strings_to_chars


class TestQubitwiseKernel:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("XX", "XX", 1),  # identical
            ("XI", "IX", 1),  # identity-disjoint supports
            ("XZ", "XZ", 1),
            ("XI", "YI", 0),  # X vs Y at position 0
            ("XX", "XY", 0),
            ("II", "ZZ", 1),  # identity matches anything
        ],
    )
    def test_cases(self, a, b, expected):
        chars = strings_to_chars([a, b])
        got = qubitwise_commute_pairs(chars, np.array([0]), np.array([1]))[0]
        assert got == expected

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_qwc_implies_commute(self, seed):
        """QWC-compatible pairs must also generally commute."""
        ps = random_pauli_set(30, 5, seed=seed)
        src_q = PauliRelationSource(ps, "qubitwise")
        src_c = PauliRelationSource(ps, "commute")
        ii, jj = np.triu_indices(30, k=1)
        qwc = src_q.compatible(ii, jj).astype(bool)
        gc = src_c.compatible(ii, jj).astype(bool)
        assert (gc | ~qwc).all()  # qwc -> gc


class TestRelationSource:
    def test_unknown_relation(self):
        with pytest.raises(ValueError):
            PauliRelationSource(random_pauli_set(5, 3, seed=0), "friendly")

    def test_edge_mask_complements_compatible(self):
        ps = random_pauli_set(20, 4, seed=1)
        for rel in ("anticommute", "commute", "qubitwise"):
            src = PauliRelationSource(ps, rel)
            ii, jj = np.triu_indices(20, k=1)
            total = src.edge_mask(ii, jj) + src.compatible(ii, jj)
            np.testing.assert_array_equal(total, 1)

    def test_subset_preserves_relation(self):
        ps = random_pauli_set(15, 4, seed=2)
        src = PauliRelationSource(ps, "qubitwise")
        sub = src.subset(np.array([1, 4, 9]))
        assert sub.relation == "qubitwise"
        assert sub.n == 3


class TestGroupPauliSet:
    @pytest.mark.parametrize("relation", ["anticommute", "commute", "qubitwise"])
    def test_groups_valid(self, relation):
        ps = random_pauli_set(60, 5, seed=3)
        grouping = group_pauli_set(ps, relation, seed=0)
        assert validate_grouping(ps, grouping)
        assert grouping.n_colors == len(
            [g for g in grouping.groups if len(g)]
        )

    def test_reduction_ordering_on_molecule(self):
        """QWC is the most restrictive relation, GC the loosest: the
        group counts must order QWC >= anticommute, and GC typically
        gives the fewest groups (all-commuting Hamiltonian families)."""
        ps = hn_pauli_set(3, 1, "sto3g")
        counts = {
            rel: group_pauli_set(ps, rel, seed=0).n_colors
            for rel in ("anticommute", "commute", "qubitwise")
        }
        assert counts["qubitwise"] >= counts["commute"]
        assert counts["commute"] <= counts["anticommute"]
        # Every scheme must actually compress.
        for rel, c in counts.items():
            assert c < ps.n, rel

    def test_reduction_metric(self):
        ps = random_pauli_set(40, 5, seed=4)
        g = group_pauli_set(ps, "commute", seed=0)
        assert g.reduction == pytest.approx(40 / g.n_colors)

    def test_validate_catches_bad_group(self):
        ps = PauliSet.from_strings(["XX", "YY", "XY"])
        from repro.pauli.grouping import GroupingResult

        # XX and XY anticommute, so they cannot share a QWC group.
        bad = GroupingResult(
            relation="qubitwise",
            groups=[np.array([0, 2]), np.array([1])],
            n_colors=2,
        )
        assert not validate_grouping(ps, bad)

    def test_validate_catches_missing_vertices(self):
        ps = random_pauli_set(10, 4, seed=5)
        from repro.pauli.grouping import GroupingResult

        partial = GroupingResult(
            relation="commute", groups=[np.arange(5)], n_colors=1
        )
        assert not validate_grouping(ps, partial)
