"""Tests for Pauli encodings (char codes, inverse one-hot, symplectic)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import encoding as enc


class TestStringsToChars:
    def test_basic(self):
        chars = enc.strings_to_chars(["IXYZ", "ZZII"])
        np.testing.assert_array_equal(
            chars, [[0, 1, 2, 3], [3, 3, 0, 0]]
        )

    def test_roundtrip(self):
        strs = ["IXYZ", "XXXX", "IIII", "ZYXI"]
        assert enc.chars_to_strings(enc.strings_to_chars(strs)) == strs

    def test_empty(self):
        assert enc.strings_to_chars([]).shape == (0, 0)

    def test_invalid_char(self):
        with pytest.raises(ValueError, match="invalid Pauli character"):
            enc.strings_to_chars(["IXQZ"])

    def test_ragged(self):
        with pytest.raises(ValueError, match="ragged"):
            enc.strings_to_chars(["IX", "IXY"])


class TestIoohEncoding:
    def test_single_char_codes(self):
        # I=000, X=110(msb) -> bits LSB-first (0,1,1)=6, Y=101->5, Z=011->3
        packed = enc.encode_iooh(np.array([[0], [1], [2], [3]], dtype=np.uint8))
        np.testing.assert_array_equal(packed.ravel(), [0b000, 0b110, 0b101, 0b011])

    def test_pairwise_and_parity_is_anticommute(self):
        # For single Paulis: distinct non-identity anticommute.
        packed = enc.encode_iooh(np.array([[0], [1], [2], [3]], dtype=np.uint8))
        for a in range(4):
            for b in range(4):
                par = int(int(packed[a, 0] & packed[b, 0]).bit_count()) & 1
                expect = 1 if (a != b and a != 0 and b != 0) else 0
                assert par == expect, (a, b)

    def test_word_boundary(self):
        # 22 qubits -> 66 bits -> 2 words; last qubit's field straddles words.
        chars = np.zeros((1, 22), dtype=np.uint8)
        chars[0, 21] = 2  # Y -> (1,0,1) at bits 63,64,65
        packed = enc.encode_iooh(chars)
        assert packed.shape == (1, 2)
        assert (packed[0, 0] >> np.uint64(63)) & np.uint64(1) == 1
        assert packed[0, 1] == 0b10  # bit64=0, bit65=1

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_decode_roundtrip(self, n, nq, seed):
        rng = np.random.default_rng(seed)
        chars = rng.integers(0, 4, size=(n, nq), dtype=np.uint8)
        packed = enc.encode_iooh(chars)
        np.testing.assert_array_equal(enc.decode_iooh(packed, nq), chars)


class TestSymplectic:
    def test_codes(self):
        x, z = enc.encode_symplectic(np.array([[0, 1, 2, 3]], dtype=np.uint8))
        # x bits: I=0 X=1 Y=1 Z=0 -> 0b0110; z bits: I=0 X=0 Y=1 Z=1 -> 0b1100
        assert x[0, 0] == 0b0110
        assert z[0, 0] == 0b1100


class TestWeight:
    def test_weight(self):
        chars = enc.strings_to_chars(["IIII", "XIXI", "XYZX"])
        np.testing.assert_array_equal(enc.weight(chars), [0, 2, 4])
