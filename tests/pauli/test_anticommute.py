"""Tests for the anticommutation kernels (all three must agree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import (
    AnticommuteOracle,
    PauliSet,
    anticommute_matrix,
    random_pauli_set,
)
from repro.pauli.anticommute import (
    anticommute_pairs_chars,
    anticommute_pairs_iooh,
    anticommute_pairs_symplectic,
)
from repro.pauli.encoding import encode_iooh, encode_symplectic, strings_to_chars


def brute_force_anticommute(a: str, b: str) -> bool:
    """Matrix-level ground truth: build the full 2^N operators and test
    PA @ PB + PB @ PA == 0."""
    mats = {
        "I": np.eye(2, dtype=complex),
        "X": np.array([[0, 1], [1, 0]], dtype=complex),
        "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
        "Z": np.array([[1, 0], [0, -1]], dtype=complex),
    }

    def kron_all(s):
        out = np.array([[1.0 + 0j]])
        for ch in s:
            out = np.kron(out, mats[ch])
        return out

    A, B = kron_all(a), kron_all(b)
    return np.allclose(A @ B + B @ A, 0)


class TestAgainstMatrixGroundTruth:
    @pytest.mark.parametrize(
        "a,b",
        [
            ("X", "Y"),
            ("X", "X"),
            ("X", "I"),
            ("XY", "YX"),
            ("XX", "YY"),
            ("XI", "IX"),
            ("XYZ", "ZZZ"),
            ("XYZI", "IZYX"),
        ],
    )
    def test_pairs(self, a, b):
        chars = strings_to_chars([a, b])
        got = anticommute_pairs_chars(chars, np.array([0]), np.array([1]))[0]
        assert bool(got) == brute_force_anticommute(a, b)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_random_small_strings(self, seed):
        rng = np.random.default_rng(seed)
        nq = int(rng.integers(1, 5))
        chars = rng.integers(0, 4, size=(2, nq), dtype=np.uint8)
        from repro.pauli.encoding import chars_to_strings

        a, b = chars_to_strings(chars)
        got = anticommute_pairs_chars(chars, np.array([0]), np.array([1]))[0]
        assert bool(got) == brute_force_anticommute(a, b)


class TestKernelAgreement:
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=70),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_three_kernels_agree(self, n, nq, seed):
        rng = np.random.default_rng(seed)
        chars = rng.integers(0, 4, size=(n, nq), dtype=np.uint8)
        ii, jj = np.triu_indices(n, k=1)
        ref = anticommute_pairs_chars(chars, ii, jj)
        packed = encode_iooh(chars)
        np.testing.assert_array_equal(anticommute_pairs_iooh(packed, ii, jj), ref)
        x, z = encode_symplectic(chars)
        np.testing.assert_array_equal(
            anticommute_pairs_symplectic(x, z, ii, jj), ref
        )


class TestOracle:
    def test_kernels_give_same_answers(self):
        ps = random_pauli_set(30, 8, seed=3)
        ii, jj = np.triu_indices(30, k=1)
        ref = AnticommuteOracle(ps.chars, "chars").anticommute(ii, jj)
        for kernel in ("iooh", "symplectic"):
            got = AnticommuteOracle(ps.chars, kernel).anticommute(ii, jj)
            np.testing.assert_array_equal(got, ref)

    def test_commute_edges_is_complement(self):
        ps = random_pauli_set(20, 6, seed=4)
        orc = ps.oracle()
        ii, jj = np.triu_indices(20, k=1)
        anti = orc.anticommute(ii, jj)
        comm = orc.commute_edges(ii, jj)
        np.testing.assert_array_equal(anti + comm, np.ones_like(anti))

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError):
            AnticommuteOracle(np.zeros((2, 2), dtype=np.uint8), "bogus")

    def test_nbytes_positive(self):
        ps = random_pauli_set(10, 4, seed=0)
        assert ps.oracle().nbytes > 0
        assert AnticommuteOracle(ps.chars, "symplectic").nbytes > ps.chars.nbytes


class TestAnticommuteMatrix:
    def test_symmetric_zero_diagonal(self):
        ps = random_pauli_set(15, 5, seed=9)
        m = anticommute_matrix(ps.chars)
        assert (m == m.T).all()
        assert not m.diagonal().any()

    def test_identity_string_isolated(self):
        ps = PauliSet.from_strings(["IIII", "XXXX", "YZYZ"])
        m = anticommute_matrix(ps.chars)
        assert not m[0].any()  # identity commutes with everything

    def test_too_large_raises(self):
        with pytest.raises(MemoryError):
            anticommute_matrix(np.zeros((20_001, 2), dtype=np.uint8))
