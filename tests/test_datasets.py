"""Tests for the molecule-suite registry."""

import pytest

from repro.datasets import (
    MOLECULE_SUITE,
    load_molecule,
    molecule_suite,
    suite_specs,
)


class TestRegistry:
    def test_tiers_partition_suite(self):
        total = sum(len(suite_specs(t)) for t in ("small", "medium", "large"))
        assert total == len(MOLECULE_SUITE)
        assert len(suite_specs()) == len(MOLECULE_SUITE)

    def test_unknown_tier(self):
        with pytest.raises(ValueError):
            suite_specs("huge")

    def test_names_unique(self):
        names = [s.name for s in MOLECULE_SUITE]
        assert len(set(names)) == len(names)

    def test_load_by_name(self):
        ps = load_molecule("H2_1D_sto3g")
        assert ps.n_qubits == 4
        assert ps.n > 0

    def test_load_cached(self):
        assert load_molecule("H2_1D_sto3g") is load_molecule("H2_1D_sto3g")

    def test_unknown_molecule(self):
        with pytest.raises(KeyError):
            load_molecule("He3_9D_sto3g")

    def test_small_tier_loads(self):
        suite = molecule_suite("small")
        assert len(suite) == len(suite_specs("small"))
        sizes = [ps.n for ps in suite.values()]
        assert min(sizes) > 10
        # Paper's qubit counts must hold for the analog suite.
        assert suite["H6_1D_sto3g"].n_qubits == 12
        assert suite["H4_1D_sto3g"].n_qubits == 8
