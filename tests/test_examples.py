"""Smoke tests for the runnable examples (the fast ones).

The heavier examples (molecule_partitioning, parameter_prediction,
streaming_large_graph) are exercised implicitly by the benchmark
harness; here we pin the quick ones end to end so a refactor cannot
silently break the documented entry points.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    sys.argv = [str(path)]
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Picasso partitioned" in out
        assert "unitaries" in out

    def test_qubit_tapering(self, capsys):
        out = run_example("qubit_tapering.py", capsys)
        assert "Z2 symmetries found: 2" in out
        assert "compound reduction" in out

    def test_all_examples_importable(self):
        """Every example must at least parse (no syntax rot)."""
        import ast

        for path in EXAMPLES.glob("*.py"):
            ast.parse(path.read_text(), filename=str(path))

    def test_examples_documented_in_readme(self):
        readme = (EXAMPLES.parent / "README.md").read_text()
        for path in EXAMPLES.glob("*.py"):
            assert path.name in readme, f"{path.name} missing from README"
