"""Telemetry exporters: JSON-lines trace and Prometheus text format.

Both exporters consume the same snapshot dict; the trace preserves
individual span events (with proc/parent for cross-process traces)
while the Prometheus view aggregates spans into per-name summaries.
"""

import json

import pytest

from repro import telemetry
from repro.telemetry.export import prometheus_lines, trace_lines


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.enable(False)
    yield
    telemetry.reset()
    telemetry.enable(False)


def _sample_snapshot() -> dict:
    telemetry.enable(True)
    telemetry.count("transport.bytes_sent", 128.0)
    telemetry.count("device.dispatch", 2.0, backend="numpy")
    telemetry.gauge_max("pool.peak_workers", 3.0)
    telemetry.observe("shm.region_bytes", 64.0)
    telemetry.observe("shm.region_bytes", 192.0)
    with telemetry.span("picasso.iteration", iteration=1):
        with telemetry.span("picasso.assign"):
            pass
    return telemetry.snapshot()


class TestTraceLines:
    def test_every_line_is_json(self):
        for line in trace_lines(_sample_snapshot()):
            json.loads(line)

    def test_spans_lead_with_parentage(self):
        records = [json.loads(x) for x in trace_lines(_sample_snapshot())]
        spans = [r for r in records if r["type"] == "span"]
        assert records[: len(spans)] == spans  # spans come first
        by_name = {s["name"]: s for s in spans}
        outer = by_name["picasso.iteration"]
        inner = by_name["picasso.assign"]
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert outer["attrs"] == {"iteration": 1}

    def test_dispatcher_proc_label(self):
        records = [json.loads(x) for x in trace_lines(_sample_snapshot())]
        spans = [r for r in records if r["type"] == "span"]
        assert {s["proc"] for s in spans} == {"dispatcher"}

    def test_counter_labels_split(self):
        records = [json.loads(x) for x in trace_lines(_sample_snapshot())]
        counters = {
            r["name"]: r for r in records if r["type"] == "counter"
        }
        assert counters["transport.bytes_sent"]["value"] == 128.0
        assert counters["transport.bytes_sent"]["labels"] == {}
        assert counters["device.dispatch"]["labels"] == {"backend": "numpy"}

    def test_histogram_aggregate(self):
        records = [json.loads(x) for x in trace_lines(_sample_snapshot())]
        (hist,) = [r for r in records if r["type"] == "histogram"]
        assert hist["name"] == "shm.region_bytes"
        assert hist["count"] == 2
        assert hist["sum"] == 256.0
        assert hist["min"] == 64.0
        assert hist["max"] == 192.0

    def test_write_round_trip(self, tmp_path):
        snap = _sample_snapshot()
        out = tmp_path / "nested" / "trace.jsonl"
        telemetry.write_trace_jsonl(out, snap)
        text = out.read_text()
        assert text.endswith("\n")
        assert [json.loads(x) for x in text.splitlines()] == [
            json.loads(x) for x in trace_lines(snap)
        ]


class TestPrometheusLines:
    def test_series_naming_and_types(self):
        lines = prometheus_lines(_sample_snapshot())
        assert "# TYPE repro_transport_bytes_sent counter" in lines
        assert "repro_transport_bytes_sent 128" in lines
        assert "# TYPE repro_pool_peak_workers gauge" in lines
        assert "repro_pool_peak_workers 3" in lines
        assert 'repro_device_dispatch{backend="numpy"} 2' in lines

    def test_histogram_summary(self):
        lines = prometheus_lines(_sample_snapshot())
        assert "# TYPE repro_shm_region_bytes summary" in lines
        assert "repro_shm_region_bytes_count 2" in lines
        assert "repro_shm_region_bytes_sum 256" in lines

    def test_spans_become_summaries(self):
        lines = prometheus_lines(_sample_snapshot())
        assert "# TYPE repro_span_picasso_iteration summary" in lines
        assert "repro_span_picasso_iteration_count 1" in lines
        assert any(
            x.startswith("repro_span_picasso_assign_sum ") for x in lines
        )

    def test_type_header_emitted_once_per_series(self):
        telemetry.enable(True)
        telemetry.count("d", backend="numpy")
        telemetry.count("d", backend="numba")
        lines = prometheus_lines(telemetry.snapshot())
        assert lines.count("# TYPE repro_d counter") == 1

    def test_write_round_trip(self, tmp_path):
        snap = _sample_snapshot()
        out = tmp_path / "metrics.prom"
        telemetry.write_prometheus(out, snap)
        assert out.read_text() == "\n".join(prometheus_lines(snap)) + "\n"

    def test_empty_snapshot_is_valid(self):
        assert prometheus_lines(telemetry.snapshot()) == []
        assert trace_lines(telemetry.snapshot()) == []
