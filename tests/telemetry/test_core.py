"""Telemetry core: registry semantics, spans, cross-process merge.

The registry is write-only from the algorithm's point of view; these
tests pin the semantics the instrumentation sites rely on — disabled
hooks record nothing and allocate no spans, counters add, gauges
max-merge, histograms fold, span parent stacks nest per thread, and
worker snapshots remap deterministically under slot prefixes.
"""

import threading

import pytest

from repro import telemetry
from repro.telemetry.core import _MARKER, Registry, _Span, merge_snapshot


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts and ends disabled with an empty registry."""
    telemetry.reset()
    telemetry.enable(False)
    yield
    telemetry.reset()
    telemetry.enable(False)


class TestDisabledPath:
    def test_disabled_records_nothing(self):
        telemetry.count("x")
        telemetry.gauge_max("g", 5.0)
        telemetry.observe("h", 1.0)
        with telemetry.span("s"):
            pass
        snap = telemetry.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["hists"] == {}
        assert snap["events"] == []

    def test_disabled_span_is_shared_noop(self):
        # Zero-cost contract: no allocation per disabled span call.
        assert telemetry.span("a") is telemetry.span("b")

    def test_clock_is_monotonic(self):
        t0 = telemetry.clock()
        t1 = telemetry.clock()
        assert t1 >= t0


class TestRegistry:
    def test_counters_add(self):
        telemetry.enable(True)
        telemetry.count("c")
        telemetry.count("c", 2.5)
        assert telemetry.snapshot()["counters"]["c"] == 3.5

    def test_counter_labels_key(self):
        telemetry.enable(True)
        telemetry.count("d", backend="numpy")
        telemetry.count("d", backend="numba")
        telemetry.count("d", backend="numpy")
        counters = telemetry.snapshot()["counters"]
        assert counters["d{backend=numpy}"] == 2.0
        assert counters["d{backend=numba}"] == 1.0

    def test_gauge_max(self):
        telemetry.enable(True)
        telemetry.gauge_max("g", 2.0)
        telemetry.gauge_max("g", 7.0)
        telemetry.gauge_max("g", 3.0)
        assert telemetry.snapshot()["gauges"]["g"] == 7.0

    def test_hist_folds(self):
        telemetry.enable(True)
        for v in (1.0, 4.0, 2.0):
            telemetry.observe("h", v)
        h = telemetry.snapshot()["hists"]["h"]
        assert h["count"] == 3
        assert h["sum"] == 7.0
        assert h["min"] == 1.0
        assert h["max"] == 4.0

    def test_span_records_duration_and_attrs(self):
        telemetry.enable(True)
        with telemetry.span("phase", iteration=3):
            pass
        (ev,) = telemetry.snapshot()["events"]
        assert ev["name"] == "phase"
        assert ev["attrs"] == {"iteration": 3}
        assert ev["dur_s"] >= 0.0
        assert ev["parent"] is None

    def test_span_nesting_sets_parent(self):
        telemetry.enable(True)
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        events = {e["name"]: e for e in telemetry.snapshot()["events"]}
        assert events["inner"]["parent"] == events["outer"]["id"]
        assert events["outer"]["parent"] is None

    def test_span_parent_stack_is_per_thread(self):
        telemetry.enable(True)
        done = threading.Event()

        def other():
            with telemetry.span("thread-span"):
                pass
            done.set()

        with telemetry.span("main-span"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert done.is_set()
        events = {e["name"]: e for e in telemetry.snapshot()["events"]}
        # The other thread's span must not pick up main's open span.
        assert events["thread-span"]["parent"] is None

    def test_reset_clears(self):
        telemetry.enable(True)
        telemetry.count("c")
        telemetry.reset()
        assert telemetry.snapshot()["counters"] == {}


class TestCrossProcessMerge:
    def _worker_snap(self) -> dict:
        reg = Registry()
        reg.count("pool.strip", 1.0, {})
        reg.count("transport.bytes_sent", 100.0, {})
        with _Span(reg, "w-span", {}):
            pass
        return reg.drain()

    def test_drain_marks_and_resets(self):
        reg = Registry()
        reg.count("c", 1.0, {})
        snap = reg.drain()
        assert snap[_MARKER] is True
        assert snap["counters"]["c"] == 1.0
        assert reg.drain()["counters"] == {}

    def test_is_snapshot(self):
        assert telemetry.is_snapshot(self._worker_snap())
        assert not telemetry.is_snapshot(None)
        assert not telemetry.is_snapshot({"counters": {}})
        assert not telemetry.is_snapshot(42)

    def test_merge_remaps_proc_and_ids(self):
        dst = Registry().drain()
        src = Registry()
        with _Span(src, "outer", {}):
            with _Span(src, "inner", {}):
                pass
        merge_snapshot(dst, src.drain(), "w0")
        events = {e["name"]: e for e in dst["events"]}
        assert events["outer"]["proc"] == "w0"
        assert events["inner"]["proc"] == "w0"
        assert events["inner"]["parent"] == events["outer"]["id"]

    def test_merge_counters_add_across_slots(self):
        dst = Registry().drain()
        merge_snapshot(dst, self._worker_snap(), "w0")
        merge_snapshot(dst, self._worker_snap(), "w1")
        assert dst["counters"]["pool.strip"] == 2.0
        assert dst["counters"]["transport.bytes_sent"] == 200.0
        procs = {e["proc"] for e in dst["events"]}
        assert procs == {"w0", "w1"}

    def test_absorb_snapshots_slot_order(self):
        telemetry.enable(True)
        returns = [self._worker_snap(), None, self._worker_snap()]
        telemetry.absorb_snapshots(returns, prefix="s")
        procs = sorted({e["proc"] for e in telemetry.snapshot()["events"]})
        assert procs == ["s0", "s2"]

    def test_absorb_disabled_is_noop(self):
        telemetry.absorb_snapshots([self._worker_snap()], prefix="w")
        assert telemetry.snapshot()["events"] == []

    def test_combine_agent_snapshot_nests_inner(self):
        telemetry.enable(True)
        telemetry.mark_worker_process()
        try:
            telemetry.count("agent.own")
            combined = telemetry.combine_agent_snapshot(
                [self._worker_snap(), self._worker_snap()]
            )
        finally:
            # Restore dispatcher-process state for other tests.
            telemetry.core._IS_WORKER = False
        assert telemetry.is_snapshot(combined)
        assert combined["counters"]["agent.own"] == 1.0
        assert combined["counters"]["pool.strip"] == 2.0
        procs = sorted({e["proc"] for e in combined["events"]})
        assert procs == ["w0", "w1"]

    def test_drain_worker_snapshot_requires_worker(self):
        telemetry.enable(True)
        # Enabled but not a worker process: nothing to piggyback.
        assert telemetry.drain_worker_snapshot() is None


class TestEnvKnob:
    def test_env_enabled(self, monkeypatch):
        monkeypatch.delenv(telemetry.ENV_VAR, raising=False)
        assert not telemetry.env_enabled()
        monkeypatch.setenv(telemetry.ENV_VAR, "1")
        assert telemetry.env_enabled()
        monkeypatch.setenv(telemetry.ENV_VAR, "0")
        assert not telemetry.env_enabled()

    def test_params_resolution(self, monkeypatch):
        from repro.core import PicassoParams

        monkeypatch.delenv(telemetry.ENV_VAR, raising=False)
        assert not PicassoParams().resolved_telemetry()
        monkeypatch.setenv(telemetry.ENV_VAR, "1")
        assert PicassoParams().resolved_telemetry()
        # An explicit bool always wins over the environment.
        assert not PicassoParams(telemetry=False).resolved_telemetry()
        monkeypatch.delenv(telemetry.ENV_VAR, raising=False)
        assert PicassoParams(telemetry=True).resolved_telemetry()
