"""ISSUE 10 acceptance: the merged cross-process trace of a cluster run.

A telemetry-enabled Picasso run over a 2-shard ``LocalCluster`` must
export one JSON-lines trace that contains the dispatcher's phase spans
AND the per-agent worker spans (piggybacked on the finalize replies and
remapped under ``s<shard>`` proc labels), with parentage intact and
nonzero transport byte counters.  The test drives the run end-to-end
and then parses the written file, not the in-memory registry.
"""

import json

import pytest

from repro import telemetry
from repro.core import Picasso, PicassoParams
from repro.distributed import LocalCluster
from repro.pauli import random_pauli_set


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.enable(False)
    yield
    telemetry.reset()
    telemetry.enable(False)


@pytest.fixture(scope="module")
def trace_records(tmp_path_factory):
    """One 2-shard run, exported and re-parsed from disk."""
    ps = random_pauli_set(300, 6, seed=0)
    with LocalCluster(2) as lc:
        telemetry.reset()
        # A small tile budget splits the problem into enough strips
        # that both shards receive work (one strip would land on s0
        # alone and the trace could not witness the second agent).
        params = PicassoParams(
            hosts=lc.hosts, telemetry=True, tile_budget_bytes=1 << 16
        )
        result = Picasso(params=params, seed=3).color(ps)
    assert result.telemetry is not None
    out = tmp_path_factory.mktemp("trace") / "cluster.jsonl"
    telemetry.write_trace_jsonl(out, result.telemetry)
    telemetry.reset()
    telemetry.enable(False)
    return [json.loads(line) for line in out.read_text().splitlines()]


def _spans(records):
    return [r for r in records if r["type"] == "span"]


class TestClusterTrace:
    def test_dispatcher_phase_spans_present(self, trace_records):
        dispatcher = {
            s["name"] for s in _spans(trace_records)
            if s["proc"] == "dispatcher"
        }
        assert {
            "picasso.assign",
            "picasso.conflict_build",
            "picasso.conflict_color",
        } <= dispatcher

    def test_both_agents_contribute_worker_spans(self, trace_records):
        per_proc: dict[str, set] = {}
        for s in _spans(trace_records):
            per_proc.setdefault(s["proc"], set()).add(s["name"])
        assert "pool.strip" in per_proc.get("s0", set())
        assert "pool.strip" in per_proc.get("s1", set())

    def test_span_parentage_survives_merge(self, trace_records):
        spans = _spans(trace_records)
        by_id = {s["id"]: s for s in spans}
        # Dispatcher side: the fused sweep's gather/assemble stages sit
        # under the conflict_build phase of the same iteration.
        gathers = [s for s in spans if s["name"] == "sweep.gather"]
        assert gathers
        for g in gathers:
            assert g["parent"] is not None
            assert by_id[g["parent"]]["name"] == "picasso.conflict_build"
        # Worker side: remapped ids still resolve within the trace.
        for s in spans:
            if s["proc"].startswith("s") and s["parent"] is not None:
                assert s["parent"] in by_id

    def test_transport_byte_counters_nonzero(self, trace_records):
        counters = {
            r["name"]: r["value"]
            for r in trace_records
            if r["type"] == "counter" and not r["labels"]
        }
        assert counters.get("transport.bytes_sent", 0) > 0
        assert counters.get("transport.bytes_recv", 0) > 0

    def test_every_span_has_duration_and_t0(self, trace_records):
        for s in _spans(trace_records):
            assert s["dur_s"] >= 0.0
            assert isinstance(s["t0"], float)
