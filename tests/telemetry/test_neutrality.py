"""Telemetry neutrality: observability never changes the answer.

The registry is write-only from the algorithm's point of view, so a
run with telemetry enabled must be bit-identical to the same run with
it disabled — same colors, same color count, same per-iteration count
statistics — across every executor backend and both sweep pipelines.
Only timing fields may differ between the paired runs.
"""

import os
from dataclasses import fields

import numpy as np
import pytest

from repro import telemetry
from repro.core import Picasso, PicassoParams
from repro.core.picasso import IterationStats
from repro.distributed import LocalCluster
from repro.pauli import random_pauli_set

_CI_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))

#: IterationStats fields that must match exactly between paired runs.
#: Timing buckets (``*_s``) and peak-memory probes are measurement,
#: not algorithm state, and legitimately vary run to run.
_COUNT_FIELDS = [
    f.name
    for f in fields(IterationStats)
    if not f.name.endswith("_s") and not f.name.endswith("peak_bytes")
]


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.enable(False)
    yield
    telemetry.reset()
    telemetry.enable(False)


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(2) as c:
        yield c


def _run(ps, *, telemetry_on, fused, **kw):
    telemetry.reset()
    params = PicassoParams(telemetry=telemetry_on, fused=fused, **kw)
    result = Picasso(params=params, seed=7).color(ps)
    telemetry.reset()
    telemetry.enable(False)
    return result


def _assert_neutral(on, off):
    np.testing.assert_array_equal(on.colors, off.colors)
    assert on.n_colors == off.n_colors
    assert on.n_iterations == off.n_iterations
    for a, b in zip(on.iterations, off.iterations):
        for name in _COUNT_FIELDS:
            assert getattr(a, name) == getattr(b, name), name
    # The enabled run carries a snapshot; the disabled run carries none.
    assert on.telemetry is not None
    assert off.telemetry is None


@pytest.mark.parametrize("fused", [True, False], ids=["fused", "classic"])
class TestNeutrality:
    def test_serial(self, fused):
        ps = random_pauli_set(150, 6, seed=11)
        on = _run(ps, telemetry_on=True, fused=fused, n_workers=1)
        off = _run(ps, telemetry_on=False, fused=fused, n_workers=1)
        _assert_neutral(on, off)

    def test_pool(self, fused):
        ps = random_pauli_set(150, 6, seed=11)
        on = _run(ps, telemetry_on=True, fused=fused, n_workers=_CI_WORKERS)
        off = _run(ps, telemetry_on=False, fused=fused, n_workers=_CI_WORKERS)
        _assert_neutral(on, off)

    def test_cluster(self, fused, cluster):
        ps = random_pauli_set(150, 6, seed=11)
        on = _run(ps, telemetry_on=True, fused=fused, hosts=cluster.hosts)
        off = _run(ps, telemetry_on=False, fused=fused, hosts=cluster.hosts)
        _assert_neutral(on, off)
