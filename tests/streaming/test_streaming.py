"""Tests for edge streams and the semi-streaming colorer."""

import numpy as np
import pytest

from repro.core.params import PicassoParams
from repro.graphs import complement_graph, erdos_renyi
from repro.pauli import random_pauli_set
from repro.streaming import (
    EdgeListStream,
    FileEdgeStream,
    PauliPairStream,
    save_edge_stream,
    semi_streaming_color,
)


class TestStreams:
    def test_edge_list_stream_batches(self):
        g = erdos_renyi(30, 0.4, seed=0)
        e = g.edges()
        stream = EdgeListStream(e[:, 0], e[:, 1], 30, batch=7)
        seen = 0
        for u, v in stream:
            assert len(u) <= 7
            seen += len(u)
        assert seen == g.n_edges
        # Replayable.
        assert sum(len(u) for u, _ in stream) == g.n_edges

    def test_edge_list_stream_shape_check(self):
        with pytest.raises(ValueError):
            EdgeListStream(np.zeros(2), np.zeros(3), 5)

    def test_file_stream_roundtrip(self, tmp_path):
        g = erdos_renyi(25, 0.3, seed=1)
        path = tmp_path / "edges.txt"
        save_edge_stream(g, path)
        stream = FileEdgeStream(path, 25, batch=11)
        edges = set()
        for u, v in stream:
            edges.update(zip(u.tolist(), v.tolist()))
        expected = set(map(tuple, g.edges().tolist()))
        assert edges == expected

    def test_pauli_pair_stream_matches_graph(self):
        ps = random_pauli_set(40, 5, seed=2)
        g = complement_graph(ps)
        stream = PauliPairStream(ps, batch=101)
        total = sum(len(u) for u, _ in stream)
        assert total == g.n_edges


class TestSemiStreamingColor:
    def test_proper_on_explicit_stream(self):
        g = erdos_renyi(60, 0.4, seed=3)
        e = g.edges()
        stream = EdgeListStream(e[:, 0], e[:, 1], 60, batch=64)
        result = semi_streaming_color(stream, seed=0)
        assert g.validate_coloring(result.colors)
        assert result.stats["passes"] >= 1

    def test_proper_on_pauli_stream(self):
        ps = random_pauli_set(80, 6, seed=4)
        g = complement_graph(ps)
        result = semi_streaming_color(PauliPairStream(ps), seed=0)
        assert g.validate_coloring(result.colors)

    def test_proper_from_file(self, tmp_path):
        g = erdos_renyi(40, 0.5, seed=5)
        path = tmp_path / "edges.txt"
        save_edge_stream(g, path)
        result = semi_streaming_color(FileEdgeStream(path, 40), seed=0)
        assert g.validate_coloring(result.colors)

    def test_memory_certificate(self):
        """Retained edges per pass must undercut the full edge count
        (the semi-streaming point) for a normal palette."""
        ps = random_pauli_set(400, 8, seed=6)
        g = complement_graph(ps)
        result = semi_streaming_color(
            PauliPairStream(ps), params=PicassoParams(), seed=0
        )
        assert result.stats["max_retained_edges"] < g.n_edges

    def test_duplicate_edges_in_file_tolerated(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("0 1\n1 0\n0 1\n1 2\n")
        result = semi_streaming_color(FileEdgeStream(path, 3), seed=0)
        from repro.graphs import from_edge_list

        g = from_edge_list([0, 1], [1, 2], 3)
        assert g.validate_coloring(result.colors)

    def test_empty_stream(self):
        stream = EdgeListStream(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 5
        )
        result = semi_streaming_color(stream, seed=0)
        assert result.n_colors == 1

    def test_quality_comparable_to_oracle_picasso(self):
        """Same algorithm family: color counts within 25%."""
        from repro.core import Picasso

        ps = random_pauli_set(150, 6, seed=7)
        stream_colors = semi_streaming_color(PauliPairStream(ps), seed=0).n_colors
        oracle_colors = Picasso(seed=0).color(ps).n_colors
        assert stream_colors <= 1.25 * oracle_colors
        assert oracle_colors <= 1.25 * stream_colors
