"""Tests for memory accounting (analytic models + measured peaks)."""

import numpy as np
import pytest

from repro.memory import (
    AlgorithmMemoryModel,
    bytes_human,
    peak_rss_bytes,
    traced_allocation,
)


class TestMeasured:
    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 1024 * 1024  # a Python process is >1MB

    def test_traced_allocation_sees_numpy(self):
        with traced_allocation() as t:
            a = np.zeros(1_000_000, dtype=np.float64)
            a += 1
        assert t["peak_bytes"] >= 8_000_000
        del a

    def test_traced_allocation_scoped(self):
        big = np.zeros(4_000_000)  # allocated before tracing
        with traced_allocation() as t:
            small = np.zeros(1000)
        assert t["peak_bytes"] < 1_000_000
        del big, small


class TestBytesHuman:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512 B"),
            (2048, "2.00 KB"),
            (5 * 1024**2, "5.00 MB"),
            (int(1.5 * 1024**3), "1.50 GB"),
        ],
    )
    def test_formats(self, n, expected):
        assert bytes_human(n) == expected


class TestAnalyticModels:
    def setup_method(self):
        # H4 2D 6311g at paper scale: n=154641, m≈5.98e9 complement
        # edges; qubits = 24.
        self.paper = AlgorithmMemoryModel(
            n=154_641, m=5_979_614_600, n_qubits=24, id_bytes=8
        )

    def test_ordering_matches_table4(self):
        """Table IV ordering: Picasso-Normal < ECL-GC < ColPack < Kokkos-EB."""
        # Picasso-normal at paper scale: conflict edges <=5% of |E|
        # (paper §V), palette = 12.5% of n, L = 2 ln n.
        pic = self.paper.picasso_bytes(
            max_conflict_edges=int(0.02 * self.paper.m),
            palette=int(0.125 * self.paper.n),
            list_size=24,
        )
        assert pic < self.paper.ecl_gc_bytes()
        assert self.paper.ecl_gc_bytes() < self.paper.colpack_bytes()
        assert self.paper.colpack_bytes() < self.paper.kokkos_eb_bytes()

    def test_savings_order_of_magnitude(self):
        """The 68x headline is parameter-dependent; our model should put
        ColPack/Picasso-Normal savings in the tens at paper scale."""
        s = self.paper.savings_vs_colpack(
            max_conflict_edges=int(0.005 * self.paper.m),
            palette=int(0.125 * self.paper.n),
            list_size=24,
        )
        assert 10 < s < 500

    def test_kokkos_heavier_than_colpack(self):
        m = AlgorithmMemoryModel(n=10_000, m=25_000_000)
        assert m.kokkos_eb_bytes() > m.colpack_bytes()

    def test_csr_scales_with_edges(self):
        a = AlgorithmMemoryModel(n=100, m=1000)
        b = AlgorithmMemoryModel(n=100, m=2000)
        assert b.csr_bytes() > a.csr_bytes()

    def test_picasso_independent_of_input_edges(self):
        """Key property: Picasso bytes don't contain an m term."""
        a = AlgorithmMemoryModel(n=1000, m=10_000, n_qubits=16)
        b = AlgorithmMemoryModel(n=1000, m=400_000, n_qubits=16)
        assert a.picasso_bytes(500, 125, 10) == b.picasso_bytes(500, 125, 10)
