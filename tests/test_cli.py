"""Tests for the command-line interface (direct main() invocation)."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def pauli_file(tmp_path):
    from repro.pauli import random_pauli_set, save_pauli_set

    path = tmp_path / "input.txt"
    save_pauli_set(random_pauli_set(40, 5, seed=0), path)
    return str(path)


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "h2.txt"
        rc = main(["generate", "--atoms", "2", "--output", str(out)])
        assert rc == 0
        assert out.exists()
        assert "4 qubits" in capsys.readouterr().out

    def test_generate_bk(self, tmp_path):
        out = tmp_path / "h2bk.txt"
        assert main([
            "generate", "--atoms", "2", "--transform", "bravyi_kitaev",
            "--output", str(out),
        ]) == 0


class TestColor:
    def test_picasso_default(self, pauli_file, capsys):
        rc = main(["color", pauli_file, "--validate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "picasso" in out
        assert "validated" in out

    def test_presets_and_overrides(self, pauli_file, capsys):
        rc = main([
            "color", pauli_file, "--preset", "aggressive",
            "--palette-percent", "10", "--alpha", "3", "--validate",
        ])
        assert rc == 0

    @pytest.mark.parametrize(
        "algo", ["greedy-dlf", "greedy-lf", "jp", "speculative"]
    )
    def test_baselines(self, pauli_file, algo, capsys):
        rc = main(["color", pauli_file, "--algorithm", algo, "--validate"])
        assert rc == 0
        assert "colors" in capsys.readouterr().out

    def test_writes_colors(self, pauli_file, tmp_path):
        out = tmp_path / "colors.txt"
        assert main(["color", pauli_file, "--output", str(out)]) == 0
        colors = np.loadtxt(out, dtype=np.int64)
        assert colors.shape == (40,)
        assert (colors >= 0).all()


class TestSweepAndCensusAndTaper:
    def test_sweep(self, pauli_file, capsys):
        rc = main([
            "sweep", pauli_file,
            "--palette-percents", "5", "15", "--alphas", "1", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Eq. 7 optima" in out
        assert "beta=0.5" in out

    def test_census_small(self, capsys):
        assert main(["census", "--tier", "small"]) == 0
        out = capsys.readouterr().out
        assert "H2_1D_sto3g" in out

    def test_taper(self, capsys):
        assert main(["taper", "--atoms", "2"]) == 0
        out = capsys.readouterr().out
        assert "Z2 symmetries" in out
        assert "tapered to" in out

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])
