"""Tests for the command-line interface (direct main() invocation)."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def pauli_file(tmp_path):
    from repro.pauli import random_pauli_set, save_pauli_set

    path = tmp_path / "input.txt"
    save_pauli_set(random_pauli_set(40, 5, seed=0), path)
    return str(path)


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "h2.txt"
        rc = main(["generate", "--atoms", "2", "--output", str(out)])
        assert rc == 0
        assert out.exists()
        assert "4 qubits" in capsys.readouterr().out

    def test_generate_bk(self, tmp_path):
        out = tmp_path / "h2bk.txt"
        assert main([
            "generate", "--atoms", "2", "--transform", "bravyi_kitaev",
            "--output", str(out),
        ]) == 0


class TestColor:
    def test_picasso_default(self, pauli_file, capsys):
        rc = main(["color", pauli_file, "--validate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "picasso" in out
        assert "validated" in out

    def test_presets_and_overrides(self, pauli_file, capsys):
        rc = main([
            "color", pauli_file, "--preset", "aggressive",
            "--palette-percent", "10", "--alpha", "3", "--validate",
        ])
        assert rc == 0

    @pytest.mark.parametrize(
        "algo", ["greedy-dlf", "greedy-lf", "jp", "speculative"]
    )
    def test_baselines(self, pauli_file, algo, capsys):
        rc = main(["color", pauli_file, "--algorithm", algo, "--validate"])
        assert rc == 0
        assert "colors" in capsys.readouterr().out

    def test_writes_colors(self, pauli_file, tmp_path):
        out = tmp_path / "colors.txt"
        assert main(["color", pauli_file, "--output", str(out)]) == 0
        colors = np.loadtxt(out, dtype=np.int64)
        assert colors.shape == (40,)
        assert (colors >= 0).all()


class TestSweepAndCensusAndTaper:
    def test_sweep(self, pauli_file, capsys):
        rc = main([
            "sweep", pauli_file,
            "--palette-percents", "5", "15", "--alphas", "1", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Eq. 7 optima" in out
        assert "beta=0.5" in out

    def test_census_small(self, capsys):
        assert main(["census", "--tier", "small"]) == 0
        out = capsys.readouterr().out
        assert "H2_1D_sto3g" in out

    def test_taper(self, capsys):
        assert main(["taper", "--atoms", "2"]) == 0
        out = capsys.readouterr().out
        assert "Z2 symmetries" in out
        assert "tapered to" in out

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


#: Every subcommand's --metrics-json carries the same top-level schema.
_UNIFORM_KEYS = {
    "command", "algorithm", "elapsed_s", "n_colors", "iterations",
    "phase_times",
}


class TestObservabilityFlags:
    def _metrics(self, tmp_path, argv):
        import json

        out = tmp_path / "metrics.json"
        assert main([*argv, "--metrics-json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert _UNIFORM_KEYS <= set(payload)
        assert payload["elapsed_s"] >= 0.0
        return payload

    def test_color_metrics_schema(self, pauli_file, tmp_path):
        payload = self._metrics(tmp_path, ["color", pauli_file])
        assert payload["command"] == "color"
        assert payload["algorithm"] == "picasso"
        assert payload["n_colors"] > 0
        assert payload["iterations"]
        assert "assignment" in payload["phase_times"]

    def test_generate_metrics_schema(self, tmp_path):
        out = tmp_path / "h2.txt"
        payload = self._metrics(
            tmp_path, ["generate", "--atoms", "2", "--output", str(out)]
        )
        assert payload["command"] == "generate"
        assert payload["algorithm"] is None
        assert payload["n_colors"] is None
        assert payload["n_strings"] > 0

    def test_sweep_metrics_schema(self, pauli_file, tmp_path):
        payload = self._metrics(tmp_path, [
            "sweep", pauli_file,
            "--palette-percents", "5", "--alphas", "1",
        ])
        assert payload["command"] == "sweep"
        assert payload["points"]

    def test_census_metrics_schema(self, tmp_path):
        payload = self._metrics(tmp_path, ["census", "--tier", "small"])
        assert payload["command"] == "census"
        assert payload["molecules"]

    def test_taper_metrics_schema(self, tmp_path):
        payload = self._metrics(tmp_path, ["taper", "--atoms", "2"])
        assert payload["command"] == "taper"
        assert payload["n_qubits_after"] <= payload["n_qubits_before"]

    def test_trace_and_prometheus_export(self, pauli_file, tmp_path):
        import json

        from repro import telemetry

        trace = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        try:
            rc = main([
                "color", pauli_file,
                "--trace-json", str(trace), "--metrics-out", str(prom),
            ])
        finally:
            telemetry.reset()
            telemetry.enable(False)
        assert rc == 0
        records = [json.loads(x) for x in trace.read_text().splitlines()]
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert "picasso.assign" in span_names
        assert any(
            line.startswith("repro_span_picasso_assign_count")
            for line in prom.read_text().splitlines()
        )

    def test_exporters_leave_telemetry_disabled_runs_unchanged(
        self, pauli_file, tmp_path, capsys
    ):
        # Plain runs after an exporting run: no telemetry output files,
        # same coloring as ever (neutrality at the CLI layer).
        out_a = tmp_path / "a.txt"
        out_b = tmp_path / "b.txt"
        from repro import telemetry

        try:
            assert main([
                "color", pauli_file, "--output", str(out_a),
                "--trace-json", str(tmp_path / "t.jsonl"),
            ]) == 0
        finally:
            telemetry.reset()
            telemetry.enable(False)
        assert main(["color", pauli_file, "--output", str(out_b)]) == 0
        np.testing.assert_array_equal(
            np.loadtxt(out_a, dtype=np.int64),
            np.loadtxt(out_b, dtype=np.int64),
        )
