"""Tests for the CSR graph structure and edge-list builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import CSRGraph, from_edge_list, index_dtype


def triangle() -> CSRGraph:
    return from_edge_list([0, 1, 2], [1, 2, 0], 3)


class TestFromEdgeList:
    def test_triangle(self):
        g = triangle()
        assert g.n_vertices == 3
        assert g.n_edges == 3
        for v in range(3):
            assert g.degree(v) == 2
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_isolated_vertices(self):
        g = from_edge_list([0], [1], 5)
        assert g.n_vertices == 5
        assert g.degree(4) == 0
        np.testing.assert_array_equal(g.degree(), [1, 1, 0, 0, 0])

    def test_empty(self):
        g = from_edge_list(np.empty(0, int), np.empty(0, int), 4)
        assert g.n_edges == 0
        assert g.max_degree() == 0
        assert g.average_degree() == 0.0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list([0], [0], 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list([0], [5], 3)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            from_edge_list([0, 1], [1], 3)

    def test_dedupe(self):
        g = from_edge_list([0, 1, 0], [1, 0, 1], 2, dedupe=True)
        assert g.n_edges == 1

    def test_index_dtype_switch(self):
        assert index_dtype(100) == np.int32
        assert index_dtype(2**31) == np.int64
        g = triangle()
        assert g.targets.dtype == np.int32


class TestAccessors:
    def test_edges_unique_ordered(self):
        g = triangle()
        e = g.edges()
        assert e.shape == (3, 2)
        assert (e[:, 0] < e[:, 1]).all()

    def test_has_edge(self):
        g = from_edge_list([0], [1], 3)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_max_and_average_degree(self):
        g = from_edge_list([0, 0, 0], [1, 2, 3], 4)
        assert g.max_degree() == 3
        assert g.average_degree() == pytest.approx(6 / 4)

    def test_nbytes_positive(self):
        assert triangle().nbytes > 0

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([1], dtype=np.int32))
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 1]), np.empty(0, dtype=np.int32))


class TestValidateColoring:
    def test_proper(self):
        g = triangle()
        assert g.validate_coloring(np.array([0, 1, 2]))

    def test_improper(self):
        g = triangle()
        assert not g.validate_coloring(np.array([0, 0, 1]))

    def test_uncolored_fails(self):
        g = triangle()
        assert not g.validate_coloring(np.array([0, 1, -1]))

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            triangle().validate_coloring(np.array([0, 1]))

    def test_empty_graph_any_colors(self):
        g = from_edge_list(np.empty(0, int), np.empty(0, int), 3)
        assert g.validate_coloring(np.zeros(3, dtype=int))


class TestAgainstNetworkx:
    @given(
        st.integers(min_value=2, max_value=40),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_degrees_match_networkx(self, n, p, seed):
        import networkx as nx

        from repro.graphs import erdos_renyi
        from repro.graphs.ops import to_networkx

        g = erdos_renyi(n, p, seed)
        nxg = to_networkx(g)
        assert nxg.number_of_edges() == g.n_edges
        for v in range(n):
            assert nxg.degree[v] == g.degree(v)
