"""Tests for Pauli-set graph builders, generators and graph ops."""

import numpy as np
import pytest

from repro.graphs import (
    anticommute_edge_count,
    anticommute_graph,
    complement,
    complement_edge_count,
    complement_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    from_edge_list,
    induced_subgraph,
    random_bipartite,
    star_graph,
)
from repro.graphs.ops import from_networkx, to_networkx
from repro.pauli import PauliSet, anticommute_matrix, random_pauli_set
from repro.util.chunking import num_pairs


class TestPauliGraphBuilders:
    def test_matches_dense_matrix(self):
        ps = random_pauli_set(40, 6, seed=0)
        g = anticommute_graph(ps, chunk_size=97)  # force multiple chunks
        m = anticommute_matrix(ps.chars)
        assert g.n_edges == m.sum() // 2
        for v in range(ps.n):
            np.testing.assert_array_equal(
                np.sort(g.neighbors(v)), np.nonzero(m[v])[0]
            )

    def test_complement_partition(self):
        """G and G' edges partition all pairs."""
        ps = random_pauli_set(35, 5, seed=1)
        g = anticommute_graph(ps)
        gc = complement_graph(ps)
        assert g.n_edges + gc.n_edges == num_pairs(ps.n)

    def test_edge_counts_match_graphs(self):
        ps = random_pauli_set(30, 5, seed=2)
        assert anticommute_edge_count(ps, chunk_size=11) == anticommute_graph(ps).n_edges
        assert complement_edge_count(ps, chunk_size=13) == complement_graph(ps).n_edges

    def test_identity_vertex_dominates_complement(self):
        ps = PauliSet.from_strings(["IIII", "XYZI", "ZZXX"])
        gc = complement_graph(ps)
        assert gc.degree(0) == 2  # identity commutes with everything

    @pytest.mark.parametrize("builder", [anticommute_graph, complement_graph])
    def test_parallel_builders_bit_identical(self, builder):
        """Explicit builders route through the executor layer: worker
        strips gather in canonical tile order, so the CSR matches the
        serial build bit for bit."""
        ps = random_pauli_set(90, 6, seed=3)
        ref = builder(ps)
        got = builder(ps, n_workers=2)
        np.testing.assert_array_equal(got.offsets, ref.offsets)
        np.testing.assert_array_equal(got.targets, ref.targets)


class TestGenerators:
    def test_complete(self):
        g = complete_graph(6)
        assert g.n_edges == 15
        assert g.max_degree() == 5

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.n_edges == 5
        assert all(g.degree(v) == 2 for v in range(5))
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert g.degree(3) == 1
        with pytest.raises(ValueError):
            star_graph(1)

    def test_empty(self):
        assert empty_graph(5).n_edges == 0

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi(10, 0.0, 0).n_edges == 0
        assert erdos_renyi(10, 1.0, 0).n_edges == 45
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5, 0)

    def test_erdos_renyi_density(self):
        g = erdos_renyi(200, 0.5, 42)
        frac = g.n_edges / num_pairs(200)
        assert 0.45 < frac < 0.55

    def test_bipartite_structure(self):
        g = random_bipartite(10, 12, 0.5, seed=1)
        e = g.edges()
        left = e.min(axis=1)
        right = e.max(axis=1)
        assert (left < 10).all() and (right >= 10).all()


class TestOps:
    def test_induced_subgraph_triangle(self):
        g = complete_graph(5)
        sub, old = induced_subgraph(g, np.array([1, 3, 4]))
        assert sub.n_vertices == 3
        assert sub.n_edges == 3
        np.testing.assert_array_equal(old, [1, 3, 4])

    def test_induced_subgraph_duplicates_rejected(self):
        with pytest.raises(ValueError):
            induced_subgraph(complete_graph(4), np.array([0, 0]))

    def test_induced_subgraph_empty_selection(self):
        sub, _ = induced_subgraph(complete_graph(4), np.array([], dtype=np.int64))
        assert sub.n_vertices == 0

    def test_complement_of_complete_is_empty(self):
        assert complement(complete_graph(8)).n_edges == 0

    def test_complement_involution(self):
        g = erdos_renyi(30, 0.4, 7)
        gg = complement(complement(g))
        np.testing.assert_array_equal(gg.offsets, g.offsets)
        assert sorted(map(tuple, gg.edges().tolist())) == sorted(
            map(tuple, g.edges().tolist())
        )

    def test_networkx_roundtrip(self):
        g = erdos_renyi(25, 0.3, 3)
        back = from_networkx(to_networkx(g))
        assert back.n_edges == g.n_edges
        assert back.n_vertices == g.n_vertices

    def test_from_networkx_rejects_directed(self):
        import networkx as nx

        with pytest.raises(TypeError):
            from_networkx(nx.DiGraph())
