"""Tests for the unitary-partition application layer (Eq. 1–2)."""

import numpy as np
import pytest

from repro.core import (
    Picasso,
    aggressive_params,
    partition_from_coloring,
    verify_unitarity,
)
from repro.chemistry import hydrogen_cluster, molecular_pauli_set
from repro.coloring.base import ColoringResult
from repro.pauli import PauliSet, random_pauli_set


def h2_partition():
    ps = molecular_pauli_set(hydrogen_cluster(2, 1), drop_identity=False)
    # JW of a Hermitian Hamiltonian: real coefficients.
    ps = PauliSet(ps.chars, ps.coefficients.real.astype(np.float64), ps.name)
    result = Picasso(params=aggressive_params(), seed=0).color(ps)
    return ps, partition_from_coloring(ps, result)


class TestPartitionFromColoring:
    def test_h2_valid_partition(self):
        ps, part = h2_partition()
        assert part.validate()
        assert part.n_unitaries < ps.n
        assert part.compression_ratio > 1.0

    def test_groups_are_anticommuting_cliques(self):
        ps, part = h2_partition()
        oracle = ps.oracle()
        for g in part.groups:
            for a in range(g.size):
                for b in range(a + 1, g.size):
                    assert oracle.anticommute(
                        np.array([g.members[a]]), np.array([g.members[b]])
                    )[0]

    def test_every_group_is_unitary(self):
        """Matrix-level Eq. 2 check: each normalized group composes to a
        unitary operator."""
        _, part = h2_partition()
        for k in range(part.n_unitaries):
            assert verify_unitarity(part, k), f"group {k} not unitary"

    def test_coefficient_norms(self):
        ps, part = h2_partition()
        for g in part.groups:
            expect = np.sqrt(np.sum(np.abs(ps.coefficients[g.members]) ** 2))
            assert abs(g.coefficient) == pytest.approx(expect)

    def test_unit_coefficients_default(self):
        ps = random_pauli_set(30, 5, seed=0)
        result = Picasso(seed=0).color(ps)
        part = partition_from_coloring(ps, result)
        assert part.validate()
        for g in part.groups:
            assert abs(g.coefficient) == pytest.approx(np.sqrt(g.size))

    def test_summary_fields(self):
        _, part = h2_partition()
        s = part.summary()
        assert s["n_unitaries"] == part.n_unitaries
        assert s["max_group"] >= s["mean_group"] >= 1 or s["singletons"] >= 0

    def test_rejects_incomplete_coloring(self):
        ps = random_pauli_set(10, 4, seed=1)
        colors = np.full(10, -1, dtype=np.int64)
        with pytest.raises(ValueError, match="incomplete"):
            partition_from_coloring(ps, ColoringResult(colors, "x"))

    def test_rejects_mismatched_sizes(self):
        ps = random_pauli_set(10, 4, seed=1)
        with pytest.raises(ValueError, match="does not match"):
            partition_from_coloring(
                ps, ColoringResult(np.zeros(5, dtype=np.int64), "x")
            )

    def test_validate_catches_non_clique(self):
        """A commuting (non-anticommuting) pair in one group must fail."""
        ps = PauliSet.from_strings(["XX", "YY", "XY"])  # XX,YY commute
        part = partition_from_coloring(
            ps, ColoringResult(np.array([0, 0, 1]), "x")
        )
        assert not part.validate()

    def test_validate_catches_missing_vertex(self):
        ps = random_pauli_set(6, 4, seed=2)
        result = Picasso(seed=0).color(ps)
        part = partition_from_coloring(ps, result)
        part.groups = part.groups[:-1]  # drop a group
        assert not part.validate()

    def test_verify_unitarity_qubit_guard(self):
        ps = random_pauli_set(5, 11, seed=3)
        part = partition_from_coloring(
            ps, ColoringResult(np.arange(5), "x")
        )
        with pytest.raises(MemoryError):
            verify_unitarity(part, 0)
