"""Integration tests for the Picasso driver (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Picasso,
    PicassoParams,
    aggressive_params,
    normal_params,
    picasso_color,
)
from repro.core.sources import PauliComplementSource
from repro.coloring import greedy_coloring
from repro.graphs import complement_graph, complete_graph, erdos_renyi
from repro.pauli import random_pauli_set


class TestPauliWorkload:
    def test_proper_and_complete(self):
        ps = random_pauli_set(120, 6, seed=0)
        r = picasso_color(ps, seed=1)
        assert (r.colors >= 0).all()
        assert PauliComplementSource(ps).validate(r.colors)

    def test_matches_explicit_graph_coloring_validity(self):
        ps = random_pauli_set(80, 5, seed=2)
        r = picasso_color(ps, seed=3)
        g = complement_graph(ps)
        assert g.validate_coloring(r.colors)

    def test_aggressive_fewer_colors_than_normal(self):
        """Paper Table III: aggressive < normal color count (statistically)."""
        wins = 0
        for seed in range(5):
            ps = random_pauli_set(150, 6, seed=seed)
            c_norm = picasso_color(ps, normal_params(), seed=seed).n_colors
            c_aggr = picasso_color(ps, aggressive_params(), seed=seed).n_colors
            wins += c_aggr <= c_norm
        assert wins >= 4

    def test_reproducible(self):
        ps = random_pauli_set(60, 5, seed=4)
        a = picasso_color(ps, seed=9)
        b = picasso_color(ps, seed=9)
        np.testing.assert_array_equal(a.colors, b.colors)

    def test_seeds_differ(self):
        ps = random_pauli_set(60, 5, seed=4)
        a = picasso_color(ps, seed=1)
        b = picasso_color(ps, seed=2)
        assert (a.colors != b.colors).any()


class TestEngines:
    def test_tiled_and_pairs_identical_colorings(self):
        """Both engines build identical conflict graphs and draw the
        same random numbers, so whole runs must match bit for bit."""
        for seed in range(3):
            ps = random_pauli_set(140, 6, seed=seed)
            rt = picasso_color(ps, PicassoParams(engine="tiled"), seed=seed)
            rp = picasso_color(ps, PicassoParams(engine="pairs"), seed=seed)
            np.testing.assert_array_equal(rt.colors, rp.colors)
            assert rt.n_iterations == rp.n_iterations

    def test_tiled_engine_on_explicit_graph(self):
        g = erdos_renyi(90, 0.4, seed=21)
        rt = picasso_color(g, PicassoParams(engine="tiled"), seed=2)
        rp = picasso_color(g, PicassoParams(engine="pairs"), seed=2)
        np.testing.assert_array_equal(rt.colors, rp.colors)
        assert g.validate_coloring(rt.colors)

    def test_tile_budget_knob(self):
        ps = random_pauli_set(80, 5, seed=1)
        r = picasso_color(
            ps,
            PicassoParams(engine="tiled", tile_budget_bytes=1 << 13),
            seed=4,
        )
        assert PauliComplementSource(ps).validate(r.colors)

    def test_engine_validated(self):
        with pytest.raises(ValueError):
            PicassoParams(engine="bogus")
        with pytest.raises(ValueError):
            PicassoParams(tile_budget_bytes=0)


class TestExplicitGraphWorkload:
    def test_random_graph(self):
        g = erdos_renyi(100, 0.5, seed=5)
        r = picasso_color(g, seed=0)
        assert g.validate_coloring(r.colors)

    def test_complete_graph_needs_n_colors(self):
        g = complete_graph(12)
        r = picasso_color(g, seed=0)
        assert r.n_colors == 12

    def test_sparse_graph(self):
        g = erdos_renyi(200, 0.02, seed=6)
        r = picasso_color(g, seed=0)
        assert g.validate_coloring(r.colors)

    def test_type_error(self):
        with pytest.raises(TypeError):
            picasso_color("not a graph")

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=10, deadline=None)
    def test_random_instances_proper(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 80))
        g = erdos_renyi(n, float(rng.random()), seed=seed)
        r = picasso_color(g, seed=seed)
        assert g.validate_coloring(r.colors)


class TestIterationTrace:
    def test_stats_populated(self):
        ps = random_pauli_set(100, 6, seed=7)
        r = picasso_color(ps, seed=0)
        assert r.n_iterations >= 1
        total_colored = sum(s.n_colored for s in r.iterations)
        assert total_colored == 100
        first = r.iterations[0]
        assert first.n_active == 100
        assert first.palette_size == round(0.125 * 100)
        assert first.list_size >= 1
        assert r.max_conflict_edges >= 0
        phases = r.phase_times()
        assert set(phases) == {
            "assignment", "conflict_graph", "conflict_coloring",
            "sweep", "assemble", "edge_sweep",
        }
        # Default run is fused: the dispatcher edge sweep is eliminated
        # and the build splits into its sweep/assemble sub-buckets.
        assert all(s.fused for s in r.iterations)
        assert phases["edge_sweep"] == 0.0
        assert phases["sweep"] > 0.0
        assert phases["assemble"] > 0.0

    def test_unfused_edge_sweep_measured(self):
        ps = random_pauli_set(100, 6, seed=7)
        r = picasso_color(ps, PicassoParams(fused=False), seed=0)
        assert not any(s.fused for s in r.iterations)
        assert r.phase_times()["edge_sweep"] > 0.0

    def test_active_counts_decrease(self):
        ps = random_pauli_set(150, 6, seed=8)
        r = picasso_color(ps, seed=0)
        actives = [s.n_active for s in r.iterations]
        assert all(a > b for a, b in zip(actives, actives[1:]))

    def test_fresh_palette_per_iteration(self):
        """Colors used in iteration l+1 must not collide with iteration l
        (palette offset discipline)."""
        ps = random_pauli_set(150, 6, seed=9)
        params = PicassoParams(palette_fraction=0.05, alpha=1.0)
        r = picasso_color(ps, params, seed=0)
        assert r.n_iterations >= 2  # need multiple iterations to test
        # Track which global colors each iteration could emit.
        base = 0
        for s in r.iterations:
            lo, hi = base, base + s.palette_size
            emitted = r.colors[
                (r.colors >= lo) & (r.colors < hi)
            ]
            base = hi
        assert r.colors.max() < base

    def test_total_palette_recorded(self):
        ps = random_pauli_set(80, 5, seed=10)
        r = picasso_color(ps, seed=0)
        assert r.stats["total_palette_colors"] == sum(
            s.palette_size for s in r.iterations
        )

    def test_peak_bytes_positive(self):
        ps = random_pauli_set(80, 5, seed=11)
        r = picasso_color(ps, seed=0)
        assert r.peak_bytes > 0


class TestParameterTradeoffs:
    def test_smaller_palette_fewer_colors_more_conflicts(self):
        """Fig. 5's central trade-off, statistically."""
        ps = random_pauli_set(200, 6, seed=12)
        small = picasso_color(
            ps, PicassoParams(palette_fraction=0.04, alpha=3.0), seed=0
        )
        large = picasso_color(
            ps, PicassoParams(palette_fraction=0.4, alpha=3.0), seed=0
        )
        assert small.n_colors <= large.n_colors
        assert small.max_conflict_edges >= large.max_conflict_edges

    def test_quality_within_2x_of_greedy_dlf(self):
        ps = random_pauli_set(150, 6, seed=13)
        g = complement_graph(ps)
        ref = greedy_coloring(g, "dlf").n_colors
        r = picasso_color(ps, aggressive_params(), seed=0)
        assert r.n_colors <= 2 * ref

    def test_memory_below_explicit_graph(self):
        """Table IV's headline: streaming beats explicit CSR residency.

        The saving factor is ~n / log^2 n (Lemma 2), so at toy scale it
        is modest but must (a) exceed 1 beyond the crossover and
        (b) grow with n.
        """
        ratios = []
        for n in (800, 1600):
            ps = random_pauli_set(n, 8, seed=14)
            g = complement_graph(ps)
            r = picasso_color(ps, normal_params(), seed=0)
            ratios.append(g.nbytes / r.peak_bytes)
        assert ratios[-1] > 1.1
        assert ratios[1] > ratios[0]

    def test_static_conflict_order_works(self):
        ps = random_pauli_set(80, 5, seed=15)
        for order in ("natural", "random", "lf"):
            r = picasso_color(
                ps, PicassoParams(conflict_order=order), seed=0
            )
            assert PauliComplementSource(ps).validate(r.colors)

    def test_max_iterations_enforced(self):
        ps = random_pauli_set(100, 6, seed=16)
        params = PicassoParams(
            palette_fraction=0.01,
            alpha=30.0,
            max_iterations=1,
            grow_on_stall=1.0,
        )
        with pytest.raises(RuntimeError, match="did not converge"):
            picasso_color(ps, params, seed=0)

    def test_single_vertex(self):
        ps = random_pauli_set(1, 4, seed=0)
        r = picasso_color(ps, seed=0)
        assert r.n_colors == 1
