"""Tests for Algorithm 2 (dynamic bucket list coloring) and the static
list-coloring variants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.coloring.greedy_list import (
    # The implementation home; repro.core.list_coloring is a deprecated
    # shim that warns on import (tested in tests/coloring/test_engines.py).
    greedy_list_color_dynamic,
    greedy_list_color_dynamic_sets,
    greedy_list_color_static,
)
from repro.graphs import complete_graph, cycle_graph, empty_graph, erdos_renyi


def assert_valid_list_coloring(gc, col_lists, colors, uncolored):
    """Invariants shared by all list-coloring schemes."""
    n = gc.n_vertices
    colored = np.nonzero(colors >= 0)[0]
    # Every assigned color comes from the vertex's own list.
    for v in colored:
        assert colors[v] in col_lists[v]
    # No conflict edge is monochrome.
    e = gc.edges()
    if len(e):
        both = (colors[e[:, 0]] >= 0) & (colors[e[:, 1]] >= 0)
        assert not (colors[e[both, 0]] == colors[e[both, 1]]).any()
    # Uncolored = exactly the -1 vertices.
    np.testing.assert_array_equal(np.sort(uncolored), np.nonzero(colors < 0)[0])
    assert len(colored) + len(uncolored) == n


class TestDynamic:
    def test_empty_graph_all_colored(self):
        gc = empty_graph(6)
        lists = np.tile(np.arange(3), (6, 1))
        colors, vu = greedy_list_color_dynamic(gc, lists, rng=0)
        assert len(vu) == 0
        assert (colors >= 0).all()

    def test_zero_vertices(self):
        gc = empty_graph(0)
        colors, vu = greedy_list_color_dynamic(gc, np.empty((0, 2), dtype=np.int64), rng=0)
        assert len(colors) == 0 and len(vu) == 0

    def test_triangle_with_ample_lists(self):
        gc = complete_graph(3)
        lists = np.tile(np.arange(5), (3, 1))
        colors, vu = greedy_list_color_dynamic(gc, lists, rng=0)
        assert len(vu) == 0
        assert_valid_list_coloring(gc, lists, colors, vu)

    def test_forced_failure(self):
        """K3 with identical single-color lists: only one vertex colorable."""
        gc = complete_graph(3)
        lists = np.zeros((3, 1), dtype=np.int64)
        colors, vu = greedy_list_color_dynamic(gc, lists, rng=0)
        assert (colors >= 0).sum() == 1
        assert len(vu) == 2
        assert_valid_list_coloring(gc, lists, colors, vu)

    def test_most_constrained_first(self):
        """A vertex with a singleton list must be processed before its
        neighbors can steal its only color."""
        # Path 0-1: v0 has {5}, v1 has {5, 7}. Dynamic order colors v0
        # first (smaller list), so both get colored.
        gc = cycle_graph(3)  # triangle 0-1-2
        lists = np.array([[5, -1], [5, 7], [5, 7]], dtype=np.int64)
        # Keep rectangular lists: pad with a distinct color for v0.
        lists[0] = [5, 5]  # duplicate harmless: set() dedupes to {5}
        colors, vu = greedy_list_color_dynamic(gc, lists, rng=1)
        assert colors[0] == 5  # the constrained vertex won its color

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            greedy_list_color_dynamic(empty_graph(3), np.zeros((2, 2), dtype=np.int64))

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_valid(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        gc = erdos_renyi(n, float(rng.random()), seed=seed)
        L = int(rng.integers(1, 6))
        P = int(rng.integers(L, L + 10))
        lists = np.stack(
            [rng.choice(P, size=L, replace=False) for _ in range(n)]
        ).astype(np.int64)
        colors, vu = greedy_list_color_dynamic(gc, lists, rng=seed)
        assert_valid_list_coloring(gc, lists, colors, vu)


class TestBitsetMatchesSetsReference:
    """The bitset Algorithm 2 must reproduce the Python-set reference
    exactly (same colors AND same Vu) for any fixed seed — they draw
    the same random numbers and make identical canonical choices."""

    @staticmethod
    def assert_equivalent(gc, lists, seed):
        c_bits, vu_bits = greedy_list_color_dynamic(gc, lists, rng=seed)
        c_sets, vu_sets = greedy_list_color_dynamic_sets(gc, lists, rng=seed)
        np.testing.assert_array_equal(c_bits, c_sets)
        np.testing.assert_array_equal(vu_bits, vu_sets)
        assert_valid_list_coloring(gc, lists, c_bits, vu_bits)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        gc = erdos_renyi(n, float(rng.random()), seed=seed)
        L = int(rng.integers(1, 6))
        P = int(rng.integers(L, L + 10))
        lists = np.stack(
            [rng.choice(P, size=L, replace=False) for _ in range(n)]
        ).astype(np.int64)
        self.assert_equivalent(gc, lists, seed)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_multiword_palette(self, seed):
        """Palettes above 64 colors exercise multi-word bitsets."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 35))
        gc = erdos_renyi(n, 0.5, seed=seed)
        L = int(rng.integers(2, 9))
        P = int(rng.integers(70, 200))
        lists = np.stack(
            [rng.choice(P, size=L, replace=False) for _ in range(n)]
        ).astype(np.int64)
        # Multi-word with high probability; the rare draw where every
        # chosen color lands in word 0 proves nothing about multi-word
        # bitsets, so skip it rather than fail on the test data itself.
        assume(int(lists.max()) >= 64)
        self.assert_equivalent(gc, lists, seed)

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_degenerate_sizes(self, n):
        gc = empty_graph(n)
        lists = np.tile(np.arange(3, dtype=np.int64), (n, 1))
        self.assert_equivalent(gc, lists, seed=0)
        if n == 2:
            gc = complete_graph(2)
            lists = np.zeros((2, 1), dtype=np.int64)  # forced conflict
            self.assert_equivalent(gc, lists, seed=1)

    def test_duplicate_candidates_collapse(self):
        gc = cycle_graph(4)
        lists = np.array([[5, 5], [5, 7], [7, 5], [5, 7]], dtype=np.int64)
        self.assert_equivalent(gc, lists, seed=3)

    def test_padding_rows_join_vu(self):
        """All-padding rows (negative ids) have no candidates: the
        bitset variant sends them straight to Vu."""
        gc = empty_graph(3)
        lists = np.array([[0, 1], [-1, -1], [2, 0]], dtype=np.int64)
        colors, vu = greedy_list_color_dynamic(gc, lists, rng=0)
        assert colors[1] == -1
        np.testing.assert_array_equal(vu, [1])
        assert (colors[[0, 2]] >= 0).all()


class TestStatic:
    @pytest.mark.parametrize("order", ["natural", "random", "lf"])
    def test_valid_on_random(self, order):
        rng = np.random.default_rng(3)
        n = 30
        gc = erdos_renyi(n, 0.3, seed=3)
        lists = np.stack(
            [rng.choice(12, size=4, replace=False) for _ in range(n)]
        ).astype(np.int64)
        colors, vu = greedy_list_color_static(gc, lists, order, rng=0)
        assert_valid_list_coloring(gc, lists, colors, vu)

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            greedy_list_color_static(
                empty_graph(2), np.zeros((2, 1), dtype=np.int64), "sl"
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            greedy_list_color_static(
                empty_graph(3), np.zeros((2, 2), dtype=np.int64)
            )

    def test_dynamic_not_worse_on_average(self):
        """The paper picks Algorithm 2 because it colors more vertices;
        check the tendency statistically on tight lists."""
        wins = ties = losses = 0
        for seed in range(12):
            rng = np.random.default_rng(seed)
            n = 40
            gc = erdos_renyi(n, 0.4, seed=seed)
            lists = np.stack(
                [rng.choice(8, size=3, replace=False) for _ in range(n)]
            ).astype(np.int64)
            _, vu_dyn = greedy_list_color_dynamic(gc, lists, rng=seed)
            _, vu_nat = greedy_list_color_static(gc, lists, "natural", rng=seed)
            if len(vu_dyn) < len(vu_nat):
                wins += 1
            elif len(vu_dyn) == len(vu_nat):
                ties += 1
            else:
                losses += 1
        assert wins + ties >= losses
