"""Tests for palette/list assignment (Algorithm 1, line 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.palette import assign_color_lists, lists_nbytes
from repro.util.bits import popcount_rows


class TestAssignColorLists:
    def test_shapes(self):
        lists, masks = assign_color_lists(10, 20, 5, rng=0)
        assert lists.shape == (10, 5)
        assert masks.shape == (10, 1)

    def test_within_palette(self):
        lists, _ = assign_color_lists(50, 13, 4, rng=1)
        assert lists.min() >= 0
        assert lists.max() < 13

    def test_no_duplicates_per_row(self):
        lists, _ = assign_color_lists(100, 30, 10, rng=2)
        for row in lists:
            assert len(set(row.tolist())) == 10

    def test_masks_match_lists(self):
        lists, masks = assign_color_lists(40, 70, 8, rng=3)
        assert (popcount_rows(masks) == 8).all()
        for v in range(40):
            for c in lists[v]:
                word, bit = divmod(int(c), 64)
                assert (masks[v, word] >> np.uint64(bit)) & np.uint64(1) == 1

    def test_full_palette_case(self):
        lists, masks = assign_color_lists(5, 7, 7, rng=0)
        for row in lists:
            assert sorted(row.tolist()) == list(range(7))
        assert (popcount_rows(masks) == 7).all()

    def test_zero_vertices(self):
        lists, masks = assign_color_lists(0, 5, 2, rng=0)
        assert lists.shape[0] == 0
        assert masks.shape[0] == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            assign_color_lists(5, 0, 1)
        with pytest.raises(ValueError):
            assign_color_lists(5, 4, 5)
        with pytest.raises(ValueError):
            assign_color_lists(5, 4, 0)

    def test_chunking_consistent(self):
        """Tiny row chunks must still produce valid unique lists."""
        lists, _ = assign_color_lists(64, 100, 6, rng=4, row_chunk_bytes=1024)
        assert lists.shape == (64, 6)
        for row in lists:
            assert len(set(row.tolist())) == 6

    def test_reproducible(self):
        a, _ = assign_color_lists(20, 40, 5, rng=7)
        b, _ = assign_color_lists(20, 40, 5, rng=7)
        np.testing.assert_array_equal(a, b)

    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=120),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=30, deadline=None)
    def test_uniform_marginal(self, n, palette, seed):
        """Each color must be sampled without bias: property-check that
        all entries are valid and rows unique; full uniformity is checked
        statistically in the dedicated test below."""
        list_size = max(1, palette // 3)
        lists, _ = assign_color_lists(n, palette, list_size, rng=seed)
        assert ((lists >= 0) & (lists < palette)).all()

    def test_uniformity_statistical(self):
        """Color frequencies should be flat: chi-square sanity bound."""
        n, palette, L = 4000, 16, 4
        lists, _ = assign_color_lists(n, palette, L, rng=11)
        counts = np.bincount(lists.ravel(), minlength=palette)
        expected = n * L / palette
        chi2 = ((counts - expected) ** 2 / expected).sum()
        # dof = 15; P(chi2 > 40) ~ 5e-4 — loose but catches real bias.
        assert chi2 < 40


class TestListsNbytes:
    def test_counts_both(self):
        lists, masks = assign_color_lists(10, 20, 5, rng=0)
        assert lists_nbytes(lists, masks) == lists.nbytes + masks.nbytes
