"""Tests for the Lemma 2 closed-form predictors, including empirical
concentration checks against simulated list assignments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    expected_conflict_edges,
    list_share_probability,
    predict_coo_bytes,
    share_probability_upper_bound,
    sublinear_space_bound,
)
from repro.core.palette import assign_color_lists
from repro.device.kernels import lists_intersect_kernel


class TestShareProbability:
    def test_disjoint_impossible(self):
        # L > P/2 forces overlap.
        assert list_share_probability(10, 6) == 1.0

    def test_singleton_lists(self):
        # Two singletons over P colors share with probability 1/P.
        assert list_share_probability(10, 1) == pytest.approx(0.1)

    def test_full_palette(self):
        assert list_share_probability(4, 4) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            list_share_probability(4, 5)

    def test_monotone_in_list_size(self):
        probs = [list_share_probability(100, L) for L in range(1, 20)]
        assert all(a <= b for a, b in zip(probs, probs[1:]))

    def test_union_bound_dominates(self):
        for P, L in [(50, 3), (100, 7), (1000, 10)]:
            assert list_share_probability(P, L) <= share_probability_upper_bound(
                P, L
            ) + 1e-12

    @given(
        st.integers(min_value=2, max_value=200),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_empirical_frequency(self, palette, seed):
        list_size = max(1, palette // 8)
        n = 600
        _, masks = assign_color_lists(n, palette, list_size, rng=seed)
        ii = np.arange(0, n - 1, 2)
        jj = ii + 1
        emp = lists_intersect_kernel(masks, ii, jj).mean()
        exact = list_share_probability(palette, list_size)
        # 300 Bernoulli samples: allow 5 sigma.
        sigma = np.sqrt(exact * (1 - exact) / len(ii) + 1e-12)
        assert abs(emp - exact) <= max(5 * sigma, 0.05)


class TestConflictEdgePrediction:
    def test_expected_edges_formula(self):
        assert expected_conflict_edges(1000, 50, 1) == pytest.approx(
            1000 * list_share_probability(50, 1)
        )

    def test_empirical_conflict_edges_concentrate(self):
        """Lemma 2.3 in practice: measured |Ec| within 3x of expectation
        over a complete graph (every pair an edge)."""
        n, P, L = 300, 40, 3
        rng = np.random.default_rng(0)
        _, masks = assign_color_lists(n, P, L, rng=rng)
        ii, jj = np.triu_indices(n, k=1)
        measured = int(lists_intersect_kernel(masks, ii, jj).sum())
        expected = expected_conflict_edges(len(ii), P, L)
        assert expected / 3 <= measured <= expected * 3

    def test_sublinear_bound_shape(self):
        assert sublinear_space_bound(1) == 0.0
        # n log^3 n grows superlinearly but far below n^2.
        n = 10_000
        assert n < sublinear_space_bound(n) < n**2

    def test_predict_coo_bytes_positive(self):
        b = predict_coo_bytes(1000, 500_000, 125, 15)
        assert b > 0
        # Safety factor scales linearly.
        assert predict_coo_bytes(
            1000, 500_000, 125, 15, safety=6.0
        ) == pytest.approx(2 * b, rel=0.01)
