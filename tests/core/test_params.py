"""Tests for PicassoParams and presets."""

import pytest

from repro.core import PicassoParams, aggressive_params, normal_params


class TestValidation:
    def test_defaults_valid(self):
        p = PicassoParams()
        assert p.palette_fraction == 0.125
        assert p.alpha == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"palette_fraction": 0.0},
            {"palette_fraction": 1.5},
            {"alpha": 0.0},
            {"alpha": -1.0},
            {"conflict_order": "bogus"},
            {"max_iterations": 0},
            {"grow_on_stall": 0.5},
            {"engine": "warp"},
            {"n_workers": 0},
            {"executor": "threads"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PicassoParams(**kwargs)

    def test_backend_defaults(self):
        p = PicassoParams()
        assert p.n_workers == 1
        assert p.executor == "auto"
        assert p.with_(n_workers=4, executor="pool").n_workers == 4


class TestSizing:
    def test_palette_size_rounds(self):
        p = PicassoParams(palette_fraction=0.125)
        assert p.palette_size(1000) == 125
        assert p.palette_size(2) >= 1  # min_palette floor

    def test_list_size_capped_by_palette(self):
        p = PicassoParams(palette_fraction=0.03, alpha=30.0)
        n = 100
        assert p.list_size(n) <= p.palette_size(n)

    def test_list_size_tiny_n(self):
        p = PicassoParams()
        assert p.list_size(1) == 1
        assert p.list_size(2) >= 1

    def test_list_size_grows_with_alpha(self):
        lo = PicassoParams(alpha=0.5).list_size(10_000)
        hi = PicassoParams(alpha=4.5).list_size(10_000)
        assert hi > lo


class TestPresets:
    def test_normal(self):
        p = normal_params()
        assert p.palette_fraction == pytest.approx(0.125)
        assert p.alpha == 2.0

    def test_aggressive(self):
        p = aggressive_params()
        assert p.palette_fraction == pytest.approx(0.03)
        assert p.alpha == 30.0

    def test_overrides(self):
        p = normal_params(alpha=3.0, chunk_size=128)
        assert p.alpha == 3.0
        assert p.chunk_size == 128
        assert p.palette_fraction == pytest.approx(0.125)

    def test_with_is_functional(self):
        a = PicassoParams()
        b = a.with_(alpha=9.0)
        assert a.alpha == 2.0
        assert b.alpha == 9.0
