"""Tests for edge sources (streaming Pauli complement vs explicit graph)."""

import numpy as np
import pytest

from repro.core.sources import ExplicitGraphSource, PauliComplementSource
from repro.graphs import complement_graph, erdos_renyi
from repro.pauli import random_pauli_set


class TestPauliComplementSource:
    def test_matches_explicit_complement(self):
        ps = random_pauli_set(30, 5, seed=0)
        src = PauliComplementSource(ps)
        g = complement_graph(ps)
        ii, jj = np.triu_indices(30, k=1)
        mask = src.edge_mask(ii, jj).astype(bool)
        expected = np.array([g.has_edge(a, b) for a, b in zip(ii, jj)])
        np.testing.assert_array_equal(mask, expected)

    def test_subset_consistent(self):
        ps = random_pauli_set(25, 5, seed=1)
        src = PauliComplementSource(ps)
        idx = np.array([3, 7, 11, 20])
        sub = src.subset(idx)
        assert sub.n == 4
        ii, jj = np.triu_indices(4, k=1)
        np.testing.assert_array_equal(
            sub.edge_mask(ii, jj), src.edge_mask(idx[ii], idx[jj])
        )

    def test_nbytes_excludes_graph(self):
        """The whole point: resident bytes scale with n, not n^2."""
        small = PauliComplementSource(random_pauli_set(50, 6, seed=2))
        big = PauliComplementSource(random_pauli_set(500, 6, seed=2))
        assert big.nbytes < 50 * small.nbytes  # linear-ish, not 100x

    def test_validate_accepts_proper(self):
        ps = random_pauli_set(20, 4, seed=3)
        src = PauliComplementSource(ps)
        colors = np.arange(20)  # rainbow is always proper
        assert src.validate(colors)

    def test_validate_rejects_monochrome_edge(self):
        ps = random_pauli_set(20, 4, seed=3)
        src = PauliComplementSource(ps)
        g = complement_graph(ps)
        e = g.edges()[0]
        colors = np.arange(20)
        colors[e[1]] = colors[e[0]]
        assert not src.validate(colors)

    def test_validate_rejects_uncolored(self):
        ps = random_pauli_set(10, 4, seed=4)
        src = PauliComplementSource(ps)
        colors = np.arange(10)
        colors[0] = -1
        assert not src.validate(colors)

    def test_validate_sampled(self):
        ps = random_pauli_set(40, 5, seed=5)
        src = PauliComplementSource(ps)
        assert src.validate(np.arange(40), sample_pairs=100)


class TestExplicitGraphSource:
    def test_edge_mask_matches_graph(self):
        g = erdos_renyi(40, 0.3, seed=0)
        src = ExplicitGraphSource(g)
        ii, jj = np.triu_indices(40, k=1)
        mask = src.edge_mask(ii, jj).astype(bool)
        expected = np.array([g.has_edge(a, b) for a, b in zip(ii, jj)])
        np.testing.assert_array_equal(mask, expected)

    def test_isolated_vertices(self):
        g = erdos_renyi(10, 0.0, seed=0)
        src = ExplicitGraphSource(g)
        ii, jj = np.triu_indices(10, k=1)
        assert src.edge_mask(ii, jj).sum() == 0

    def test_subset(self):
        g = erdos_renyi(30, 0.5, seed=1)
        src = ExplicitGraphSource(g)
        idx = np.array([0, 5, 10, 15, 29])
        sub = src.subset(idx)
        ii, jj = np.triu_indices(5, k=1)
        np.testing.assert_array_equal(
            sub.edge_mask(ii, jj), src.edge_mask(idx[ii], idx[jj])
        )

    def test_validate_delegates(self):
        g = erdos_renyi(15, 0.4, seed=2)
        src = ExplicitGraphSource(g)
        assert src.validate(np.arange(15))
        bad = np.zeros(15, dtype=np.int64)
        if g.n_edges:
            assert not src.validate(bad)

    def test_nbytes_includes_graph(self):
        g = erdos_renyi(50, 0.5, seed=3)
        src = ExplicitGraphSource(g)
        assert src.nbytes >= g.nbytes
