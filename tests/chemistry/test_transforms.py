"""Jordan–Wigner and Bravyi–Kitaev transform correctness.

Matrix-level ground truth: JW images must equal FermionOperator.to_matrix
exactly; BK images must satisfy the canonical anticommutation relations
and produce isospectral Hamiltonians.
"""

import numpy as np
import pytest

from repro.chemistry.bravyi_kitaev import (
    bravyi_kitaev,
    bravyi_kitaev_ladder,
    flip_set,
    parity_set,
    update_set,
)
from repro.chemistry.fermion import FermionOperator
from repro.chemistry.jordan_wigner import jordan_wigner, jordan_wigner_ladder


def a(p):
    return FermionOperator(((p, False),))


def adag(p):
    return FermionOperator(((p, True),))


class TestJordanWigner:
    @pytest.mark.parametrize("p", range(4))
    @pytest.mark.parametrize("dagger", [False, True])
    def test_ladder_matrix_exact(self, p, dagger):
        n = 4
        ferm = adag(p) if dagger else a(p)
        np.testing.assert_allclose(
            jordan_wigner_ladder(p, dagger).to_matrix(n),
            ferm.to_matrix(n),
            atol=1e-12,
        )

    def test_general_operator(self):
        op = 0.5 * adag(0) * a(2) + 0.5 * adag(2) * a(0) + 0.25 * adag(1) * a(1)
        np.testing.assert_allclose(
            jordan_wigner(op).to_matrix(3), op.to_matrix(3), atol=1e-12
        )

    def test_number_operator(self):
        # a†_p a_p -> (I - Z_p)/2
        q = jordan_wigner(adag(1) * a(1))
        assert q.terms[()] == pytest.approx(0.5)
        assert q.terms[((1, "Z"),)] == pytest.approx(-0.5)

    def test_hermitian_input_gives_real_coefficients(self):
        op = adag(0) * a(1) + adag(1) * a(0)
        q = jordan_wigner(op)
        assert q.is_hermitian()


class TestFenwickSets:
    def test_even_modes_have_empty_flip(self):
        for n in (4, 7, 8):
            for j in range(0, n, 2):
                assert flip_set(j, n) == frozenset()

    def test_parity_set_mode0_empty(self):
        assert parity_set(0, 8) == frozenset()

    def test_known_n8_values(self):
        # Standard BK examples for n = 8 (Seeley–Richard–Love Table 2).
        assert update_set(0, 8) == frozenset({1, 3, 7})
        assert update_set(2, 8) == frozenset({3, 7})
        assert update_set(7, 8) == frozenset()
        assert parity_set(7, 8) == frozenset({6, 5, 3})
        assert flip_set(7, 8) == frozenset({6, 5, 3})
        assert flip_set(3, 8) == frozenset({2, 1})

    def test_sets_disjoint_update_parity(self):
        for n in (5, 8, 12):
            for j in range(n):
                assert not (update_set(j, n) & parity_set(j, n))


class TestBravyiKitaev:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_car_relations(self, n):
        """BK ladder operators must satisfy the CAR at matrix level."""
        mats_a = [bravyi_kitaev_ladder(j, False, n).to_matrix(n) for j in range(n)]
        mats_ad = [bravyi_kitaev_ladder(j, True, n).to_matrix(n) for j in range(n)]
        eye = np.eye(2**n)
        for p in range(n):
            for q in range(n):
                anti = mats_a[p] @ mats_ad[q] + mats_ad[q] @ mats_a[p]
                np.testing.assert_allclose(
                    anti, eye if p == q else 0, atol=1e-10, err_msg=f"p={p} q={q}"
                )
                anti2 = mats_a[p] @ mats_a[q] + mats_a[q] @ mats_a[p]
                np.testing.assert_allclose(anti2, 0, atol=1e-10)

    def test_dagger_is_adjoint(self):
        n = 4
        for j in range(n):
            np.testing.assert_allclose(
                bravyi_kitaev_ladder(j, True, n).to_matrix(n),
                bravyi_kitaev_ladder(j, False, n).to_matrix(n).conj().T,
                atol=1e-12,
            )

    def test_isospectral_with_jw(self):
        """JW and BK are unitarily equivalent: same Hamiltonian spectrum."""
        rng = np.random.default_rng(1)
        n = 4
        h = rng.normal(size=(n, n))
        h = h + h.T
        ham = FermionOperator.zero()
        for p in range(n):
            for q in range(n):
                ham += h[p, q] * adag(p) * a(q)
        # Add one two-body term for good measure.
        ham += 0.3 * adag(0) * adag(1) * a(1) * a(0)
        jw_eigs = np.linalg.eigvalsh(jordan_wigner(ham).to_matrix(n))
        bk_eigs = np.linalg.eigvalsh(bravyi_kitaev(ham, n).to_matrix(n))
        np.testing.assert_allclose(jw_eigs, bk_eigs, atol=1e-8)

    def test_out_of_range_mode(self):
        with pytest.raises(ValueError):
            bravyi_kitaev_ladder(5, False, 4)
