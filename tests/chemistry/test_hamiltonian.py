"""End-to-end tests of the geometry -> integrals -> PauliSet pipeline."""

import numpy as np
import pytest

from repro.chemistry import (
    check_symmetries,
    hn_pauli_set,
    hydrogen_cluster,
    molecular_pauli_set,
    molecular_qubit_operator,
    spin_orbital_hamiltonian,
    synthetic_integrals,
)
from repro.chemistry.geometry import BASIS_FUNCTIONS_PER_H, _grid_dims


class TestGeometry:
    @pytest.mark.parametrize(
        "n,dim,basis,expected_qubits",
        [
            (2, 1, "sto3g", 4),    # H2 sto-3g: N = 4 (paper Fig. 1)
            (6, 3, "sto3g", 12),   # Table II row 1
            (4, 2, "631g", 16),    # Table II row 4
            (4, 2, "6311g", 24),   # Table II row 7
            (8, 2, "sto3g", 16),
            (10, 3, "sto3g", 20),
        ],
    )
    def test_qubit_counts_match_paper(self, n, dim, basis, expected_qubits):
        geom = hydrogen_cluster(n, dim, basis)
        assert geom.n_spin_orbitals == expected_qubits

    def test_grid_dims(self):
        assert _grid_dims(6, 1) == (6,)
        assert _grid_dims(6, 2) == (2, 3)
        assert _grid_dims(8, 3) == (2, 2, 2)
        assert np.prod(_grid_dims(10, 3)) == 10

    def test_positions_distinct(self):
        geom = hydrogen_cluster(8, 3)
        assert len({tuple(p) for p in geom.positions.tolist()}) == 8

    def test_orbital_metadata_sizes(self):
        geom = hydrogen_cluster(4, 1, "6311g")
        assert geom.orbital_centers().shape == (12, 3)
        assert geom.orbital_scales().shape == (12,)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            hydrogen_cluster(4, 4)
        with pytest.raises(ValueError):
            hydrogen_cluster(4, 1, "ccpvdz")
        with pytest.raises(ValueError):
            hydrogen_cluster(0, 1)


class TestIntegrals:
    def test_symmetries_hold(self):
        for basis in BASIS_FUNCTIONS_PER_H:
            geom = hydrogen_cluster(3, 1, basis)
            ints = synthetic_integrals(geom)
            assert check_symmetries(ints)

    def test_cutoff_monotone(self):
        geom = hydrogen_cluster(4, 2)
        loose = synthetic_integrals(geom, cutoff=1e-8)
        tight = synthetic_integrals(geom, cutoff=1e-2)
        assert tight.n_two_body <= loose.n_two_body

    def test_one_body_shape(self):
        geom = hydrogen_cluster(4, 1, "631g")
        ints = synthetic_integrals(geom)
        assert ints.one_body.shape == (8, 8)


class TestHamiltonian:
    def test_spin_orbital_hamiltonian_hermitian(self):
        geom = hydrogen_cluster(2, 1)
        ints = synthetic_integrals(geom)
        ham = spin_orbital_hamiltonian(ints)
        assert ham.is_hermitian()

    def test_qubit_operator_real_coefficients(self):
        geom = hydrogen_cluster(2, 1)
        qop = molecular_qubit_operator(geom)
        assert qop.is_hermitian()

    def test_jw_bk_isospectral_h2(self):
        geom = hydrogen_cluster(2, 1)
        jw = molecular_qubit_operator(geom, "jordan_wigner")
        bk = molecular_qubit_operator(geom, "bravyi_kitaev")
        np.testing.assert_allclose(
            np.linalg.eigvalsh(jw.to_matrix(4)),
            np.linalg.eigvalsh(bk.to_matrix(4)),
            atol=1e-8,
        )

    def test_unknown_transform(self):
        with pytest.raises(ValueError):
            molecular_qubit_operator(hydrogen_cluster(2, 1), "ternary-tree")


class TestPauliSetExport:
    def test_h2_shape(self):
        """H2/sto-3g: 4 qubits; the paper's Fig. 1 shows 17 strings
        including identity. Our synthetic integrals give the same string
        *support structure* (even-weight XY/Z patterns)."""
        ps = molecular_pauli_set(hydrogen_cluster(2, 1), drop_identity=False)
        assert ps.n_qubits == 4
        assert ps.n > 10  # dense small set
        strings = ps.to_strings()
        assert len(set(strings)) == len(strings)  # deduped

    def test_identity_dropped_by_default(self):
        ps = hn_pauli_set(2, 1)
        assert all(w > 0 for w in ps.weights())

    def test_bigger_basis_more_terms(self):
        small = hn_pauli_set(2, 1, "sto3g")
        big = hn_pauli_set(2, 1, "631g")
        assert big.n > small.n
        assert big.n_qubits == 8

    def test_deterministic(self):
        a = hn_pauli_set(3, 1)
        b = hn_pauli_set(3, 1)
        np.testing.assert_array_equal(a.chars, b.chars)
