"""Tests for Z2 symmetry finding and qubit tapering."""

import numpy as np
import pytest

from repro.chemistry import (
    QubitOperator,
    all_sectors,
    find_z2_symmetries,
    hydrogen_cluster,
    molecular_qubit_operator,
    taper_qubits,
)


def z(q):
    return QubitOperator(((q, "Z"),), 1.0)


def x(q):
    return QubitOperator(((q, "X"),), 1.0)


class TestFindSymmetries:
    def test_h2_finds_spin_parities(self):
        qop = molecular_qubit_operator(hydrogen_cluster(2, 1))
        gens = find_z2_symmetries(qop, 4)
        strings = {tuple(next(iter(g.terms))) for g in gens}
        # Interleaved spin orbitals: up parity Z0 Z2, down parity Z1 Z3.
        assert ((0, "Z"), (2, "Z")) in strings
        assert ((1, "Z"), (3, "Z")) in strings

    def test_generators_commute_with_hamiltonian(self):
        qop = molecular_qubit_operator(hydrogen_cluster(2, 1))
        H = qop.to_matrix(4)
        for g in find_z2_symmetries(qop, 4):
            G = g.to_matrix(4)
            np.testing.assert_allclose(H @ G - G @ H, 0, atol=1e-10)

    def test_no_symmetry_case(self):
        # X0 + Z0 has no nontrivial single-qubit symmetry.
        qop = x(0) + z(0)
        assert find_z2_symmetries(qop, 1) == []

    def test_free_qubit_symmetries(self):
        """A qubit untouched by H contributes X and Z symmetries."""
        qop = z(0)  # qubit 1 untouched
        gens = find_z2_symmetries(qop, 2)
        assert len(gens) == 3  # Z0, X1, Z1 (and products span the rest)


class TestTaperQubits:
    def test_h2_tapers_two_qubits(self):
        qop = molecular_qubit_operator(hydrogen_cluster(2, 1))
        result = taper_qubits(qop, 4)
        assert result.n_qubits_after == 2
        assert len(result.removed_qubits) == 2

    def test_spectrum_union_preserved(self):
        """The defining property: sector spectra tile the full spectrum."""
        qop = molecular_qubit_operator(hydrogen_cluster(2, 1))
        full = np.sort(np.linalg.eigvalsh(qop.to_matrix(4)))
        eigs = []
        for r in all_sectors(qop, 4):
            eigs.extend(
                np.linalg.eigvalsh(r.operator.to_matrix(max(r.n_qubits_after, 1)))
            )
        np.testing.assert_allclose(np.sort(eigs), full, atol=1e-8)

    def test_ground_state_in_some_sector(self):
        qop = molecular_qubit_operator(hydrogen_cluster(2, 1))
        e0 = np.linalg.eigvalsh(qop.to_matrix(4)).min()
        sector_mins = [
            np.linalg.eigvalsh(r.operator.to_matrix(max(r.n_qubits_after, 1))).min()
            for r in all_sectors(qop, 4)
        ]
        assert np.isclose(min(sector_mins), e0, atol=1e-8)

    def test_simple_ising_symmetry(self):
        # H = Z0 Z1 + Z1 Z2: single-qubit Z's commute, and so does the
        # global spin-flip X0 X1 X2 (it anticommutes with each Z factor
        # twice per term) -> kernel dimension 2n - rank = 4.
        qop = (
            QubitOperator(((0, "Z"), (1, "Z")), 1.0)
            + QubitOperator(((1, "Z"), (2, "Z")), 0.5)
        )
        gens = find_z2_symmetries(qop, 3)
        assert len(gens) == 4
        # Only 3 qubits carry Z support, so all four generators cannot
        # be tapered simultaneously ...
        with pytest.raises(ValueError, match="pivots"):
            taper_qubits(qop, 3, generators=gens)
        # ... but the Z-type subset tapers the problem to a constant.
        zgens = [z(0), z(1), z(2)]
        result = taper_qubits(qop, 3, generators=zgens)
        assert result.n_qubits_after == 0
        assert result.operator.n_terms <= 1

    def test_no_generators_noop(self):
        qop = x(0) + z(0)
        result = taper_qubits(qop, 1, generators=[])
        assert result.n_qubits_after == 1
        assert result.operator == qop

    def test_bad_sector_rejected(self):
        qop = molecular_qubit_operator(hydrogen_cluster(2, 1))
        gens = find_z2_symmetries(qop, 4)
        with pytest.raises(ValueError):
            taper_qubits(qop, 4, generators=gens, sector=(2,) * len(gens))
        with pytest.raises(ValueError):
            taper_qubits(qop, 4, generators=gens, sector=(1,))

    def test_multi_term_generator_rejected(self):
        qop = z(0)
        bad = z(0) + x(0)
        with pytest.raises(ValueError, match="single Pauli strings"):
            taper_qubits(qop, 1, generators=[bad])

    def test_h4_tapering_reduces(self):
        qop = molecular_qubit_operator(hydrogen_cluster(3, 1))
        n = 6
        gens = find_z2_symmetries(qop, n)
        assert len(gens) >= 2
        result = taper_qubits(qop, n, generators=gens)
        assert result.n_qubits_after == n - len(gens)
