"""Tests for the QubitOperator Pauli algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chemistry.qubit_operator import QubitOperator, _multiply_terms


def random_operator(rng, n_qubits=3, n_terms=4) -> QubitOperator:
    op = QubitOperator.zero()
    for _ in range(n_terms):
        k = rng.integers(0, n_qubits + 1)
        qubits = rng.choice(n_qubits, size=k, replace=False)
        letters = rng.choice(["X", "Y", "Z"], size=k)
        term = tuple(sorted(zip(qubits.tolist(), letters.tolist())))
        coeff = complex(rng.normal(), rng.normal())
        op += QubitOperator(term, coeff)
    return op


class TestConstruction:
    def test_identity(self):
        op = QubitOperator.identity(2.0)
        assert op.terms == {(): 2.0}
        assert op.max_qubit() == -1

    def test_zero(self):
        assert QubitOperator.zero().n_terms == 0

    def test_invalid_letter(self):
        with pytest.raises(ValueError):
            QubitOperator(((0, "Q"),))

    def test_duplicate_qubit(self):
        with pytest.raises(ValueError):
            QubitOperator(((0, "X"), (0, "Y")))

    def test_negative_qubit(self):
        with pytest.raises(ValueError):
            QubitOperator(((-1, "X"),))

    def test_term_sorted(self):
        op = QubitOperator(((3, "X"), (1, "Z")))
        assert list(op.terms) == [((1, "Z"), (3, "X"))]


class TestTermMultiplication:
    @pytest.mark.parametrize(
        "a,b,phase,result",
        [
            ("X", "Y", 1j, "Z"),
            ("Y", "X", -1j, "Z"),
            ("Y", "Z", 1j, "X"),
            ("Z", "Y", -1j, "X"),
            ("Z", "X", 1j, "Y"),
            ("X", "Z", -1j, "Y"),
        ],
    )
    def test_single_qubit_table(self, a, b, phase, result):
        ph, t = _multiply_terms(((0, a),), ((0, b),))
        assert ph == phase
        assert t == ((0, result),)

    def test_self_product_is_identity(self):
        for p in "XYZ":
            ph, t = _multiply_terms(((0, p),), ((0, p),))
            assert ph == 1 and t == ()

    def test_disjoint_merge(self):
        ph, t = _multiply_terms(((0, "X"),), ((1, "Y"),))
        assert ph == 1
        assert t == ((0, "X"), (1, "Y"))


class TestAlgebraAgainstMatrices:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_product_matches_matrix_product(self, seed):
        rng = np.random.default_rng(seed)
        a = random_operator(rng)
        b = random_operator(rng)
        n = 3
        np.testing.assert_allclose(
            (a * b).to_matrix(n), a.to_matrix(n) @ b.to_matrix(n), atol=1e-10
        )

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_sum_matches_matrix_sum(self, seed):
        rng = np.random.default_rng(seed)
        a = random_operator(rng)
        b = random_operator(rng)
        np.testing.assert_allclose(
            (a + b).to_matrix(3), a.to_matrix(3) + b.to_matrix(3), atol=1e-10
        )

    def test_hermitian_conjugate_matches_dagger(self):
        rng = np.random.default_rng(5)
        a = random_operator(rng)
        np.testing.assert_allclose(
            a.hermitian_conjugate().to_matrix(3),
            a.to_matrix(3).conj().T,
            atol=1e-10,
        )


class TestUtility:
    def test_compress(self):
        op = QubitOperator(((0, "X"),), 1e-15) + QubitOperator(((1, "Y"),), 1.0)
        op.compress()
        assert op.n_terms == 1

    def test_scalar_ops(self):
        op = QubitOperator(((0, "X"),), 2.0)
        assert (op * 2).terms[((0, "X"),)] == 4.0
        assert (3 * op).terms[((0, "X"),)] == 6.0
        assert (op + 1).terms[()] == 1.0
        assert (-op).terms[((0, "X"),)] == -2.0
        assert (op - op).compress().n_terms == 0

    def test_equality(self):
        a = QubitOperator(((0, "X"),), 1.0)
        b = QubitOperator(((0, "X"),), 1.0 + 1e-14)
        assert a == b
        assert a != QubitOperator(((0, "Y"),), 1.0)

    def test_is_hermitian(self):
        assert QubitOperator(((0, "X"),), 1.0).is_hermitian()
        assert not QubitOperator(((0, "X"),), 1j).is_hermitian()

    def test_to_char_matrix(self):
        op = QubitOperator(((0, "X"), (2, "Z")), 2.0)
        chars, coeffs = op.to_char_matrix(4)
        np.testing.assert_array_equal(chars, [[1, 0, 3, 0]])
        np.testing.assert_allclose(coeffs, [2.0])

    def test_to_char_matrix_out_of_range(self):
        op = QubitOperator(((5, "X"),), 1.0)
        with pytest.raises(ValueError):
            op.to_char_matrix(2)

    def test_to_matrix_guard(self):
        with pytest.raises(MemoryError):
            QubitOperator(((13, "X"),)).to_matrix(14)
