"""Parity-transform correctness (the third §II-A encoding)."""

import numpy as np
import pytest

from repro.chemistry import (
    FermionOperator,
    hydrogen_cluster,
    jordan_wigner,
    molecular_qubit_operator,
    parity_ladder,
    parity_transform,
)


def a(p):
    return FermionOperator(((p, False),))


def adag(p):
    return FermionOperator(((p, True),))


class TestParityLadder:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_car_relations(self, n):
        mats_a = [parity_ladder(j, False, n).to_matrix(n) for j in range(n)]
        mats_ad = [parity_ladder(j, True, n).to_matrix(n) for j in range(n)]
        eye = np.eye(2**n)
        for p in range(n):
            for q in range(n):
                anti = mats_a[p] @ mats_ad[q] + mats_ad[q] @ mats_a[p]
                np.testing.assert_allclose(
                    anti, eye if p == q else 0, atol=1e-10, err_msg=f"{p},{q}"
                )
                anti2 = mats_a[p] @ mats_a[q] + mats_a[q] @ mats_a[p]
                np.testing.assert_allclose(anti2, 0, atol=1e-10)

    def test_dagger_is_adjoint(self):
        n = 4
        for j in range(n):
            np.testing.assert_allclose(
                parity_ladder(j, True, n).to_matrix(n),
                parity_ladder(j, False, n).to_matrix(n).conj().T,
                atol=1e-12,
            )

    def test_update_string_shape(self):
        """Mode j touches qubits j-1..n-1 only (rightward X chain)."""
        op = parity_ladder(2, True, 5)
        for term in op.terms:
            qubits = {q for q, _ in term}
            assert qubits <= {1, 2, 3, 4}

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            parity_ladder(4, False, 4)


class TestParityTransform:
    def test_isospectral_with_jw(self):
        rng = np.random.default_rng(0)
        n = 4
        h = rng.normal(size=(n, n))
        h = h + h.T
        ham = FermionOperator.zero()
        for p in range(n):
            for q in range(n):
                ham += h[p, q] * adag(p) * a(q)
        ham += 0.4 * adag(0) * adag(2) * a(2) * a(0)
        jw_eigs = np.linalg.eigvalsh(jordan_wigner(ham).to_matrix(n))
        pa_eigs = np.linalg.eigvalsh(parity_transform(ham, n).to_matrix(n))
        np.testing.assert_allclose(jw_eigs, pa_eigs, atol=1e-8)

    def test_hermitian_input_real_coefficients(self):
        ham = adag(0) * a(1) + adag(1) * a(0)
        assert parity_transform(ham, 2).is_hermitian()

    def test_molecular_pipeline(self):
        qop = molecular_qubit_operator(hydrogen_cluster(2, 1), "parity")
        assert qop.is_hermitian()
        jw = molecular_qubit_operator(hydrogen_cluster(2, 1), "jordan_wigner")
        np.testing.assert_allclose(
            np.linalg.eigvalsh(qop.to_matrix(4)),
            np.linalg.eigvalsh(jw.to_matrix(4)),
            atol=1e-8,
        )

    def test_pauli_set_export(self):
        from repro.chemistry import hn_pauli_set

        ps = hn_pauli_set(2, 1, transform="parity")
        assert ps.name.endswith("_pa")
        assert ps.n > 0
