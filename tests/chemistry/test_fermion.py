"""Tests for the FermionOperator algebra and normal ordering."""

import numpy as np
import pytest

from repro.chemistry.fermion import FermionOperator


def a(p):
    return FermionOperator(((p, False),))


def adag(p):
    return FermionOperator(((p, True),))


class TestBasics:
    def test_identity_and_zero(self):
        assert FermionOperator.identity().terms == {(): 1.0}
        assert FermionOperator.zero().n_terms == 0

    def test_negative_orbital_raises(self):
        with pytest.raises(ValueError):
            FermionOperator(((-1, True),))

    def test_max_orbital(self):
        op = adag(3) * a(1)
        assert op.max_orbital() == 3

    def test_scalar_algebra(self):
        op = 2 * adag(0) - adag(0)
        op = op.normal_ordered()
        assert op.terms == {((0, True),): 1.0}


class TestCanonicalAnticommutation:
    """{a_p, a†_q} = δ_pq and {a_p, a_q} = 0 at the matrix level."""

    def test_car_same_mode(self):
        n = 3
        for p in range(n):
            anti = (a(p) * adag(p) + adag(p) * a(p)).to_matrix(n)
            np.testing.assert_allclose(anti, np.eye(2**n), atol=1e-12)

    def test_car_distinct_modes(self):
        n = 3
        for p in range(n):
            for q in range(n):
                if p == q:
                    continue
                anti = (a(p) * adag(q) + adag(q) * a(p)).to_matrix(n)
                np.testing.assert_allclose(anti, 0, atol=1e-12)

    def test_aa_anticommute(self):
        n = 3
        for p in range(n):
            for q in range(n):
                anti = (a(p) * a(q) + a(q) * a(p)).to_matrix(n)
                np.testing.assert_allclose(anti, 0, atol=1e-12)


class TestNormalOrdering:
    def test_already_normal(self):
        op = (adag(1) * a(0)).normal_ordered()
        assert op.terms == {((1, True), (0, False)): 1.0}

    def test_contraction(self):
        # a_0 a†_0 = 1 - a†_0 a_0
        op = (a(0) * adag(0)).normal_ordered()
        assert op.terms == {(): 1.0, ((0, True), (0, False)): -1.0}

    def test_distinct_swap_sign(self):
        # a_0 a†_1 = -a†_1 a_0
        op = (a(0) * adag(1)).normal_ordered()
        assert op.terms == {((1, True), (0, False)): -1.0}

    def test_double_creation_vanishes(self):
        assert (adag(0) * adag(0)).normal_ordered().n_terms == 0
        assert (a(2) * a(2)).normal_ordered().n_terms == 0

    def test_descending_within_block(self):
        op = (adag(0) * adag(1)).normal_ordered()
        assert op.terms == {((1, True), (0, True)): -1.0}

    def test_matrix_invariance(self):
        """Normal ordering must not change the operator."""
        rng = np.random.default_rng(0)
        for _ in range(10):
            op = FermionOperator.zero()
            for _ in range(3):
                k = rng.integers(1, 5)
                term = tuple(
                    (int(rng.integers(0, 3)), bool(rng.integers(0, 2)))
                    for _ in range(k)
                )
                op += FermionOperator(term, complex(rng.normal(), rng.normal()))
            np.testing.assert_allclose(
                op.normal_ordered().to_matrix(3), op.to_matrix(3), atol=1e-10
            )

    def test_hermiticity_check(self):
        h = adag(0) * a(1) + adag(1) * a(0)
        assert h.is_hermitian()
        assert not (adag(0) * a(1)).is_hermitian()

    def test_hc_matrix(self):
        op = adag(0) * a(1) * 2.5j
        np.testing.assert_allclose(
            op.hermitian_conjugate().to_matrix(2),
            op.to_matrix(2).conj().T,
            atol=1e-12,
        )
