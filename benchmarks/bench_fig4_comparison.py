"""E7 — Fig. 4: Picasso vs Kokkos-EB vs ECL-GC-R, normalized to ECL-GC-R.

Palette sweep (P in {1, 5, 10, 15}% at alpha = 4.5) on the small suite;
colors, memory and time are reported relative to the ECL-GC-R analog.

Paper shapes: smaller P -> relative colors approach 1.0 (quality
matches); Kokkos-EB uses several times ECL-GC's memory; Picasso memory
is comparable-or-lower than ECL-GC's.
"""

import numpy as np
from conftest import write_report

from repro.coloring import jones_plassmann_ldf, speculative_coloring
from repro.core import Picasso, PicassoParams
from repro.graphs import complement_graph

P_SWEEP = (1.0, 5.0, 10.0, 15.0)
ALPHA = 4.5


def test_fig4_comparison(benchmark, small_suite):
    rows = []
    rel_colors_by_p = {p: [] for p in P_SWEEP}
    rel_mem_by_p = {p: [] for p in P_SWEEP}
    kokkos_mem_ratios = []
    for name, ps in small_suite.items():
        if ps.n < 300:
            continue
        g = complement_graph(ps)
        ecl = jones_plassmann_ldf(g, seed=0)
        kokkos = speculative_coloring(g, seed=0)
        kokkos_mem_ratios.append(kokkos.peak_bytes / ecl.peak_bytes)
        rows.append(
            f"{name:<16} {'ECL-GC':<10} {1.0:>8.2f} {1.0:>8.2f} {1.0:>8.2f}"
        )
        rows.append(
            f"{'':<16} {'KokkosEB':<10} {kokkos.n_colors / ecl.n_colors:>8.2f} "
            f"{kokkos.peak_bytes / ecl.peak_bytes:>8.2f} "
            f"{kokkos.elapsed_s / max(ecl.elapsed_s, 1e-9):>8.2f}"
        )
        for p in P_SWEEP:
            params = PicassoParams(palette_fraction=p / 100.0, alpha=ALPHA)
            pic = Picasso(params=params, seed=0).color(ps)
            rc = pic.n_colors / ecl.n_colors
            rm = pic.peak_bytes / ecl.peak_bytes
            rel_colors_by_p[p].append(rc)
            rel_mem_by_p[p].append(rm)
            rows.append(
                f"{'':<16} {f'Pic P={p}%':<10} {rc:>8.2f} {rm:>8.2f} "
                f"{pic.elapsed_s / max(ecl.elapsed_s, 1e-9):>8.2f}"
            )

    lines = [
        f"Relative to ECL-GC-R analog (alpha = {ALPHA})",
        f"{'Problem':<16} {'Algorithm':<10} {'colors':>8} {'memory':>8} {'time':>8}",
        "-" * 56,
        *rows,
    ]
    write_report("fig4_comparison", lines)

    # Paper shapes:
    # 1. Quality improves monotonically (on average) as P shrinks.
    means = [np.mean(rel_colors_by_p[p]) for p in P_SWEEP]
    assert means[0] <= means[-1] + 0.05, means
    # 2. At P = 1% Picasso is within ~20% of ECL-GC quality.
    assert means[0] < 1.25, means
    # 3. Kokkos-EB uses multiples of ECL-GC's memory.
    assert min(kokkos_mem_ratios) > 1.5

    ps = max(small_suite.values(), key=lambda p: p.n)
    benchmark.pedantic(
        lambda: Picasso(
            params=PicassoParams(palette_fraction=0.05, alpha=ALPHA), seed=0
        ).color(ps),
        rounds=3,
        iterations=1,
    )
