"""E10 — §IV-A: the bit-encoding ablation, plus tiled-vs-gather.

The paper reports 1.4-2.0x speedup for the inverse one-hot (AND +
popcount) anticommutation kernel over direct character comparison,
including encoding overheads.  We measure all three kernels (chars,
iooh, symplectic) over the same pair stream, and then ablate the
*sweep shape* on the winning encoding: the flat pair-chunk kernel
(gathers both operand rows per pair) against the block-broadcast tiled
kernel (loads each tile's row slices once).

Paper shape: iooh faster than chars; encoding overhead amortized;
tiled sweep faster than the gather sweep.
"""

import time

import numpy as np
from conftest import write_report

from repro.device.tiles import anticommute_parity_block, sweep_block_hits, tile_edge
from repro.pauli import random_pauli_set
from repro.pauli.anticommute import (
    anticommute_pairs_chars,
    anticommute_pairs_iooh,
    anticommute_pairs_symplectic,
)
from repro.pauli.encoding import encode_iooh, encode_symplectic
from repro.util.chunking import iter_pair_chunks

N = 1500
QUBITS = (8, 16, 24)
REPEATS = 3


def test_encoding_speedup(benchmark):
    rows = []
    speedups = []
    for nq in QUBITS:
        ps = random_pauli_set(N, nq, seed=0)
        ii, jj = np.triu_indices(N, k=1)

        t0 = time.perf_counter()
        for _ in range(REPEATS):
            ref = anticommute_pairs_chars(ps.chars, ii, jj)
        t_chars = (time.perf_counter() - t0) / REPEATS

        t0 = time.perf_counter()
        for _ in range(REPEATS):
            packed = encode_iooh(ps.chars)  # include encoding overhead
            got = anticommute_pairs_iooh(packed, ii, jj)
        t_iooh = (time.perf_counter() - t0) / REPEATS
        np.testing.assert_array_equal(got, ref)

        t0 = time.perf_counter()
        for _ in range(REPEATS):
            x, z = encode_symplectic(ps.chars)
            got2 = anticommute_pairs_symplectic(x, z, ii, jj)
        t_sym = (time.perf_counter() - t0) / REPEATS
        np.testing.assert_array_equal(got2, ref)

        speedup = t_chars / t_iooh
        speedups.append(speedup)
        rows.append(
            f"{nq:>7} {t_chars * 1e3:>10.1f} {t_iooh * 1e3:>10.1f} "
            f"{t_sym * 1e3:>10.1f} {speedup:>8.1f}x"
        )

    lines = [
        f"Anticommute kernels over {N * (N - 1) // 2:,} pairs (ms, incl. encoding)",
        f"{'qubits':>7} {'chars':>10} {'iooh':>10} {'symplect':>10} {'iooh spd':>9}",
        "-" * 52,
        *rows,
        "",
        "paper: encoded kernel 1.4-2.0x over character comparison",
    ]
    write_report("encoding_speedup", lines)

    # Paper shape: the encoded kernel wins at every width.
    assert min(speedups) > 1.2, speedups

    ps = random_pauli_set(N, 16, seed=0)
    packed = encode_iooh(ps.chars)
    ii, jj = np.triu_indices(N, k=1)
    benchmark(lambda: anticommute_pairs_iooh(packed, ii, jj))


def test_tiled_vs_gather_sweep(benchmark):
    """Same iooh kernel, two sweep shapes: flat pair-chunk gather vs
    block-broadcast tiles.  Both count anticommuting pairs over the
    full upper triangle; the tiled sweep must win and agree exactly."""
    n, nq = 4000, 30
    ps = random_pauli_set(n, nq, seed=0)
    packed = encode_iooh(ps.chars)
    rows = []
    speedups = []

    def gather_count():
        total = 0
        for i, j in iter_pair_chunks(n, 1 << 18):
            total += int(anticommute_pairs_iooh(packed, i, j).sum())
        return total

    def tiled_count():
        tile = tile_edge(packed.shape[1], n=n)
        total = 0
        for i, _ in sweep_block_hits(
            n, lambda r0, r1, c0, c1: anticommute_parity_block(packed, r0, r1, c0, c1), tile
        ):
            total += len(i)
        return total

    for _ in range(REPEATS):
        t0 = time.perf_counter()
        m_gather = gather_count()
        t_gather = time.perf_counter() - t0
        t0 = time.perf_counter()
        m_tiled = tiled_count()
        t_tiled = time.perf_counter() - t0
        assert m_gather == m_tiled  # identical sweeps
        speedups.append(t_gather / max(t_tiled, 1e-9))
        rows.append(
            f"{n:>7} {t_gather * 1e3:>11.1f} {t_tiled * 1e3:>11.1f} "
            f"{speedups[-1]:>8.1f}x"
        )

    lines = [
        f"Anticommute sweep over {n * (n - 1) // 2:,} pairs "
        f"({nq} qubits): gather vs tiled (ms)",
        f"{'|V|':>7} {'gather':>11} {'tiled':>11} {'speedup':>9}",
        "-" * 44,
        *rows,
    ]
    write_report("tiled_vs_gather_sweep", lines)
    assert max(speedups) > 1.0, speedups

    benchmark(tiled_count)
