"""E10 — §IV-A: the bit-encoding ablation.

The paper reports 1.4-2.0x speedup for the inverse one-hot (AND +
popcount) anticommutation kernel over direct character comparison,
including encoding overheads.  We measure all three kernels (chars,
iooh, symplectic) over the same pair stream.

Paper shape: iooh faster than chars; encoding overhead amortized.
"""

import time

import numpy as np
from conftest import write_report

from repro.pauli import random_pauli_set
from repro.pauli.anticommute import (
    anticommute_pairs_chars,
    anticommute_pairs_iooh,
    anticommute_pairs_symplectic,
)
from repro.pauli.encoding import encode_iooh, encode_symplectic

N = 1500
QUBITS = (8, 16, 24)
REPEATS = 3


def test_encoding_speedup(benchmark):
    rows = []
    speedups = []
    for nq in QUBITS:
        ps = random_pauli_set(N, nq, seed=0)
        ii, jj = np.triu_indices(N, k=1)

        t0 = time.perf_counter()
        for _ in range(REPEATS):
            ref = anticommute_pairs_chars(ps.chars, ii, jj)
        t_chars = (time.perf_counter() - t0) / REPEATS

        t0 = time.perf_counter()
        for _ in range(REPEATS):
            packed = encode_iooh(ps.chars)  # include encoding overhead
            got = anticommute_pairs_iooh(packed, ii, jj)
        t_iooh = (time.perf_counter() - t0) / REPEATS
        np.testing.assert_array_equal(got, ref)

        t0 = time.perf_counter()
        for _ in range(REPEATS):
            x, z = encode_symplectic(ps.chars)
            got2 = anticommute_pairs_symplectic(x, z, ii, jj)
        t_sym = (time.perf_counter() - t0) / REPEATS
        np.testing.assert_array_equal(got2, ref)

        speedup = t_chars / t_iooh
        speedups.append(speedup)
        rows.append(
            f"{nq:>7} {t_chars * 1e3:>10.1f} {t_iooh * 1e3:>10.1f} "
            f"{t_sym * 1e3:>10.1f} {speedup:>8.1f}x"
        )

    lines = [
        f"Anticommute kernels over {N * (N - 1) // 2:,} pairs (ms, incl. encoding)",
        f"{'qubits':>7} {'chars':>10} {'iooh':>10} {'symplect':>10} {'iooh spd':>9}",
        "-" * 52,
        *rows,
        "",
        "paper: encoded kernel 1.4-2.0x over character comparison",
    ]
    write_report("encoding_speedup", lines)

    # Paper shape: the encoded kernel wins at every width.
    assert min(speedups) > 1.2, speedups

    ps = random_pauli_set(N, 16, seed=0)
    packed = encode_iooh(ps.chars)
    ii, jj = np.triu_indices(N, k=1)
    benchmark(lambda: anticommute_pairs_iooh(packed, ii, jj))
