"""Per-kernel microbenchmark across the registered kernel backends.

Times the three hot word-level primitives of the kernel-backend
contract (:mod:`repro.device.backends`) in isolation — popcount-parity
blocks, palette-intersect blocks and lowest-set-bit row scans — and
reports **nanoseconds per uint64 word** per available backend, so the
compiled (numba) and device (cupy) paths are comparable to numpy on a
hardware-independent axis.

Backends are warmed before timing (numba's first call JIT-compiles; the
``cache=True`` kernels then persist to disk) and each kernel is checked
bit-for-bit against the numpy backend before its timing is trusted.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py
    PYTHONPATH=src python benchmarks/bench_kernels.py --rows 2048 --words 8
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.device.backends import available_backends, get_backend

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_KERNELS.json"


def _random_words(rng, n, words, density=0.3):
    bits = rng.random((n, words * 64)) < density
    return np.packbits(
        bits, axis=1, bitorder="little"
    ).view(np.uint64).reshape(n, words)


def _time_best(fn, repeats):
    """Best-of-``repeats`` wall time — the least noise-polluted run."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_backend(name, rows, words, repeats, reference):
    """ns/word of each contract kernel for one backend.

    ``reference`` holds the numpy backend's outputs; every kernel is
    asserted bit-identical against it before the timing is reported.
    """
    backend = get_backend(name)
    rng = np.random.default_rng(0)
    packed = _random_words(rng, rows, words)
    colmasks = _random_words(rng, rows, words, density=0.1)
    lsb_masks = _random_words(rng, rows * 8, words, density=0.02)

    # Block kernels sweep rows x rows word-pairs; the lsb scan reads
    # each of its rows*8 x words matrix once.
    block_words = rows * rows * words
    lsb_words = lsb_masks.size

    kernels = {
        "anticommute_parity_block": (
            lambda: backend.anticommute_parity_block(packed, 0, rows, 0, rows),
            block_words,
        ),
        "lists_intersect_block": (
            lambda: backend.lists_intersect_block(colmasks, 0, rows, 0, rows),
            block_words,
        ),
        "lowest_set_bit_rows": (
            lambda: backend.lowest_set_bit_rows(lsb_masks),
            lsb_words,
        ),
    }
    row = {}
    for kernel, (fn, n_words) in kernels.items():
        got = np.asarray(fn())  # warm (JIT compile / device transfer)
        if reference is not None:
            np.testing.assert_array_equal(
                got.astype(np.uint8), reference[kernel].astype(np.uint8),
                err_msg=f"{name}:{kernel} diverged from numpy",
            )
        best = _time_best(fn, repeats)
        row[kernel] = {
            "best_s": round(best, 6),
            "ns_per_word": round(1e9 * best / n_words, 3),
        }
    outputs = {k: np.asarray(fn()) for k, (fn, _) in kernels.items()}
    return row, outputs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=1024,
                        help="block side length (default 1024)")
    parser.add_argument("--words", type=int, default=4,
                        help="uint64 words per row (default 4 = 256 bits)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help=f"also write the report (default {OUT_PATH})")
    args = parser.parse_args(argv)

    backends = available_backends()
    report = {
        "rows": args.rows,
        "words": args.words,
        "backends": {},
    }
    # numpy first: it is always available and anchors the identity check.
    _, reference = bench_backend(
        "numpy", args.rows, args.words, repeats=1, reference=None
    )
    print(f"{'backend':<8} {'kernel':<26} {'best s':>10} {'ns/word':>9}")
    for name in backends:
        row, _ = bench_backend(
            name, args.rows, args.words, args.repeats, reference
        )
        report["backends"][name] = row
        for kernel, r in row.items():
            print(
                f"{name:<8} {kernel:<26} {r['best_s']:>10.6f} "
                f"{r['ns_per_word']:>9.3f}"
            )
    numpy_row = report["backends"]["numpy"]
    for name in backends:
        if name == "numpy":
            continue
        speedups = {
            k: round(
                numpy_row[k]["ns_per_word"]
                / max(report["backends"][name][k]["ns_per_word"], 1e-9),
                2,
            )
            for k in numpy_row
        }
        report[f"{name}_speedup"] = speedups
        print(f"{name} speedup vs numpy: {speedups}")

    out_path = pathlib.Path(args.json) if args.json else OUT_PATH
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
