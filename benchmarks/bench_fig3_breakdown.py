"""E6 — Fig. 3: runtime breakdown on the medium tier.

Per input, total time split into list assignment / conflict-graph build
/ conflict coloring, sorted by problem size.

Paper shape (GPU-assisted): the conflict *coloring* (host-side) phase
dominates once the build is accelerated, and assignment is negligible.
"""

from conftest import write_report

from repro.core import Picasso, normal_params


def test_fig3_breakdown(benchmark, medium_suite):
    rows = []
    checks = []
    for name, ps in sorted(medium_suite.items(), key=lambda kv: kv[1].n):
        result = Picasso(params=normal_params(), seed=0).color(ps)
        phases = result.phase_times()
        total = sum(phases.values())
        rows.append(
            f"{name:<16} {ps.n:>7} {phases['assignment']:>9.3f} "
            f"{phases['conflict_graph']:>9.3f} {phases['conflict_coloring']:>9.3f} "
            f"{total:>8.2f}"
        )
        checks.append(phases)

    lines = [
        "Runtime breakdown (seconds) with the vectorized device kernel",
        f"{'Problem':<16} {'|V|':>7} {'assign':>9} {'conflict':>9} {'coloring':>9} "
        f"{'total':>8}",
        "-" * 64,
        *rows,
    ]
    write_report("fig3_breakdown", lines)

    # Paper shapes: assignment is negligible, and acceleration pulls the
    # conflict build far below the 98% share it has CPU-only (Table V),
    # making host-side conflict coloring a comparable component.  (On a
    # real GPU the build share drops further and coloring dominates
    # outright; NumPy vectorization gets partway there.)
    for phases in checks:
        total = sum(phases.values())
        assert phases["assignment"] < 0.25 * total
        assert phases["conflict_graph"] < 0.80 * total
        assert phases["conflict_coloring"] > 0.20 * total

    smallest = min(medium_suite.values(), key=lambda p: p.n)
    benchmark.pedantic(
        lambda: Picasso(params=normal_params(), seed=0).color(smallest),
        rounds=2,
        iterations=1,
    )
