"""E3 — Table IV: maximum resident memory comparison.

Measured analytic peak bytes at reproduction scale for ColPack greedy,
Picasso Normal/Aggressive, Kokkos-EB and ECL-GC-R analogs, plus the
closed-form extrapolation to the paper's largest small-tier instance
(H4 2D 6311g, |V| = 154,641) where the paper reports the 68x headline.

Paper shape: Picasso-Normal lowest; Kokkos-EB highest; ECL-GC lean;
Picasso-Aggressive pays for its denser conflict graphs.
"""

from conftest import write_report

from repro.coloring import greedy_coloring, jones_plassmann_ldf, speculative_coloring
from repro.core import Picasso, aggressive_params, normal_params
from repro.graphs import complement_graph
from repro.memory import AlgorithmMemoryModel, bytes_human


def test_table4_memory(benchmark, small_suite):
    rows = []
    checks = []
    for name, ps in small_suite.items():
        if ps.n < 100:
            continue
        g = complement_graph(ps)
        colpack = greedy_coloring(g, "dlf").peak_bytes
        pic_n = Picasso(params=normal_params(), seed=0).color(ps).peak_bytes
        pic_a = Picasso(params=aggressive_params(), seed=0).color(ps).peak_bytes
        kokkos = speculative_coloring(g, seed=0).peak_bytes
        ecl = jones_plassmann_ldf(g, seed=0).peak_bytes
        rows.append(
            f"{name:<16} {bytes_human(colpack):>10} {bytes_human(pic_n):>10} "
            f"{bytes_human(pic_a):>10} {bytes_human(kokkos):>10} {bytes_human(ecl):>10}"
        )
        checks.append((name, colpack, pic_n, pic_a, kokkos, ecl))

    # Paper-scale extrapolation: H4 2D 6311g.
    model = AlgorithmMemoryModel(n=154_641, m=5_979_614_600, n_qubits=24, id_bytes=8)
    pic_paper = model.picasso_bytes(
        max_conflict_edges=int(0.005 * model.m),
        palette=int(0.125 * model.n),
        list_size=24,
    )
    extrapolation = [
        "",
        "Extrapolation to paper scale (H4 2D 6311g, closed-form models):",
        f"  ColPack:   {bytes_human(model.colpack_bytes())}   (paper: 140.23 GB)",
        f"  Picasso-N: {bytes_human(pic_paper)}   (paper: 2.06 GB)",
        f"  Kokkos-EB: {bytes_human(model.kokkos_eb_bytes())}   (paper: OOM > 40 GB GPU)",
        f"  savings vs ColPack: {model.colpack_bytes() / pic_paper:.0f}x   (paper: 68x)",
    ]

    lines = [
        "Maximum resident memory (analytic accounting)",
        f"{'Problem':<16} {'ColPack':>10} {'Pic-Norm':>10} {'Pic-Aggr':>10} "
        f"{'KokkosEB':>10} {'ECL-GC':>10}",
        "-" * 72,
        *rows,
        *extrapolation,
    ]
    write_report("table4_memory", lines)

    # Paper-shape assertions.
    for name, colpack, pic_n, pic_a, kokkos, ecl in checks:
        assert kokkos > colpack, name          # Kokkos-EB heaviest
        assert kokkos > pic_n, name
    # Normal mode beats the explicit-graph algorithms on the larger
    # inputs (the crossover scale; see Lemma 2 discussion in DESIGN.md).
    big = [c for c in checks if c[1] > 4 * 2**20]
    assert all(pic_n < colpack for _, colpack, pic_n, *_ in big)

    benchmark(lambda: AlgorithmMemoryModel(n=10_000, m=10**7).colpack_bytes())
