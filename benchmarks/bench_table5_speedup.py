"""E4 — Table V: CPU-only vs device-assisted conflict-graph build,
plus the end-to-end tiled-vs-gather engine speedup.

The paper accelerates the conflict-graph construction (its >98% hotspot
on CPU) with a CUDA kernel, reporting ~60x geometric-mean build speedup
growing with problem size.  Our analog: the scalar per-pair Python
kernel ("CPU only") vs the vectorized NumPy device kernel, on the same
inputs with identical color lists — the outputs are asserted equal.

A second experiment measures the tiled kernel engine end to end:
``Picasso.color`` with ``engine="tiled"`` (block-broadcast kernels +
bitset Algorithm 2) against ``engine="pairs"`` (the legacy gather
kernels + Python-set Algorithm 2), identical colorings asserted.

Paper shape: speedup grows with problem size; build dominates total
CPU-only time.
"""

import time

import numpy as np
from conftest import write_report

from repro.core import Picasso
from repro.core.conflict import build_conflict_graph
from repro.core.palette import assign_color_lists
from repro.core.params import PicassoParams
from repro.core.sources import PauliComplementSource
from repro.device.kernels import conflict_pair_kernel_python
from repro.pauli import random_pauli_set
from repro.util.chunking import iter_pair_chunks


def _python_build(src, col_sets, n, chunk=1 << 14):
    edges = 0
    for i, j in iter_pair_chunks(n, chunk):
        edges += int(conflict_pair_kernel_python(src.edge_mask, col_sets, i, j).sum())
    return edges


def test_table5_speedup(benchmark, small_suite):
    params = PicassoParams()  # Normal configuration (P=12.5%, alpha=2)
    rows = []
    speedups = []
    sizes = []
    for name, ps in sorted(small_suite.items(), key=lambda kv: kv[1].n):
        if not 100 <= ps.n <= 1500:
            continue
        src = PauliComplementSource(ps)
        palette = params.palette_size(ps.n)
        lists, masks = assign_color_lists(ps.n, palette, params.list_size(ps.n), rng=0)
        col_sets = [set(row.tolist()) for row in lists]

        t0 = time.perf_counter()
        m_py = _python_build(src, col_sets, ps.n)
        t_py = time.perf_counter() - t0

        t0 = time.perf_counter()
        _, m_vec = build_conflict_graph(ps.n, src.edge_mask, masks)
        t_vec = time.perf_counter() - t0

        assert m_py == m_vec  # identical conflict graphs
        speedup = t_py / max(t_vec, 1e-9)
        speedups.append(speedup)
        sizes.append(ps.n)
        rows.append(
            f"{name:<16} {ps.n:>6} {t_py:>10.3f} {t_vec:>10.4f} {speedup:>9.1f}x"
        )

    geo = float(np.exp(np.mean(np.log(speedups))))
    lines = [
        "Conflict-graph build: scalar CPU kernel vs vectorized device kernel",
        f"{'Problem':<16} {'|V|':>6} {'CPU-only s':>10} {'device s':>10} {'speedup':>10}",
        "-" * 58,
        *rows,
        f"{'Geo. mean':<16} {'':>6} {'':>10} {'':>10} {geo:>9.1f}x",
    ]
    write_report("table5_speedup", lines)

    # Paper shapes: all speedups >> 1, growing with problem size.
    assert min(speedups) > 3
    assert speedups[np.argmax(sizes)] >= max(speedups) * 0.3  # big stays fast

    # pytest-benchmark timing of the device-kernel build on the largest.
    ps = max(small_suite.values(), key=lambda p: p.n)
    src = PauliComplementSource(ps)
    palette = params.palette_size(ps.n)
    _, masks = assign_color_lists(ps.n, palette, params.list_size(ps.n), rng=0)
    benchmark(lambda: build_conflict_graph(ps.n, src.edge_mask, masks))


def test_end_to_end_tiled_vs_gather(benchmark):
    """Whole-run engine ablation on a 10k-string, 50-qubit random set:
    the acceptance headline of the tiled kernel engine (>= 3x)."""
    ps = random_pauli_set(10_000, 50, seed=0)
    timings = {}
    results = {}
    for engine in ("tiled", "pairs"):
        # Best of two identical seeded runs: drops scheduler noise.
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            r = Picasso(params=PicassoParams(engine=engine), seed=1).color(ps)
            best = min(best, time.perf_counter() - t0)
        results[engine] = r
        timings[engine] = best
    np.testing.assert_array_equal(
        results["tiled"].colors, results["pairs"].colors
    )
    speedup = timings["pairs"] / timings["tiled"]

    def phase_row(engine):
        p = results[engine].phase_times()
        return (
            f"{engine:<7} {timings[engine]:>8.2f} {p['assignment']:>8.2f} "
            f"{p['conflict_graph']:>10.2f} {p['conflict_coloring']:>10.2f}"
        )

    lines = [
        "Picasso.color end to end, 10k strings x 50 qubits (seconds)",
        f"{'engine':<7} {'total':>8} {'assign':>8} {'conflict':>10} {'coloring':>10}",
        "-" * 48,
        phase_row("tiled"),
        phase_row("pairs"),
        f"speedup (pairs/tiled): {speedup:.2f}x",
    ]
    write_report("tiled_end_to_end", lines)
    assert speedup >= 3.0, f"tiled engine speedup {speedup:.2f}x below 3x target"

    small = random_pauli_set(1_500, 30, seed=0)
    benchmark(lambda: Picasso(params=PicassoParams(engine="tiled"), seed=1).color(small))
