"""CI quick-bench regression gate.

Compares the headline ``total_s`` of a fresh ``--quick`` bench run
(``benchmarks/results/BENCH_PR<newest>.quick.json``) against the
newest committed trajectory file (``BENCH_PR*.json`` at the repo root)
and fails when any shared row slowed down by more than the threshold
(default 25%, override via ``REPRO_BENCH_REGRESSION_PCT`` or
``--threshold-pct``).

Artifact numbering is derived, never hardcoded: the PR sequence has
gaps (a lint-only PR ships no trajectory file — there is no
``BENCH_PR8.json``), so both tools resolve names against the highest
``BENCH_PR<k>.json`` actually present — quick artifacts are named for
the newest committed trajectory and a full run writes ``<newest+1>``.

Only cases and rows present in *both* reports are compared — a quick
run carries the ``small`` case only, so the gate measures dispatch and
per-iteration overhead drift, not 10k-headline throughput.  The
``tiled_numba`` row appears only where the numba runtime imports (the
CI numba leg), and joins the gate through the same shared-row rule.
Cross-machine noise is expected; the threshold is deliberately loose
and a genuinely intended slowdown (e.g. a correctness fix) is waivable
by putting ``[bench-waiver]`` in the commit message.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --quick
    python benchmarks/check_regression.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Commit-message tag that turns a failing gate into a warning.
WAIVER_TAG = "[bench-waiver]"


def newest_committed_bench(
    root: pathlib.Path = REPO_ROOT,
) -> pathlib.Path | None:
    """Highest-numbered ``BENCH_PR<k>.json`` at the repo root.

    Gap-tolerant by construction: the trajectory is whatever files
    exist, not a contiguous range (lint-only PRs ship none).
    """
    best, best_k = None, -1
    for p in pathlib.Path(root).glob("BENCH_PR*.json"):
        m = re.fullmatch(r"BENCH_PR(\d+)\.json", p.name)
        if m and int(m.group(1)) > best_k:
            best, best_k = p, int(m.group(1))
    return best


def newest_pr_number(root: pathlib.Path = REPO_ROOT) -> int:
    """The ``k`` of the newest committed trajectory file (0 when none)."""
    best = newest_committed_bench(root)
    if best is None:
        return 0
    return int(re.fullmatch(r"BENCH_PR(\d+)\.json", best.name).group(1))


def next_pr_number(root: pathlib.Path = REPO_ROOT) -> int:
    """The number a full bench run writes under (newest committed + 1)."""
    return newest_pr_number(root) + 1


def quick_report_path(root: pathlib.Path = REPO_ROOT) -> pathlib.Path:
    """Where ``run_bench.py --quick`` writes: named for the newest
    committed trajectory (the baseline it is gated against), under the
    ignored results directory so CI can never land it in the tree."""
    k = newest_pr_number(root)
    return (
        pathlib.Path(root) / "benchmarks" / "results"
        / f"BENCH_PR{k}.quick.json"
    )


def head_commit_message() -> str:
    try:
        return subprocess.run(
            ["git", "log", "-1", "--format=%B"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout
    except Exception:
        return ""


def _total_rows(case: dict) -> dict[str, float]:
    """``row_name -> total_s`` for every config row of one case."""
    return {
        k: v["total_s"]
        for k, v in case.items()
        if isinstance(v, dict) and "total_s" in v
    }


def compare(new: dict, base: dict, threshold_pct: float) -> list[str]:
    """Rows slower than ``threshold_pct`` vs the baseline, as messages."""
    base_cases = {c["name"]: c for c in base.get("cases", [])}
    regressions = []
    compared = 0
    for case in new.get("cases", []):
        ref = base_cases.get(case["name"])
        if ref is None:
            continue
        ref_rows = _total_rows(ref)
        for row, total in _total_rows(case).items():
            ref_total = ref_rows.get(row)
            if ref_total is None or ref_total <= 0:
                continue
            compared += 1
            pct = 100.0 * (total - ref_total) / ref_total
            line = (
                f"{case['name']}/{row}: {ref_total:.3f}s -> {total:.3f}s "
                f"({pct:+.1f}%)"
            )
            if pct > threshold_pct:
                regressions.append(line)
            else:
                print(f"ok   {line}")
    if compared == 0:
        print("warning: no shared case/row between reports; nothing gated")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--new", default=None, metavar="PATH",
        help="fresh quick-bench report (default the --quick output "
        "path, named for the newest committed BENCH_PR*.json)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed trajectory file to gate against (default the "
        "highest-numbered BENCH_PR*.json at the repo root)",
    )
    parser.add_argument(
        "--threshold-pct", type=float,
        default=float(os.environ.get("REPRO_BENCH_REGRESSION_PCT", "25")),
        help="allowed slowdown per row (default 25, or "
        "REPRO_BENCH_REGRESSION_PCT)",
    )
    parser.add_argument(
        "--commit-message", default=None,
        help=f"commit message to scan for {WAIVER_TAG} (default: git "
        "log -1)",
    )
    args = parser.parse_args(argv)

    baseline = (
        pathlib.Path(args.baseline) if args.baseline
        else newest_committed_bench()
    )
    if baseline is None or not baseline.exists():
        print("warning: no committed BENCH_PR*.json baseline; skipping gate")
        return 0
    new_path = (
        pathlib.Path(args.new) if args.new else quick_report_path()
    )
    if not new_path.exists():
        print(f"error: quick report {new_path} not found — run "
              "benchmarks/run_bench.py --quick first", file=sys.stderr)
        return 2

    new = json.loads(new_path.read_text())
    base = json.loads(baseline.read_text())
    print(f"gating {new_path.name} against {baseline.name} "
          f"(threshold +{args.threshold_pct:.0f}%)")
    regressions = compare(new, base, args.threshold_pct)
    if not regressions:
        print("no regressions")
        return 0
    message = (
        args.commit_message if args.commit_message is not None
        else head_commit_message()
    )
    for line in regressions:
        print(f"SLOW {line}", file=sys.stderr)
    if WAIVER_TAG in message:
        print(f"waived: commit message carries {WAIVER_TAG}")
        return 0
    print(
        f"error: {len(regressions)} row(s) regressed beyond "
        f"{args.threshold_pct:.0f}%; waive with {WAIVER_TAG} in the "
        "commit message if intended",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
