"""E8 — Fig. 5: (P, alpha) sensitivity heatmaps on a representative input.

Three text heatmaps: final colors (% of |V|), max conflicting edges
(% of |E|) and runtime, over P in {1..20}% x alpha in {0.5..4.5}.

Paper shapes: colors improve toward small P / large alpha; conflict
edges and time grow in that same corner.
"""

import numpy as np
from conftest import write_report

from repro.core import Picasso, PicassoParams
from repro.graphs import complement_edge_count
from repro.datasets import load_molecule

P_GRID = (1.0, 5.0, 10.0, 15.0, 20.0)
A_GRID = (0.5, 1.5, 2.5, 3.5, 4.5)


def _heatmap(title: str, grid: np.ndarray, fmt: str) -> list[str]:
    lines = [title, "      " + "".join(f"P={p:<7.0f}" for p in P_GRID)]
    for r, a in enumerate(A_GRID):
        lines.append(
            f"a={a:<4}" + "".join(f"{grid[r, c]:<9{fmt}}" for c in range(len(P_GRID)))
        )
    lines.append("")
    return lines


def test_fig5_heatmap(benchmark):
    ps = load_molecule("H6_1D_sto3g")  # the representative input
    n_edges = complement_edge_count(ps)
    colors = np.zeros((len(A_GRID), len(P_GRID)))
    edges = np.zeros_like(colors)
    times = np.zeros_like(colors)
    for r, a in enumerate(A_GRID):
        for c, p in enumerate(P_GRID):
            params = PicassoParams(palette_fraction=p / 100.0, alpha=a)
            result = Picasso(params=params, seed=0).color(ps)
            colors[r, c] = 100.0 * result.n_colors / ps.n
            edges[r, c] = 100.0 * result.max_conflict_edges / n_edges
            times[r, c] = result.elapsed_s

    lines = [
        f"Sensitivity on {ps.name} (|V| = {ps.n}, |E| = {n_edges:,})",
        "",
        *_heatmap("Final colors (% of |V|, lower better)", colors, ".1f"),
        *_heatmap("Max |Ec| (% of |E|, lower better)", edges, ".1f"),
        *_heatmap("Total time (s)", times, ".2f"),
    ]
    write_report("fig5_heatmap", lines)

    # Paper shapes.
    # 1. For fixed alpha, colors (%) rise with P (larger palette = more
    #    colors spent): compare the P extremes at the top alpha.
    assert colors[-1, 0] <= colors[-1, -1]
    # 2. For fixed P, conflict edges rise with alpha (longer lists share
    #    more) — compare alpha extremes at the largest palette.
    assert edges[0, -1] <= edges[-1, -1]
    # 3. The cheap corner (large P, small alpha) is at most as
    #    conflict-heavy as the expensive corner (small P, large alpha).
    assert edges[0, -1] <= edges[-1, 0]

    benchmark(
        lambda: Picasso(
            params=PicassoParams(palette_fraction=0.125, alpha=2.0), seed=0
        ).color(ps)
    )
