"""E2 — Table III: coloring-quality comparison.

ColPack greedy orderings (LF / SL / DLF / ID) vs Picasso Normal
(P = 12.5%, alpha = 2) and Aggressive (P = 3%, alpha = 30) vs the
Kokkos-EB and ECL-GC-R analogs, averaged over three seeds.  Picasso's
Algorithm 2 implementation is selected through the coloring-engine
registry (``PicassoParams(color_engine=...)``); a ``parallel-list``
column quantifies what the round-synchronous engine costs in quality.

Paper shape to reproduce: DLF best among orderings; Picasso-Normal
beats LF; Picasso-Aggressive within ~10% of DLF and competitive with
the GPU baselines.
"""

import numpy as np
from conftest import write_report

from repro.coloring import greedy_coloring, jones_plassmann_ldf, speculative_coloring
from repro.core import Picasso, aggressive_params, normal_params
from repro.graphs import complement_graph

SEEDS = (0, 1, 2)


def _picasso_avg(ps, params):
    return float(
        np.mean([Picasso(params=params, seed=s).color(ps).n_colors for s in SEEDS])
    )


def test_table3_quality(benchmark, small_suite):
    rows = []
    shape_checks = []
    for name, ps in small_suite.items():
        if ps.n < 100:
            continue  # H2 is degenerate for ordering comparisons
        g = complement_graph(ps)
        colpack = {
            o: greedy_coloring(g, o, seed=0).n_colors for o in ("lf", "sl", "dlf", "id")
        }
        pic_n = _picasso_avg(ps, normal_params())
        pic_a = _picasso_avg(ps, aggressive_params())
        # Engine selection through the registry, not a direct import of
        # a list-coloring function — the same seam the driver uses.
        pic_pl = _picasso_avg(ps, normal_params(color_engine="parallel-list"))
        # The parallel baselines are near-deterministic in quality; one
        # seed keeps the harness fast (Picasso still averages seeds, as
        # the paper does).
        kokkos = float(speculative_coloring(g, seed=0).n_colors)
        ecl = float(jones_plassmann_ldf(g, seed=0).n_colors)
        rows.append(
            f"{name:<16} {colpack['lf']:>6} {colpack['sl']:>6} {colpack['dlf']:>6} "
            f"{colpack['id']:>6} {pic_n:>8.1f} {pic_a:>8.1f} {pic_pl:>8.1f} "
            f"{kokkos:>9.1f} {ecl:>8.1f}"
        )
        shape_checks.append(
            (name, colpack["dlf"], colpack["lf"], pic_n, pic_a)
        )
        # The round-synchronous engine trades a bounded slice of quality
        # for parallel rounds — it must stay in the same league as the
        # greedy engine, not collapse toward one-color-per-round Luby.
        assert pic_pl <= 1.35 * pic_n, (name, pic_pl, pic_n)

    lines = [
        "Quality comparison (number of colors; lower is better)",
        f"{'Problem':<16} {'LF':>6} {'SL':>6} {'DLF':>6} {'ID':>6} "
        f"{'Pic-Norm':>8} {'Pic-Aggr':>8} {'Pic-PL':>8} {'KokkosEB':>9} {'ECL-GC':>8}",
        "-" * 88,
        *rows,
    ]
    write_report("table3_quality", lines)

    # Paper-shape assertions (statistical, across the suite).
    aggr_close_to_dlf = sum(
        pa <= 1.10 * dlf for _, dlf, _, _, pa in shape_checks
    )
    norm_beats_lf = sum(pn <= lf * 1.35 for _, _, lf, pn, _ in shape_checks)
    assert aggr_close_to_dlf >= len(shape_checks) - 1, shape_checks
    assert norm_beats_lf >= len(shape_checks) // 2

    # Timing: Picasso-Normal on the largest small input.
    biggest = max(small_suite.values(), key=lambda p: p.n)
    benchmark.pedantic(
        lambda: Picasso(params=normal_params(), seed=0).color(biggest),
        rounds=3,
        iterations=1,
    )
