"""E1 — Table II: the molecule dataset census.

Regenerates the paper's dataset table (qubits, Pauli terms,
anticommute-edge counts) for the reproduction-scale suite, and
benchmarks the Hamiltonian-to-PauliSet generation pipeline.
"""

from conftest import write_report

from repro.chemistry import hn_pauli_set
from repro.datasets import suite_specs, load_molecule
from repro.graphs import anticommute_edge_count


def test_table2_census(benchmark, small_suite):
    lines = [
        f"{'Molecule':<16} {'#qubits':>8} {'#Pauli terms':>13} {'#edges':>12}",
        "-" * 52,
    ]
    for spec in suite_specs("small") + suite_specs("medium"):
        ps = load_molecule(spec.name)
        m = anticommute_edge_count(ps)
        lines.append(f"{spec.name:<16} {ps.n_qubits:>8} {ps.n:>13,} {m:>12,}")
    write_report("table2_dataset_census", lines)

    # Benchmark the generation pipeline itself on a mid-size molecule.
    benchmark(lambda: hn_pauli_set(4, 1, "sto3g"))
