"""E13 — §III: the three Pauli-grouping relations through one engine.

The related-work section positions unitary partitioning among the
grouping schemes: QWC (strictest), general commutativity (loosest) and
anticommutativity (the paper's target).  All three are clique
partitions; all three stream their compatibility graphs through the
same Picasso machinery here.

Shape asserted: group counts order GC <= anticommute <= QWC, and every
scheme compresses the input (the §III "1/10 to 1/6" regime scales with
input size).
"""

from conftest import write_report

from repro.core import aggressive_params
from repro.datasets import load_molecule
from repro.pauli import group_pauli_set, validate_grouping


def test_grouping_relations(benchmark):
    rows = []
    orderings_ok = []
    for name in ("H4_1D_sto3g", "H6_1D_sto3g"):
        ps = load_molecule(name)
        counts = {}
        for relation in ("qubitwise", "anticommute", "commute"):
            g = group_pauli_set(ps, relation, params=aggressive_params(), seed=0)
            assert validate_grouping(ps, g)
            counts[relation] = g.n_colors
            rows.append(
                f"{name:<16} {relation:<12} {g.n_colors:>7} {g.reduction:>9.1f}x"
            )
        orderings_ok.append(
            counts["commute"] <= counts["anticommute"] <= counts["qubitwise"]
        )
        assert all(c < ps.n for c in counts.values())

    write_report(
        "grouping_relations",
        [
            "Clique partitioning under the three §III relations (Picasso, aggressive)",
            f"{'problem':<16} {'relation':<12} {'groups':>7} {'reduction':>10}",
            "-" * 50,
            *rows,
        ],
    )
    assert all(orderings_ok)

    ps = load_molecule("H4_1D_sto3g")
    benchmark.pedantic(
        lambda: group_pauli_set(ps, "commute", params=aggressive_params(), seed=0),
        rounds=2,
        iterations=1,
    )
