"""E5 — Fig. 2: conflict-edge fraction vs input size, with the device
feasibility line.

For fixed parameters (P = 12.5%, alpha = 2) the maximum conflicting-edge
percentage decays as |V| grows (Lemma 2: |Ec| ~ n log^3 n while
|E| ~ n^2), while the fraction an accelerator can *hold* also decays
(budget / |E| ~ 1/n^2).  The paper's dashed A100 line is reproduced for
the simulated device budget.
"""

import numpy as np
from conftest import write_report

from repro.core import Picasso, normal_params
from repro.pauli import random_pauli_set_density
from repro.util.chunking import num_pairs

SIZES = (200, 400, 800, 1600, 3200)
DENSITY = 0.55  # complement-edge fraction of the workload family
#: Feasibility-line budget, scaled so the crossover (the paper's A100
#: dashed line crossing the measured curve) is visible at toy scale.
LINE_BUDGET = 1 * 1024 * 1024


def test_fig2_scaling(benchmark):
    rows = []
    fractions = []
    for n in SIZES:
        ps = random_pauli_set_density(
            n, 10, identity_fraction=0.35, seed=42, name=f"scale{n}"
        )
        result = Picasso(params=normal_params(), seed=0).color(ps)
        n_edges = int(DENSITY * num_pairs(n))  # nominal |E| for the family
        frac = 100.0 * result.max_conflict_edges / n_edges
        # Device feasibility: the COO buffer holds budget/8 edges (two
        # 4-byte ids each); as % of |E| this is the dashed line.
        admissible = min(100.0, 100.0 * (LINE_BUDGET / 8) / n_edges)
        fractions.append(frac)
        rows.append(
            f"{n:>6} {result.max_conflict_edges:>12,} {frac:>10.2f} "
            f"{admissible:>12.2f}"
        )

    lines = [
        "Max conflicting-edge fraction vs |V| (P = 12.5%, alpha = 2)",
        f"{'|V|':>6} {'max |Ec|':>12} {'% of |E|':>10} {'device max %':>12}",
        "-" * 46,
        *rows,
        "",
        "device max % = conflict-edge fraction that fits a "
        f"{LINE_BUDGET >> 20} MB device budget (the paper's dashed A100 line; "
        "it crosses the measured curve as |E| grows quadratically)",
    ]
    write_report("fig2_scaling", lines)

    # Paper shape: the conflicting fraction decreases monotonically in n.
    assert all(a >= b for a, b in zip(fractions, fractions[1:])), fractions

    benchmark(
        lambda: Picasso(params=normal_params(), seed=0).color(
            random_pauli_set_density(400, 10, identity_fraction=0.35, seed=42)
        )
    )
