"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
(§VII).  Numeric results are written to ``benchmarks/results/*.txt`` so
they survive pytest's stdout capture; EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, lines: list[str]) -> None:
    """Persist a paper-style text table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n=== {name} ===")
    print(text)


@pytest.fixture(scope="session")
def small_suite():
    """Small-tier molecule suite (H2/H4/H6 sto3g), generated once."""
    from repro.datasets import molecule_suite

    return molecule_suite("small")


@pytest.fixture(scope="session")
def medium_suite():
    """Medium-tier suite (H8 sto3g, H4 631g)."""
    from repro.datasets import molecule_suite

    return molecule_suite("medium")
