"""E12 — Ablations of the design choices DESIGN.md §6 calls out.

A. Conflict-coloring scheme: Algorithm 2 (dynamic, most-constrained
   first) vs static list orders — the paper states dynamic colors best
   (§VII: "it provided better coloring relative to the static ordering
   algorithms").
B. Iterative vs single-pass: ACK's streaming algorithm is single-pass
   and needs a large palette for a valid coloring; Picasso's iterative
   loop reaches fewer total colors with small palettes (§III item iii).
C. Quality-improver: iterated-greedy recoloring on top of the
   baselines (never worse; quantifies the cheap classical cleanup).
D. Luby-MIS lineage: one fresh color per MIS round is measurably worse
   than JP/greedy — the historical motivation recorded in §III.
E. Multi-device: k devices of 1/k capacity reproduce the single-device
   result (the §VIII future-work claim).
"""

import numpy as np
from conftest import write_report

from repro.coloring import (
    greedy_coloring,
    iterated_greedy,
    jones_plassmann_ldf,
    luby_coloring,
)
from repro.core import Picasso, PicassoParams
from repro.core.palette import assign_color_lists
from repro.core.sources import PauliComplementSource
from repro.datasets import load_molecule
from repro.device import DeviceSim, build_conflict_csr, build_conflict_csr_multi
from repro.graphs import complement_graph


def test_ablation_conflict_order(benchmark):
    ps = load_molecule("H6_1D_sto3g")
    rows = []
    by_order = {}
    for order in ("dynamic", "natural", "random", "lf"):
        params = PicassoParams(
            palette_fraction=0.05, alpha=4.0, conflict_order=order
        )
        colors = [Picasso(params=params, seed=s).color(ps).n_colors for s in (0, 1, 2)]
        by_order[order] = float(np.mean(colors))
        rows.append(f"{order:<10} {np.mean(colors):>8.1f}")
    write_report(
        "ablation_conflict_order",
        [
            f"Conflict-coloring scheme on {ps.name} (P=5%, alpha=4, 3 seeds)",
            f"{'scheme':<10} {'colors':>8}",
            "-" * 20,
            *rows,
        ],
    )
    # Paper shape: Algorithm 2 at least matches every static order.
    assert by_order["dynamic"] <= min(by_order.values()) * 1.03

    benchmark.pedantic(
        lambda: Picasso(
            params=PicassoParams(palette_fraction=0.05, alpha=4.0), seed=0
        ).color(ps),
        rounds=2,
        iterations=1,
    )


def test_ablation_iterative_vs_single_pass(benchmark):
    ps = load_molecule("H6_1D_sto3g")
    rows = []
    data = {}
    for pf in (0.5, 0.25, 0.125, 0.05):
        params = PicassoParams(palette_fraction=pf, alpha=2.0)
        r = Picasso(params=params, seed=0).color(ps)
        data[pf] = (r.n_colors, r.n_iterations)
        rows.append(
            f"{100 * pf:>5.1f}% {r.n_colors:>8} {r.n_iterations:>7} "
            f"{r.max_conflict_edges:>12,}"
        )
    write_report(
        "ablation_single_pass",
        [
            f"Palette size vs iteration count on {ps.name} (alpha = 2)",
            f"{'P':>6} {'colors':>8} {'iters':>7} {'max |Ec|':>12}",
            "-" * 38,
            *rows,
            "",
            "ACK's single pass corresponds to the large-palette regime "
            "(few iterations, many colors); the iterative loop trades "
            "iterations for quality.",
        ],
    )
    # Shape: fewer iterations at large palettes, fewer colors at small.
    assert data[0.5][1] <= data[0.05][1]
    assert data[0.05][0] <= data[0.5][0]

    benchmark.pedantic(
        lambda: Picasso(
            params=PicassoParams(palette_fraction=0.125, alpha=2.0), seed=0
        ).color(ps),
        rounds=2,
        iterations=1,
    )


def test_ablation_iterated_greedy(benchmark):
    ps = load_molecule("H4_1D_sto3g")
    g = complement_graph(ps)
    rows = []
    for label, base in (
        ("natural", greedy_coloring(g, "natural")),
        ("lf", greedy_coloring(g, "lf")),
        ("dlf", greedy_coloring(g, "dlf")),
        ("jp-ldf", jones_plassmann_ldf(g, seed=0)),
    ):
        improved = iterated_greedy(g, base, rounds=9, seed=0)
        assert improved.n_colors <= base.n_colors
        assert g.validate_coloring(improved.colors)
        rows.append(
            f"{label:<10} {base.n_colors:>7} {improved.n_colors:>10}"
        )
    write_report(
        "ablation_iterated_greedy",
        [
            f"Iterated-greedy cleanup on {ps.name}",
            f"{'base':<10} {'colors':>7} {'after +ig':>10}",
            "-" * 30,
            *rows,
        ],
    )
    benchmark.pedantic(
        lambda: iterated_greedy(g, greedy_coloring(g, "natural"), rounds=3, seed=0),
        rounds=2,
        iterations=1,
    )


def test_ablation_luby_lineage(benchmark):
    ps = load_molecule("H4_1D_sto3g")
    g = complement_graph(ps)
    luby = luby_coloring(g, seed=0)
    jp = jones_plassmann_ldf(g, seed=0)
    dlf = greedy_coloring(g, "dlf")
    write_report(
        "ablation_luby",
        [
            f"MIS-per-color (Luby) vs JP-LDF vs greedy-DLF on {ps.name}",
            f"luby-mis: {luby.n_colors}   jp-ldf: {jp.n_colors}   "
            f"greedy-dlf: {dlf.n_colors}",
        ],
    )
    assert g.validate_coloring(luby.colors)
    assert luby.n_colors >= jp.n_colors  # the historical motivation for JP
    benchmark.pedantic(lambda: luby_coloring(g, seed=0), rounds=2, iterations=1)


def test_ablation_multi_device(benchmark):
    ps = load_molecule("H4_1D_sto3g")
    src = PauliComplementSource(ps)
    params = PicassoParams()
    palette = params.palette_size(ps.n)
    _, masks = assign_color_lists(ps.n, palette, params.list_size(ps.n), rng=0)

    single = DeviceSim(budget_bytes=1 << 24, name="single")
    g1, s1 = build_conflict_csr(ps.n, src.edge_mask, masks, single)

    quads = [DeviceSim(budget_bytes=1 << 22, name=f"q{r}") for r in range(4)]
    g4, s4 = build_conflict_csr_multi(ps.n, src.edge_mask, masks, quads)

    assert s4.n_conflict_edges == s1.n_conflict_edges
    np.testing.assert_array_equal(g4.offsets, g1.offsets)
    write_report(
        "ablation_multi_device",
        [
            f"Multi-device build on {ps.name}: {s1.n_conflict_edges:,} conflict edges",
            f"single device peak: {s1.device_peak_bytes:,} B",
            "4-device peaks:     "
            + ", ".join(f"{b:,} B" for b in s4.peak_bytes_per_device),
            f"edges per device:   {s4.edges_per_device}",
        ],
    )
    # Each quarter-device holds roughly a quarter of the edges.
    assert max(s4.edges_per_device) < 0.45 * s1.n_conflict_edges

    benchmark.pedantic(
        lambda: build_conflict_csr_multi(
            ps.n,
            src.edge_mask,
            masks,
            [DeviceSim(budget_bytes=1 << 22) for _ in range(4)],
        ),
        rounds=2,
        iterations=1,
    )
