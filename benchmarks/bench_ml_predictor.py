"""E9 — §VI: the parameter-prediction experiment.

Builds a sweep dataset over a seven-input family, trains ridge / lasso
/ tree / random-forest regressors on five inputs, and evaluates MAPE
and R² on the two held-out inputs — the paper's methodology (its
numbers: forest MAPE 0.19, R² 0.88).

Paper shape: the nonlinear models out-predict the linear ones.
"""

from conftest import write_report

from repro.pauli import random_pauli_set_density
from repro.predict import build_dataset, compare_models

GRID = dict(
    palette_percents=(1.0, 2.5, 5.0, 10.0, 15.0, 20.0),
    alphas=(0.5, 1.5, 2.5, 3.5, 4.5),
    betas=(0.1, 0.3, 0.5, 0.7, 0.9),
)


def _family(k: int):
    return random_pauli_set_density(
        100 + 70 * k, 8, identity_fraction=0.3, seed=k, name=f"mol{k}"
    )


def test_ml_predictor(benchmark):
    sets = [_family(k) for k in range(7)]
    dataset = build_dataset(sets, seed=0, **GRID)
    train, test = dataset.split_by_input({"mol5", "mol6"})
    results = compare_models(train, test, seed=0)

    lines = [
        "Parameter predictor: held-out MAPE / R2 per model",
        f"(train rows: {len(train)}, test rows: {len(test)})",
        f"{'model':<8} {'MAPE':>8} {'R2':>8}",
        "-" * 28,
    ]
    for name, m in results.items():
        lines.append(f"{name:<8} {m['mape']:>8.3f} {m['r2']:>+8.3f}")
    lines.append("")
    lines.append("paper: random forest MAPE = 0.19, R2 = 0.88")
    write_report("ml_predictor", lines)

    # Paper shape: best nonlinear model at least matches best linear.
    best_linear = min(results["ridge"]["mape"], results["lasso"]["mape"])
    best_nonlinear = min(results["tree"]["mape"], results["forest"]["mape"])
    assert best_nonlinear <= best_linear * 1.25
    # Forest must be usefully predictive in absolute terms.
    assert results["forest"]["mape"] < 0.8

    benchmark(lambda: compare_models(train, test, models=("forest",), seed=0))
