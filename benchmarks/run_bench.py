"""Perf-trajectory entry point: engines, backends, and gather paths.

Runs ``Picasso.color`` end to end on random Pauli sets with both pair
sweep engines (``tiled`` = block-broadcast kernels + bitset Algorithm 2,
``pairs`` = the legacy gather kernels + Python-set Algorithm 2) and,
for the tiled engine, three execution configurations: the serial
backend, a ``--workers``-sized *persistent* process pool with the
default pickled result gather, and the same pool with the zero-copy
shared-memory gather (``shm_gather=True`` — workers write hits into a
Lemma 2-sized shared COO region; only hit counts cross the result
pipe).  All runs must produce identical colorings (every backend and
gather builds bit-identical conflict CSR per seed); elapsed seconds per
phase land in ``BENCH_PR3.json`` at the repo root.  The JSON files form
the performance trajectory: each PR appends ``BENCH_PR<N>.json`` so
regressions are visible in review.

The parallel rows record ``host_cpu_count``; on hosts with fewer cores
than ``--workers`` the speedup is bounded by the core count (a
single-core box demonstrates bit-identical correctness plus the
shm-vs-pickle communication delta, not parallel speedup) and the
report says so explicitly.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py               # incl. 10k headline
    PYTHONPATH=src python benchmarks/run_bench.py --workers 4
    PYTHONPATH=src python benchmarks/run_bench.py --quick       # small sizes only
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.core import Picasso, PicassoParams
from repro.pauli import random_pauli_set

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_PR3.json"
#: --quick writes here instead, so a CI smoke run can never clobber
#: the committed full-size trajectory file.
QUICK_OUT_PATH = REPO_ROOT / "BENCH_PR3.quick.json"

#: (name, n strings, n qubits) — the last row is the acceptance
#: headline: 10k strings over 50 qubits.
CASES = [
    ("small", 2_000, 16),
    ("medium", 5_000, 30),
    ("headline_10k", 10_000, 50),
]
QUICK_CASES = CASES[:1]


def run_config(pauli_set, params: PicassoParams, seed: int, repeats: int = 2) -> dict:
    """Best-of-``repeats`` end-to-end timing (identical seeded runs, so
    the fastest repeat is the least noise-polluted measurement)."""
    total = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        r = Picasso(params=params, seed=seed).color(pauli_set)
        elapsed = time.perf_counter() - t0
        if elapsed < total:
            total, result = elapsed, r
    phases = result.phase_times()
    return {
        "total_s": round(total, 4),
        "assign_s": round(phases["assignment"], 4),
        "conflict_build_s": round(phases["conflict_graph"], 4),
        "conflict_color_s": round(phases["conflict_coloring"], 4),
        "n_colors": int(result.n_colors),
        "n_iterations": result.n_iterations,
        "max_conflict_edges": int(result.max_conflict_edges),
        "colors": result.colors,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes only (CI smoke); skips the 10k headline case",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="pool size for the tiled-parallel rows (default 4, the "
        "acceptance configuration)",
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    cases = QUICK_CASES if args.quick else CASES
    report = {
        "benchmark": (
            "execution backends: tiled serial vs persistent pool "
            "(pickled vs shm gather) vs gather engine"
        ),
        "n_workers": args.workers,
        "host_cpu_count": cpu_count,
        "cases": [],
    }
    if cpu_count < args.workers:
        report["core_ceiling_note"] = (
            f"host exposes {cpu_count} core(s) < {args.workers} workers: "
            "parallel rows are bounded by the core count and mainly "
            "demonstrate bit-identical correctness plus dispatch/gather "
            "overhead (the shm-vs-pickle delta is still meaningful — it "
            "measures communication, not compute); re-run on a "
            "multi-core host for the throughput numbers"
        )
    for name, n, nq in cases:
        pauli_set = random_pauli_set(n, nq, seed=0)
        tiled = run_config(pauli_set, PicassoParams(engine="tiled"), args.seed)
        tiled_par = run_config(
            pauli_set,
            PicassoParams(engine="tiled", n_workers=args.workers),
            args.seed,
        )
        tiled_shm = run_config(
            pauli_set,
            PicassoParams(
                engine="tiled", n_workers=args.workers, shm_gather=True
            ),
            args.seed,
        )
        gather = run_config(pauli_set, PicassoParams(engine="pairs"), args.seed)
        identical = bool(
            np.array_equal(tiled["colors"], gather["colors"])
            and np.array_equal(tiled["colors"], tiled_par["colors"])
            and np.array_equal(tiled["colors"], tiled_shm["colors"])
        )
        for row in (tiled, tiled_par, tiled_shm, gather):
            row.pop("colors")
        engine_speedup = gather["total_s"] / max(tiled["total_s"], 1e-9)
        workers_build_speedup = tiled["conflict_build_s"] / max(
            tiled_par["conflict_build_s"], 1e-9
        )
        workers_total_speedup = tiled["total_s"] / max(tiled_par["total_s"], 1e-9)
        # The ISSUE 3 headline: pickled result pipe vs zero-copy shared
        # region, same pool size, same kernels.
        shm_gather_build_speedup = tiled_par["conflict_build_s"] / max(
            tiled_shm["conflict_build_s"], 1e-9
        )
        row = {
            "name": name,
            "n_strings": n,
            "n_qubits": nq,
            "tiled": tiled,
            "tiled_parallel": tiled_par,
            "tiled_parallel_shm": tiled_shm,
            "gather": gather,
            "engine_speedup": round(engine_speedup, 2),
            "workers_build_speedup": round(workers_build_speedup, 2),
            "workers_total_speedup": round(workers_total_speedup, 2),
            "shm_gather_build_speedup": round(shm_gather_build_speedup, 2),
            "identical_colorings": identical,
        }
        report["cases"].append(row)
        print(
            f"{name:<14} n={n:>6} tiled={tiled['total_s']:>8.2f}s "
            f"tiled(x{args.workers}w)={tiled_par['total_s']:>8.2f}s "
            f"shm(x{args.workers}w)={tiled_shm['total_s']:>8.2f}s "
            f"gather={gather['total_s']:>8.2f}s "
            f"engine={engine_speedup:.2f}x "
            f"workers_build={workers_build_speedup:.2f}x "
            f"shm_build={shm_gather_build_speedup:.2f}x "
            f"identical={identical}"
        )
        if not identical:
            print("ERROR: backends diverged", file=sys.stderr)
            return 1

    out_path = QUICK_OUT_PATH if args.quick else OUT_PATH
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
