"""Perf-trajectory entry point: tiled vs gather, phase by phase.

Runs ``Picasso.color`` end to end on random Pauli sets with both pair
sweep engines (``tiled`` = block-broadcast kernels + bitset Algorithm 2,
``pairs`` = the legacy gather kernels + Python-set Algorithm 2),
asserts the colorings are identical, and writes ``BENCH_PR1.json`` at
the repo root with elapsed seconds per phase for each engine.  The JSON
seeds the performance trajectory: later PRs append ``BENCH_PR<N>.json``
files so regressions are visible in review.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py           # incl. 10k headline
    PYTHONPATH=src python benchmarks/run_bench.py --quick   # small sizes only
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core import Picasso, PicassoParams
from repro.pauli import random_pauli_set

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_PR1.json"
#: --quick writes here instead, so a CI smoke run can never clobber
#: the committed full-size trajectory file.
QUICK_OUT_PATH = REPO_ROOT / "BENCH_PR1.quick.json"

#: (name, n strings, n qubits) — the last row is the acceptance
#: headline: 10k strings over 50 qubits.
CASES = [
    ("small", 2_000, 16),
    ("medium", 5_000, 30),
    ("headline_10k", 10_000, 50),
]
QUICK_CASES = CASES[:1]


def run_engine(pauli_set, engine: str, seed: int, repeats: int = 2) -> dict:
    """Best-of-``repeats`` end-to-end timing (identical seeded runs, so
    the fastest repeat is the least noise-polluted measurement)."""
    total = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        r = Picasso(params=PicassoParams(engine=engine), seed=seed).color(
            pauli_set
        )
        elapsed = time.perf_counter() - t0
        if elapsed < total:
            total, result = elapsed, r
    phases = result.phase_times()
    return {
        "total_s": round(total, 4),
        "assign_s": round(phases["assignment"], 4),
        "conflict_build_s": round(phases["conflict_graph"], 4),
        "conflict_color_s": round(phases["conflict_coloring"], 4),
        "n_colors": int(result.n_colors),
        "n_iterations": result.n_iterations,
        "max_conflict_edges": int(result.max_conflict_edges),
        "colors": result.colors,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes only (CI smoke); skips the 10k headline case",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    cases = QUICK_CASES if args.quick else CASES
    report = {"benchmark": "tiled-vs-gather end-to-end", "cases": []}
    for name, n, nq in cases:
        pauli_set = random_pauli_set(n, nq, seed=0)
        tiled = run_engine(pauli_set, "tiled", args.seed)
        gather = run_engine(pauli_set, "pairs", args.seed)
        identical = bool(np.array_equal(tiled.pop("colors"), gather.pop("colors")))
        speedup = gather["total_s"] / max(tiled["total_s"], 1e-9)
        row = {
            "name": name,
            "n_strings": n,
            "n_qubits": nq,
            "tiled": tiled,
            "gather": gather,
            "speedup": round(speedup, 2),
            "identical_colorings": identical,
        }
        report["cases"].append(row)
        print(
            f"{name:<14} n={n:>6} tiled={tiled['total_s']:>8.2f}s "
            f"gather={gather['total_s']:>8.2f}s speedup={speedup:.2f}x "
            f"identical={identical}"
        )
        if not identical:
            print("ERROR: engines diverged", file=sys.stderr)
            return 1

    out_path = QUICK_OUT_PATH if args.quick else OUT_PATH
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
