"""Perf-trajectory entry point: engines, backends, gathers and coloring.

Runs ``Picasso.color`` end to end on random Pauli sets across the axes
grown so far:

- **pair-sweep engine** — ``tiled`` block-broadcast kernels vs the
  legacy ``pairs`` gather kernels;
- **execution backend / gather** — serial, a ``--workers``-sized
  persistent pool with the pickled result gather, and the same pool
  with the zero-copy shared-memory gather;
- **coloring engine** — the serial bitset Algorithm 2
  (``greedy-dynamic``) vs the round-synchronous ``parallel-list``
  engine (``--color-engine`` picks any registry engine for these rows),
  both as ``color_serial`` (in-process rounds) and ``color_pool``
  (rounds dispatched over the worker pool, sweep *and* color sharing
  one persistent pool via channelled payload tokens);
- **distributed backend** (new) — the same run sharded over socket
  worker agents (:mod:`repro.distributed`): ``--hosts`` names running
  agents, otherwise a loopback :class:`~repro.distributed.local.
  LocalCluster` of ``--cluster-shards`` agents is spawned for the row.
  On one box this measures transport overhead, not speedup (strips
  still contend for the same cores) — the row exists to keep the
  cross-host dispatch on the perf trajectory and to assert the
  bit-identity contract end to end.

Each case records a per-phase breakdown (assign / conflict build /
conflict color wall-time) for the serial and parallel coloring engines
plus the measured **serial-fraction reduction**: after PRs 1–3
parallelized the build, Algorithm 2 was the dominant serial fraction of
an iteration; the breakdown shows how much of it the parallel engine
removes.  Backend identity is asserted per engine — every backend and
gather builds bit-identical conflict CSR, and the round-synchronous
coloring is partition-independent, so colorings must match exactly for
a given seed *within* an engine.  Across engines the group count may
differ (lowest-bit speculative picks trade a few percent of quality for
round-parallelism); the delta is recorded, not hidden.

- **checkpointing** — the serial tiled run with an every-iteration
  snapshot (``checkpoint_dir`` set, ``checkpoint_every=1``, the worst
  case) against the same run with checkpointing off; the
  ``checkpoint_overhead_pct`` metric is the acceptance number (<= 5%
  on the 10k headline) and the checkpointed run participates in the
  bit-identity assertion, since a snapshot that perturbed the
  trajectory would defeat its purpose.

- **fused iterate** (new) — every row above now runs the fused
  pipeline (worker-side edge sweep, streamed CSR assembly); a
  ``tiled_unfused`` row keeps the classic iterate on the trajectory.
  ``fused_speedup`` is classic/fused wall time and
  ``dispatcher_serial_fraction`` shows the dispatcher-side
  O(|Ec|) edge sweep going from a measured fraction of the classic
  iteration to exactly zero in the fused one (the sweep happens on
  the workers, per strip).  The unfused colorings join the
  bit-identity assertion: fusion is a pure dataflow change.

- **kernel backend** (new) — when the numba runtime imports, a
  ``tiled_numba`` row runs the same serial tiled iterate with the
  compiled kernel backend (``PicassoParams(kernel_backend="numba")``)
  and joins the bit-identity assertion; ``compiled_kernel_speedup`` is
  the numpy/numba ratio of the conflict-build (sweep) phase.  Per-
  kernel ns/word microbenchmarks live in ``bench_kernels.py``.

- **telemetry** (new) — a probe pass re-runs the last case with
  telemetry enabled and records the headline counter totals (transport
  bytes over the cluster row, pool install delta hit-rate, shm region
  reuse) plus the merged Prometheus snapshot as an artifact next to
  the report; a microbenchmark of the disabled no-op hooks asserts the
  default-off path adds < 2% to the headline wall time.

Elapsed seconds land in ``BENCH_PR<next>.json`` at the repo root,
where ``<next>`` is one past the newest committed trajectory file; the
JSON files form the performance trajectory (``BENCH_PR1..9.json`` hold
the earlier axes — the sequence has gaps where a PR shipped no perf
change), so regressions are visible in review.

The parallel rows record ``host_cpu_count``; on hosts with fewer cores
than ``--workers`` the speedup is bounded by the core count (a
single-core box demonstrates bit-identical correctness plus
dispatch/communication deltas, not parallel speedup) and the report
says so explicitly.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py               # incl. 10k headline
    PYTHONPATH=src python benchmarks/run_bench.py --workers 4
    PYTHONPATH=src python benchmarks/run_bench.py --quick       # small sizes only
    PYTHONPATH=src python benchmarks/run_bench.py --color-engine sets
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

import numpy as np

from repro import telemetry
from repro.coloring.engine import available_engines
from repro.core import Picasso, PicassoParams
from repro.device.backends import available_backends
from repro.pauli import random_pauli_set

_BENCH_DIR = pathlib.Path(__file__).resolve().parent
if str(_BENCH_DIR) not in sys.path:  # direct `python benchmarks/...` run
    sys.path.insert(0, str(_BENCH_DIR))
from check_regression import (  # noqa: E402
    newest_pr_number,
    next_pr_number,
    quick_report_path,
)

REPO_ROOT = _BENCH_DIR.parent


def out_path(quick: bool) -> pathlib.Path:
    """Report destination, numbered off the committed trajectory.

    A full run writes the *next* trajectory file at the repo root
    (newest committed + 1 — the number this PR will commit under);
    ``--quick`` writes under the ignored results directory, named for
    the newest *committed* file (the baseline the CI gate compares it
    against), so a CI smoke run can never land an artifact in the tree
    or clobber the committed full-size trajectory.  Both derivations
    tolerate gaps in the PR sequence (there is no ``BENCH_PR8.json``).
    """
    if quick:
        return quick_report_path(REPO_ROOT)
    return REPO_ROOT / f"BENCH_PR{next_pr_number(REPO_ROOT)}.json"


def telemetry_snapshot_path(quick: bool) -> pathlib.Path:
    """The Prometheus-text artifact written next to the quick report
    (CI uploads it alongside the bench JSON)."""
    k = newest_pr_number(REPO_ROOT) if quick else next_pr_number(REPO_ROOT)
    suffix = ".quick.telemetry.prom" if quick else ".telemetry.prom"
    return REPO_ROOT / "benchmarks" / "results" / f"BENCH_PR{k}{suffix}"

#: (name, n strings, n qubits) — the last row is the acceptance
#: headline: 10k strings over 50 qubits.
CASES = [
    ("small", 2_000, 16),
    ("medium", 5_000, 30),
    ("headline_10k", 10_000, 50),
]
QUICK_CASES = CASES[:1]


def run_config(pauli_set, params: PicassoParams, seed: int, repeats: int = 2) -> dict:
    """Best-of-``repeats`` end-to-end timing (identical seeded runs, so
    the fastest repeat is the least noise-polluted measurement)."""
    total = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        r = Picasso(params=params, seed=seed).color(pauli_set)
        elapsed = time.perf_counter() - t0
        if elapsed < total:
            total, result = elapsed, r
    phases = result.phase_times()
    return {
        "total_s": round(total, 4),
        "assign_s": round(phases["assignment"], 4),
        "conflict_build_s": round(phases["conflict_graph"], 4),
        "conflict_color_s": round(phases["conflict_coloring"], 4),
        "sweep_s": round(phases["sweep"], 4),
        "assemble_s": round(phases["assemble"], 4),
        "edge_sweep_s": round(phases["edge_sweep"], 4),
        "fused": bool(result.iterations and result.iterations[0].fused),
        "n_colors": int(result.n_colors),
        "n_iterations": result.n_iterations,
        "color_engine": result.engine,
        "color_rounds": int(result.stats.get("color_rounds", 0)),
        "max_conflict_edges": int(result.max_conflict_edges),
        "colors": result.colors,
    }


def _counter(snap: dict, name: str) -> float:
    return float(snap["counters"].get(name, 0.0))


def telemetry_probe(pauli_set, hosts: str, workers: int, seed: int) -> tuple[dict, dict]:
    """Enabled re-run of one case on the pooled-shm and cluster
    backends: headline counter totals plus the merged snapshot.

    Runs after every timing measurement (the enabled path is not the
    one being timed) and leaves telemetry disabled behind it.
    """
    telemetry.reset()
    telemetry.enable(True)
    try:
        Picasso(
            params=PicassoParams(
                engine="tiled", n_workers=workers, shm_gather=True,
                telemetry=True,
            ),
            seed=seed,
        ).color(pauli_set)
        Picasso(
            params=PicassoParams(engine="tiled", hosts=hosts, telemetry=True),
            seed=seed,
        ).color(pauli_set)
        snap = telemetry.snapshot()
    finally:
        telemetry.enable(False)
        telemetry.reset()
    delta = _counter(snap, "pool.install.delta")
    full = _counter(snap, "pool.install.full")
    reuse = _counter(snap, "shm.region.reuse")
    create = _counter(snap, "shm.region.create")
    totals = {
        "transport_bytes_sent": int(_counter(snap, "transport.bytes_sent")),
        "transport_bytes_recv": int(_counter(snap, "transport.bytes_recv")),
        "install_delta_hit_rate": round(delta / max(delta + full, 1.0), 4),
        "shm_region_reuse_rate": round(reuse / max(reuse + create, 1.0), 4),
        "span_events": len(snap["events"]),
    }
    return totals, snap


def disabled_overhead_pct(headline_total_s: float, snap: dict) -> tuple[float, float]:
    """Cost of the default-off telemetry hooks on the headline row.

    Microbenchmarks one disabled no-op hook call, scales it by the hook
    call volume the *enabled* probe actually recorded (spans enter
    through three calls; each counter whose value is a count fired once
    per unit; byte totals share their call sites' frame/region
    counters; histogram observations carry their own count), and
    returns ``(pct_of_headline, ns_per_call)``.
    """
    assert not telemetry.enabled()
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        telemetry.count("bench.noop")
    per_call = (time.perf_counter() - t0) / n
    ops = 3.0 * len(snap["events"])
    for key, val in snap["counters"].items():
        if "bytes" not in key:
            ops += val
    # Byte totals fire one hook per frame / region alongside these.
    ops += _counter(snap, "transport.frames_sent")
    ops += _counter(snap, "transport.frames_recv")
    ops += _counter(snap, "shm.region.reuse") + _counter(snap, "shm.region.create")
    for hist in snap["hists"].values():
        ops += hist.get("count", 0.0)
    pct = 100.0 * per_call * ops / max(headline_total_s, 1e-9)
    return round(pct, 4), round(per_call * 1e9, 1)


def phase_breakdown(row: dict) -> dict:
    """Build-vs-color wall-time split of one config row, including the
    dispatcher-side edge-sweep bucket — identically zero in fused rows
    (the sweep runs worker-side, folded into ``build_s``)."""
    total = max(row["total_s"], 1e-9)
    return {
        "build_s": row["conflict_build_s"],
        "color_s": row["conflict_color_s"],
        "dispatcher_edge_sweep_s": row["edge_sweep_s"],
        "build_fraction": round(row["conflict_build_s"] / total, 4),
        "color_fraction": round(row["conflict_color_s"] / total, 4),
        "dispatcher_serial_fraction": round(row["edge_sweep_s"] / total, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes only (CI smoke); skips the 10k headline case",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="pool size for the parallel rows (default 4, the "
        "acceptance configuration)",
    )
    parser.add_argument(
        "--color-engine",
        default="parallel-list",
        dest="color_engine",
        choices=list(available_engines()),
        help="registry engine for the parallel-coloring rows "
        "(default parallel-list)",
    )
    parser.add_argument(
        "--hosts",
        default=None,
        metavar="HOST:PORT,...",
        help="running worker agents for the distributed row; when "
        "omitted, a loopback LocalCluster of --cluster-shards agents "
        "is spawned for the run",
    )
    parser.add_argument(
        "--cluster-shards",
        type=int,
        default=2,
        metavar="N",
        help="loopback agents for the distributed row when --hosts is "
        "not given (default 2, the CI configuration)",
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    cases = QUICK_CASES if args.quick else CASES
    # PR 9 axis: the compiled kernel backend, present only where its
    # runtime imports (the CI numba leg; a plain host records "numpy").
    kernel_backend = "numba" if "numba" in available_backends() else "numpy"
    report = {
        "benchmark": (
            "fused worker-swept iterate vs the classic dispatcher-swept "
            "one, distributed socket-sharded sweep+coloring vs the "
            f"single-host axes: greedy-dynamic vs {args.color_engine} "
            "coloring, plus the PR 1-3 backend/gather rows"
        ),
        "n_workers": args.workers,
        "color_engine": args.color_engine,
        "kernel_backend": kernel_backend,
        "host_cpu_count": cpu_count,
        "cases": [],
    }
    # Distributed row substrate: running agents (--hosts) or a loopback
    # cluster spawned for the run.  Agents are daemon processes, so an
    # aborted bench cannot leak them past interpreter exit.
    import contextlib

    stack = contextlib.ExitStack()
    if args.hosts:
        hosts = args.hosts
        report["hosts"] = hosts
    else:
        from repro.distributed import LocalCluster

        cluster = stack.enter_context(LocalCluster(args.cluster_shards))
        hosts = ",".join(cluster.hosts)
        report["hosts"] = f"loopback x{args.cluster_shards}"
    if cpu_count < args.workers:
        report["core_ceiling_note"] = (
            f"host exposes {cpu_count} core(s) < {args.workers} workers: "
            "parallel rows are bounded by the core count and mainly "
            "demonstrate bit-identical correctness plus dispatch/gather "
            "overhead; the color-phase rows still measure the vectorized "
            "round-synchronous engine against the per-vertex greedy loop "
            "(an algorithmic, not core-count, effect); re-run on a "
            "multi-core host for the throughput numbers"
        )
    # One exit seam for the loopback agents: whatever the case loop
    # does — finish, assert-divergence return, or raise — the cluster
    # is torn down here, not at each exit site.
    try:
        return _run_cases(args, report, hosts, cases, kernel_backend)
    finally:
        stack.close()


def _run_cases(args, report, hosts, cases, kernel_backend) -> int:
    """The per-case measurement loop (cluster lifetime owned by main)."""
    for name, n, nq in cases:
        pauli_set = random_pauli_set(n, nq, seed=0)
        # PR 1-3 axes (greedy-dynamic coloring throughout).  The rows
        # run the PR 7 fused iterate (the default); tiled_unfused keeps
        # the classic dispatcher-swept iterate on the trajectory.
        tiled = run_config(pauli_set, PicassoParams(engine="tiled"), args.seed)
        tiled_unfused = run_config(
            pauli_set, PicassoParams(engine="tiled", fused=False), args.seed
        )
        tiled_par = run_config(
            pauli_set,
            PicassoParams(engine="tiled", n_workers=args.workers),
            args.seed,
        )
        tiled_shm = run_config(
            pauli_set,
            PicassoParams(
                engine="tiled", n_workers=args.workers, shm_gather=True
            ),
            args.seed,
        )
        gather = run_config(pauli_set, PicassoParams(engine="pairs"), args.seed)
        # PR 9 axis: the serial tiled iterate on the compiled kernel
        # backend.  On hosts without numba this row is skipped (not run
        # on the silent numpy fallback, which would report a fake 1.0x).
        tiled_compiled = None
        if kernel_backend != "numpy":
            tiled_compiled = run_config(
                pauli_set,
                PicassoParams(engine="tiled", kernel_backend=kernel_backend),
                args.seed,
            )
        # PR 4 axis: the selected coloring engine, rounds in-process vs
        # dispatched over the shared persistent pool (with shm gather —
        # the full parallel iterate: sweep and color on one pool).
        color_serial = run_config(
            pauli_set,
            PicassoParams(engine="tiled", color_engine=args.color_engine),
            args.seed,
        )
        color_pool = run_config(
            pauli_set,
            PicassoParams(
                engine="tiled",
                color_engine=args.color_engine,
                n_workers=args.workers,
                shm_gather=True,
            ),
            args.seed,
        )
        # PR 5 axis: the full run sharded over socket worker agents —
        # sweep strips dealt round-robin across hosts, greedy-dynamic
        # coloring — must land on the same colors as every single-host
        # backend.
        cluster_row = run_config(
            pauli_set,
            PicassoParams(engine="tiled", hosts=hosts),
            args.seed,
        )
        # PR 6 axis: the same serial run snapshotting every iteration —
        # the worst-case checkpoint cadence.  The overhead metric is
        # the acceptance number; the colors join the identity assert.
        with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as ckpt_dir:
            checkpointed = run_config(
                pauli_set,
                PicassoParams(
                    engine="tiled",
                    checkpoint_dir=ckpt_dir,
                    checkpoint_every=1,
                ),
                args.seed,
            )
        identical = bool(
            np.array_equal(tiled["colors"], tiled_unfused["colors"])
            and np.array_equal(tiled["colors"], gather["colors"])
            and np.array_equal(tiled["colors"], tiled_par["colors"])
            and np.array_equal(tiled["colors"], tiled_shm["colors"])
            and np.array_equal(tiled["colors"], cluster_row["colors"])
            and np.array_equal(tiled["colors"], checkpointed["colors"])
            and (
                tiled_compiled is None
                or np.array_equal(tiled["colors"], tiled_compiled["colors"])
            )
        )
        # Within the coloring engine, serial and pooled rounds must be
        # bit-identical (round-synchronous rounds are partition-
        # independent) — the "same number of groups +-0" contract of
        # the engine across backends.
        identical_color = bool(
            np.array_equal(color_serial["colors"], color_pool["colors"])
        )
        same_n_groups = bool(
            color_serial["n_colors"] == color_pool["n_colors"]
        )
        for row in (
            tiled, tiled_unfused, tiled_par, tiled_shm, gather,
            color_serial, color_pool, cluster_row, checkpointed,
            *([tiled_compiled] if tiled_compiled else []),
        ):
            row.pop("colors")
        checkpoint_overhead_pct = round(
            100.0
            * (checkpointed["total_s"] - tiled["total_s"])
            / max(tiled["total_s"], 1e-9),
            2,
        )
        engine_speedup = gather["total_s"] / max(tiled["total_s"], 1e-9)
        workers_build_speedup = tiled["conflict_build_s"] / max(
            tiled_par["conflict_build_s"], 1e-9
        )
        shm_gather_build_speedup = tiled_par["conflict_build_s"] / max(
            tiled_shm["conflict_build_s"], 1e-9
        )
        # The ISSUE 4 headline: how much of the iteration's serial
        # fraction the parallel coloring engine removes.
        greedy_phases = phase_breakdown(tiled)
        parallel_phases = phase_breakdown(color_serial)
        color_speedup = tiled["conflict_color_s"] / max(
            color_serial["conflict_color_s"], 1e-9
        )
        serial_fraction_reduction = round(
            greedy_phases["color_fraction"] - parallel_phases["color_fraction"], 4
        )
        quality_delta_pct = round(
            100.0
            * (color_serial["n_colors"] - tiled["n_colors"])
            / max(tiled["n_colors"], 1),
            2,
        )
        # The PR 7 headlines: classic/fused wall-time ratio, and the
        # dispatcher-side O(|Ec|) edge sweep as a fraction of the run —
        # measurable in the classic iterate, identically zero fused.
        # The PR 9 headline: numpy/compiled ratio of the conflict-build
        # (sweep) phase — None where no compiled runtime imports.
        compiled_kernel_speedup = (
            round(
                tiled["conflict_build_s"]
                / max(tiled_compiled["conflict_build_s"], 1e-9),
                2,
            )
            if tiled_compiled is not None
            else None
        )
        fused_speedup = tiled_unfused["total_s"] / max(tiled["total_s"], 1e-9)
        unfused_phases = phase_breakdown(tiled_unfused)
        dispatcher_serial_fraction = {
            "classic": unfused_phases["dispatcher_serial_fraction"],
            "fused": phase_breakdown(tiled)["dispatcher_serial_fraction"],
        }
        row = {
            "name": name,
            "n_strings": n,
            "n_qubits": nq,
            "tiled": tiled,
            "tiled_unfused": tiled_unfused,
            "tiled_parallel": tiled_par,
            "tiled_parallel_shm": tiled_shm,
            "gather": gather,
            "color_serial": color_serial,
            "color_pool": color_pool,
            "cluster": cluster_row,
            "checkpointed": checkpointed,
            **(
                {f"tiled_{kernel_backend}": tiled_compiled}
                if tiled_compiled is not None
                else {}
            ),
            # Distinct keys: --color-engine greedy-dynamic is a valid
            # choice and must not collapse the dict onto the baseline.
            "phase_breakdown": {
                "baseline_greedy_dynamic": greedy_phases,
                "classic_unfused": unfused_phases,
                f"color_{args.color_engine}": parallel_phases,
            },
            "fused_speedup": round(fused_speedup, 2),
            "compiled_kernel_speedup": compiled_kernel_speedup,
            "dispatcher_serial_fraction": dispatcher_serial_fraction,
            "engine_speedup": round(engine_speedup, 2),
            "workers_build_speedup": round(workers_build_speedup, 2),
            "shm_gather_build_speedup": round(shm_gather_build_speedup, 2),
            # >1 needs real extra hosts; on one box this is transport
            # overhead and the number to watch is how small it stays.
            "cluster_build_speedup": round(
                tiled["conflict_build_s"]
                / max(cluster_row["conflict_build_s"], 1e-9),
                2,
            ),
            "color_phase_speedup": round(color_speedup, 2),
            # Worst-case cadence (every iteration); acceptance wants
            # <= 5% on the headline.  Can dip negative within run-to-
            # run noise when snapshots are cheap.
            "checkpoint_overhead_pct": checkpoint_overhead_pct,
            "serial_fraction_reduction": serial_fraction_reduction,
            "color_quality_delta_pct": quality_delta_pct,
            "identical_colorings": identical,
            "identical_colorings_color_engine": identical_color,
            "same_n_groups_across_backends": same_n_groups,
        }
        report["cases"].append(row)
        print(
            f"{name:<14} n={n:>6} tiled={tiled['total_s']:>8.2f}s "
            f"{args.color_engine}={color_serial['total_s']:>8.2f}s "
            f"cluster={cluster_row['total_s']:>8.2f}s "
            f"color_phase {tiled['conflict_color_s']:.2f}s->"
            f"{color_serial['conflict_color_s']:.2f}s "
            f"({color_speedup:.2f}x, serial fraction "
            f"{greedy_phases['color_fraction']:.2f}->"
            f"{parallel_phases['color_fraction']:.2f}) "
            f"ckpt_overhead {checkpoint_overhead_pct:+.1f}% "
            f"quality {quality_delta_pct:+.1f}% "
            f"fused {fused_speedup:.2f}x (edge-sweep fraction "
            f"{dispatcher_serial_fraction['classic']:.3f}->"
            f"{dispatcher_serial_fraction['fused']:.3f}) "
            + (
                f"compiled({kernel_backend}) {compiled_kernel_speedup:.2f}x "
                if compiled_kernel_speedup is not None
                else ""
            )
            + f"identical={identical}/{identical_color}"
        )
        if not identical or not identical_color or not same_n_groups:
            print("ERROR: backends diverged", file=sys.stderr)
            return 1

    # PR 10: telemetry probe (enabled re-run of the last case) plus the
    # disabled-by-default overhead assertion against the headline row.
    name, n, nq = cases[-1]
    pauli_set = random_pauli_set(n, nq, seed=0)
    totals, snap = telemetry_probe(pauli_set, hosts, args.workers, args.seed)
    headline_total = report["cases"][-1]["tiled"]["total_s"]
    overhead_pct, ns_per_call = disabled_overhead_pct(headline_total, snap)
    report["telemetry"] = {
        "probe_case": name,
        **totals,
        "disabled_ns_per_call": ns_per_call,
        "disabled_overhead_pct": overhead_pct,
    }
    print(
        f"telemetry probe ({name}): transport "
        f"{totals['transport_bytes_sent']:,}B out / "
        f"{totals['transport_bytes_recv']:,}B in, install delta hit-rate "
        f"{totals['install_delta_hit_rate']:.2f}, shm reuse "
        f"{totals['shm_region_reuse_rate']:.2f}, disabled overhead "
        f"{overhead_pct:.4f}% ({ns_per_call:.0f} ns/hook)"
    )
    if overhead_pct >= 2.0:
        print(
            f"ERROR: disabled telemetry overhead {overhead_pct:.2f}% "
            "exceeds the 2% acceptance bound on the headline row",
            file=sys.stderr,
        )
        return 1

    # Resolve both destinations before the report lands: a full run
    # advances the trajectory, which would shift a late derivation of
    # the snapshot name to the *next* PR number.
    dest = out_path(args.quick)
    snap_path = telemetry_snapshot_path(args.quick)
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {dest}")
    snap_path.parent.mkdir(parents=True, exist_ok=True)
    telemetry.write_prometheus(snap_path, snap)
    print(f"wrote {snap_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
