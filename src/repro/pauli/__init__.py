"""Pauli-string substrate (paper §II, §IV-A).

Representations and vectorized anticommutation kernels for sets of
Pauli strings — the input domain of the Picasso coloring problem.
"""

from repro.pauli.anticommute import (
    AnticommuteOracle,
    anticommute_matrix,
    anticommute_pairs_chars,
    anticommute_pairs_iooh,
    anticommute_pairs_symplectic,
)
from repro.pauli.encoding import (
    CHAR_TO_CODE,
    CODE_TO_CHAR,
    I,
    X,
    Y,
    Z,
    chars_to_strings,
    decode_iooh,
    encode_iooh,
    encode_symplectic,
    strings_to_chars,
    weight,
)
from repro.pauli.grouping import (
    GroupingResult,
    PauliRelationSource,
    group_pauli_set,
    qubitwise_commute_pairs,
    validate_grouping,
)
from repro.pauli.io import load_pauli_set, save_pauli_set
from repro.pauli.random import random_pauli_set, random_pauli_set_density
from repro.pauli.strings import PauliSet

__all__ = [
    "AnticommuteOracle",
    "anticommute_matrix",
    "anticommute_pairs_chars",
    "anticommute_pairs_iooh",
    "anticommute_pairs_symplectic",
    "CHAR_TO_CODE",
    "CODE_TO_CHAR",
    "I",
    "X",
    "Y",
    "Z",
    "chars_to_strings",
    "decode_iooh",
    "encode_iooh",
    "encode_symplectic",
    "strings_to_chars",
    "weight",
    "GroupingResult",
    "PauliRelationSource",
    "group_pauli_set",
    "qubitwise_commute_pairs",
    "validate_grouping",
    "load_pauli_set",
    "save_pauli_set",
    "random_pauli_set",
    "random_pauli_set_density",
    "PauliSet",
]
