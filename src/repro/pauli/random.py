"""Random Pauli-set generators.

Used for property-based testing and for synthetic scaling studies where
a chemistry-shaped workload is unnecessary.  ``random_pauli_set``
produces uniform strings; ``random_pauli_set_density`` tunes the
identity fraction, which controls the anticommutation-graph density
(more identities -> sparser anticommutation -> denser complement).
"""

from __future__ import annotations

import numpy as np

from repro.pauli.strings import PauliSet
from repro.util.rng import as_generator


def random_pauli_set(
    n: int,
    n_qubits: int,
    seed: int | np.random.Generator | None = None,
    unique: bool = True,
    name: str = "",
) -> PauliSet:
    """Uniformly random Pauli strings.

    Parameters
    ----------
    n:
        Number of strings requested.
    n_qubits:
        String length.
    unique:
        If True (default), sample until ``n`` distinct strings are
        found; raises if the space ``4**n_qubits`` is too small.
    """
    rng = as_generator(seed)
    if unique and n > 4**n_qubits:
        raise ValueError(
            f"cannot draw {n} unique strings over {n_qubits} qubits "
            f"(only {4 ** n_qubits} exist)"
        )
    chars = rng.integers(0, 4, size=(n, n_qubits), dtype=np.uint8)
    if unique:
        chars = np.unique(chars, axis=0)
        attempts = 0
        while chars.shape[0] < n:
            extra = rng.integers(
                0, 4, size=(2 * (n - chars.shape[0]), n_qubits), dtype=np.uint8
            )
            chars = np.unique(np.vstack([chars, extra]), axis=0)
            attempts += 1
            if attempts > 64:  # pragma: no cover - astronomically unlikely
                raise RuntimeError("failed to draw unique Pauli strings")
        pick = rng.permutation(chars.shape[0])[:n]
        chars = chars[pick]
    return PauliSet(chars, name=name or f"random_{n}x{n_qubits}")


def random_pauli_set_density(
    n: int,
    n_qubits: int,
    identity_fraction: float = 0.25,
    seed: int | np.random.Generator | None = None,
    name: str = "",
) -> PauliSet:
    """Random strings with a controlled per-position identity fraction.

    ``identity_fraction`` is the probability that a position holds
    ``I``; the rest is split evenly across X/Y/Z.  Raising it sparsifies
    the anticommutation graph (fewer overlapping non-identity supports),
    which densifies the complement graph the coloring runs on —
    mirroring the ~50%-dense regime the paper targets.
    """
    if not 0.0 <= identity_fraction < 1.0:
        raise ValueError("identity_fraction must be in [0, 1)")
    rng = as_generator(seed)
    p = np.array(
        [identity_fraction]
        + [(1.0 - identity_fraction) / 3.0] * 3
    )
    chars = rng.choice(4, size=(n, n_qubits), p=p).astype(np.uint8)
    return PauliSet(chars, name=name or f"random_dens_{n}x{n_qubits}")
