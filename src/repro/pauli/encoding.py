"""Pauli-string encodings.

Three interchangeable representations (all tested against each other):

``chars``
    ``(n, N)`` uint8 matrix of code points ``I=0, X=1, Y=2, Z=3``.  This
    is the baseline "character comparison" representation the paper
    measures the encoded kernel against (§IV-A reports 1.4–2.0x).

``iooh`` (inverse one-hot, the paper's scheme)
    Each character maps to 3 bits — ``X=110, Y=101, Z=011, I=000`` —
    packed LSB-first into uint64 words.  For two encoded strings ``a``
    and ``b``, ``popcount(a & b)`` is odd iff the strings anticommute:
    two *distinct* non-identity Paulis share exactly one set bit
    (odd contribution), equal non-identity Paulis share two (even), and
    any pair involving ``I`` shares zero (even).

``symplectic``
    The standard (x|z) binary representation: ``X=(1,0), Y=(1,1),
    Z=(0,1), I=(0,0)``.  Strings anticommute iff
    ``parity(x_a & z_b) != parity(z_a & x_b)``.  Used as an independent
    cross-check oracle and by the Bravyi–Kitaev transform.
"""

from __future__ import annotations

import numpy as np

from repro.util.bits import packbits_rows

#: Character code points.
I, X, Y, Z = 0, 1, 2, 3

CHAR_TO_CODE = {"I": I, "X": X, "Y": Y, "Z": Z}
CODE_TO_CHAR = np.array(["I", "X", "Y", "Z"])

#: 3-bit inverse one-hot codes, indexed by char code (I, X, Y, Z).
#: Bit order is LSB-first within each 3-bit field.
_IOOH_BITS = np.array(
    [
        [0, 0, 0],  # I -> 000
        [0, 1, 1],  # X -> 110 (MSB-first in the paper) = bits (0,1,1) LSB-first
        [1, 0, 1],  # Y -> 101 -> (1,0,1)
        [1, 1, 0],  # Z -> 011 -> (1,1,0)
    ],
    dtype=np.uint8,
)

#: Symplectic (x, z) bits indexed by char code.
_SYMPL_BITS = np.array(
    [
        [0, 0],  # I
        [1, 0],  # X
        [1, 1],  # Y
        [0, 1],  # Z
    ],
    dtype=np.uint8,
)


def strings_to_chars(strings: list[str] | tuple[str, ...]) -> np.ndarray:
    """Parse text Pauli strings (e.g. ``"XYZI"``) into a char-code matrix.

    All strings must share the same length.  Raises ``ValueError`` on
    unknown characters or ragged input.
    """
    if not strings:
        return np.zeros((0, 0), dtype=np.uint8)
    n_qubits = len(strings[0])
    out = np.empty((len(strings), n_qubits), dtype=np.uint8)
    for r, s in enumerate(strings):
        if len(s) != n_qubits:
            raise ValueError(
                f"ragged Pauli set: string {r} has length {len(s)}, expected {n_qubits}"
            )
        for c, ch in enumerate(s):
            try:
                out[r, c] = CHAR_TO_CODE[ch]
            except KeyError:
                raise ValueError(f"invalid Pauli character {ch!r} in {s!r}") from None
    return out


def chars_to_strings(chars: np.ndarray) -> list[str]:
    """Render a char-code matrix back to text strings."""
    chars = np.asarray(chars, dtype=np.uint8)
    return ["".join(row) for row in CODE_TO_CHAR[chars]]


def encode_iooh(chars: np.ndarray) -> np.ndarray:
    """Encode char codes into the packed 3-bit inverse one-hot form.

    Parameters
    ----------
    chars:
        ``(n, N)`` uint8 matrix of char codes.

    Returns
    -------
    numpy.ndarray
        ``(n, ceil(3N / 64))`` uint64 packed matrix.
    """
    chars = np.asarray(chars, dtype=np.uint8)
    n, nq = chars.shape
    bits = _IOOH_BITS[chars].reshape(n, 3 * nq)
    return packbits_rows(bits, width=3 * nq)


def encode_symplectic(chars: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode char codes into packed symplectic ``(x, z)`` bitsets.

    Returns
    -------
    (x, z):
        Two ``(n, ceil(N / 64))`` uint64 packed matrices.
    """
    chars = np.asarray(chars, dtype=np.uint8)
    n, nq = chars.shape
    xz = _SYMPL_BITS[chars]
    x = packbits_rows(xz[:, :, 0], width=nq)
    z = packbits_rows(xz[:, :, 1], width=nq)
    return x, z


def decode_iooh(packed: np.ndarray, n_qubits: int) -> np.ndarray:
    """Invert :func:`encode_iooh` back to char codes (for tests/IO)."""
    packed = np.asarray(packed, dtype=np.uint64)
    n = packed.shape[0]
    nbits = 3 * n_qubits
    cols = np.arange(nbits, dtype=np.int64)
    bits = (packed[:, cols >> 6] >> (cols & 63).astype(np.uint64)) & np.uint64(1)
    trip = bits.reshape(n, n_qubits, 3).astype(np.uint8)
    # Match each 3-bit field against the code table.
    out = np.zeros((n, n_qubits), dtype=np.uint8)
    for code in (X, Y, Z):
        match = (trip == _IOOH_BITS[code]).all(axis=2)
        out[match] = code
    return out


def weight(chars: np.ndarray) -> np.ndarray:
    """Pauli weight (number of non-identity positions) per string."""
    return (np.asarray(chars) != I).sum(axis=1).astype(np.int64)
