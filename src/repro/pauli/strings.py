"""The :class:`PauliSet` container.

A ``PauliSet`` is the library's unit of input: an ordered collection of
``n`` Pauli strings over ``N`` qubits with optional real/complex
coefficients (the Hamiltonian weights ``p_j`` of Eq. 1).  It owns the
char-code matrix and lazily builds encoded forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pauli.anticommute import AnticommuteOracle
from repro.pauli.encoding import (
    chars_to_strings,
    encode_iooh,
    strings_to_chars,
    weight,
)


@dataclass
class PauliSet:
    """An ordered set of Pauli strings (the vertex set of the paper's graph).

    Attributes
    ----------
    chars:
        ``(n, N)`` uint8 matrix of char codes ``I=0, X=1, Y=2, Z=3``.
    coefficients:
        Optional length-``n`` complex vector of term coefficients.
    name:
        Optional dataset label (e.g. ``"H4_2D_631g"``).
    """

    chars: np.ndarray
    coefficients: np.ndarray | None = None
    name: str = ""
    _oracle: AnticommuteOracle | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.chars = np.ascontiguousarray(self.chars, dtype=np.uint8)
        if self.chars.ndim != 2:
            raise ValueError(f"chars must be 2-D, got shape {self.chars.shape}")
        if self.coefficients is not None:
            self.coefficients = np.asarray(self.coefficients)
            if self.coefficients.shape != (self.chars.shape[0],):
                raise ValueError(
                    "coefficients length "
                    f"{self.coefficients.shape} does not match {self.chars.shape[0]} strings"
                )

    # -- constructors -------------------------------------------------

    @classmethod
    def from_strings(
        cls,
        strings: list[str] | tuple[str, ...],
        coefficients: np.ndarray | None = None,
        name: str = "",
    ) -> "PauliSet":
        """Build from text strings such as ``["XYZI", "IIXX"]``."""
        return cls(strings_to_chars(list(strings)), coefficients, name)

    # -- basic properties ---------------------------------------------

    @property
    def n(self) -> int:
        """Number of Pauli strings (graph vertices)."""
        return self.chars.shape[0]

    @property
    def n_qubits(self) -> int:
        """String length ``N`` (number of qubits)."""
        return self.chars.shape[1]

    def __len__(self) -> int:
        return self.n

    def to_strings(self) -> list[str]:
        """Render back to a list of text strings."""
        return chars_to_strings(self.chars)

    def weights(self) -> np.ndarray:
        """Pauli weight (non-identity count) per string."""
        return weight(self.chars)

    # -- derived structures -------------------------------------------

    def oracle(self, kernel: str = "iooh") -> AnticommuteOracle:
        """Anticommutation oracle over this set (cached for ``iooh``)."""
        if kernel == "iooh":
            if self._oracle is None:
                self._oracle = AnticommuteOracle(self.chars, kernel="iooh")
            return self._oracle
        return AnticommuteOracle(self.chars, kernel=kernel)

    def encoded(self) -> np.ndarray:
        """Packed 3-bit inverse one-hot encoding of the whole set."""
        return encode_iooh(self.chars)

    def subset(self, idx: np.ndarray) -> "PauliSet":
        """A new :class:`PauliSet` restricted to row indices ``idx``.

        Used by the Picasso driver to induce the uncolored subproblem of
        each iteration (Alg. 1, line 11).
        """
        idx = np.asarray(idx, dtype=np.int64)
        coeffs = self.coefficients[idx] if self.coefficients is not None else None
        return PauliSet(self.chars[idx], coeffs, self.name)

    def dedupe(self) -> "PauliSet":
        """Remove duplicate strings (keeping first occurrence, summing
        coefficients of duplicates)."""
        _, first_idx, inverse = np.unique(
            self.chars, axis=0, return_index=True, return_inverse=True
        )
        order = np.sort(first_idx)
        coeffs = None
        if self.coefficients is not None:
            sums = np.zeros(len(first_idx), dtype=self.coefficients.dtype)
            np.add.at(sums, inverse, self.coefficients)
            # Map the unique-order sums back to first-occurrence order.
            rank_of_sorted = np.argsort(np.argsort(first_idx))
            coeffs = sums[np.argsort(first_idx)]
            del rank_of_sorted
        return PauliSet(self.chars[order], coeffs, self.name)

    def drop_identity(self) -> "PauliSet":
        """Remove all-identity strings (they commute with everything and
        are handled separately by the application)."""
        keep = self.weights() > 0
        coeffs = self.coefficients[keep] if self.coefficients is not None else None
        return PauliSet(self.chars[keep], coeffs, self.name)

    @property
    def nbytes(self) -> int:
        """Bytes of the raw char matrix (memory accounting)."""
        return self.chars.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"PauliSet(n={self.n}, n_qubits={self.n_qubits}{label})"
