"""Text IO for Pauli sets.

Format: one term per line, ``<string> [coefficient]``, ``#`` comments.
Coefficients accept Python complex literals (e.g. ``(0.5+0.25j)``).
This matches the shape of OpenFermion's ``QubitOperator`` dumps closely
enough that real exports can be ingested with a one-line conversion.
"""

from __future__ import annotations

import os

import numpy as np

from repro.pauli.strings import PauliSet


def _write_pauli_text(pauli_set: PauliSet, fh) -> None:
    """Serialize into an open text handle (the format body)."""
    strings = pauli_set.to_strings()
    if pauli_set.name:
        fh.write(f"# name: {pauli_set.name}\n")
    fh.write(f"# n={pauli_set.n} n_qubits={pauli_set.n_qubits}\n")
    if pauli_set.coefficients is None:
        fh.write("\n".join(strings))
        fh.write("\n")
    else:
        for s, c in zip(strings, pauli_set.coefficients):
            fh.write(f"{s} {complex(c)}\n")


def save_pauli_set(pauli_set: PauliSet, path: str | os.PathLike) -> None:
    """Write a :class:`PauliSet` to a text file, atomically.

    The text is written to a temp file in the target directory, fsynced
    and ``os.replace``d into place — a run killed mid-write leaves
    either the previous file untouched or the new one complete, never a
    truncated Pauli set that a later run would silently load short.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(
        directory, f".tmp-{os.getpid()}-{os.path.basename(path)}"
    )
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            _write_pauli_text(pauli_set, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_pauli_set(path: str | os.PathLike) -> PauliSet:
    """Read a :class:`PauliSet` from a text file written by
    :func:`save_pauli_set` (or any file in the same format)."""
    strings: list[str] = []
    coeffs: list[complex] = []
    name = ""
    saw_coeff = False
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# name:"):
                    name = line.split(":", 1)[1].strip()
                continue
            parts = line.split(None, 1)
            strings.append(parts[0])
            if len(parts) == 2:
                saw_coeff = True
                coeffs.append(complex(parts[1]))
            else:
                coeffs.append(1.0 + 0.0j)
    coefficients = np.array(coeffs) if saw_coeff else None
    return PauliSet.from_strings(strings, coefficients, name=name)
