"""Anticommutation kernels.

Two Pauli strings ``P_i``, ``P_j`` anticommute iff the number of qubit
positions where they hold *distinct non-identity* Paulis is odd (Eq. 5
extended to strings, §IV-A).  The paper's graph ``G`` connects
anticommuting pairs; the coloring runs on the *complement* ``G'`` whose
edges are the commuting (non-anticommuting) distinct pairs.

Kernels, from slowest to fastest (the §IV-A ablation):

- :func:`anticommute_pairs_chars` — direct per-character comparison of
  the uint8 code matrix (the baseline the paper reports 1.4–2.0x over).
- :func:`anticommute_pairs_iooh` — the paper's 3-bit inverse one-hot
  encoding: ``AND`` + popcount-parity on packed uint64 words.
- :func:`anticommute_pairs_symplectic` — the standard symplectic form
  used as an independent oracle.

All kernels take parallel index arrays ``(i, j)`` and return a uint8
mask where 1 means *anticommute*.
"""

from __future__ import annotations

import numpy as np

from repro.pauli.encoding import I, encode_iooh, encode_symplectic
from repro.util.bits import parity_block, parity_rows


def anticommute_pairs_chars(
    chars: np.ndarray, i: np.ndarray, j: np.ndarray
) -> np.ndarray:
    """Character-comparison kernel (baseline).

    Counts positions where ``chars[i]`` and ``chars[j]`` differ and
    neither is identity; anticommute iff the count is odd.
    """
    a = chars[i]
    b = chars[j]
    mism = (a != b) & (a != I) & (b != I)
    return (mism.sum(axis=1) & 1).astype(np.uint8)


def anticommute_pairs_iooh(
    packed: np.ndarray, i: np.ndarray, j: np.ndarray
) -> np.ndarray:
    """Inverse one-hot kernel: ``parity(popcount(a & b))`` (the paper's)."""
    return parity_rows(packed[i] & packed[j])


def anticommute_pairs_symplectic(
    x: np.ndarray, z: np.ndarray, i: np.ndarray, j: np.ndarray
) -> np.ndarray:
    """Symplectic-inner-product kernel (independent oracle).

    ``P_i`` and ``P_j`` anticommute iff
    ``parity(x_i & z_j) XOR parity(z_i & x_j)`` is 1.
    """
    p1 = parity_rows(x[i] & z[j])
    p2 = parity_rows(z[i] & x[j])
    return (p1 ^ p2).astype(np.uint8)


def anticommute_block_chars(
    chars: np.ndarray, r0: int, r1: int, c0: int, c1: int
) -> np.ndarray:
    """Character-comparison kernel over a ``(rows, cols)`` block.

    Loops over qubit columns so scratch stays at one block-sized
    temporary; the mismatch count accumulates mod 256, which preserves
    the parity that decides anticommutation.
    """
    a = chars[r0:r1]
    b = chars[c0:c1]
    out = np.zeros((r1 - r0, c1 - c0), dtype=np.uint8)
    for q in range(chars.shape[1]):
        ca = a[:, q, None]
        cb = b[None, :, q]
        out += (ca != cb) & (ca != I) & (cb != I)
    out &= np.uint8(1)
    return out


def anticommute_block_iooh(
    packed: np.ndarray, r0: int, r1: int, c0: int, c1: int
) -> np.ndarray:
    """Inverse one-hot kernel over a block: the tiled form of
    :func:`anticommute_pairs_iooh` — word broadcast, no row gather."""
    return parity_block(packed[r0:r1], packed[c0:c1])


def anticommute_block_symplectic(
    x: np.ndarray, z: np.ndarray, r0: int, r1: int, c0: int, c1: int
) -> np.ndarray:
    """Symplectic kernel over a block:
    ``parity(x_i & z_j) XOR parity(z_i & x_j)`` broadcast-tiled."""
    return parity_block(x[r0:r1], z[c0:c1]) ^ parity_block(z[r0:r1], x[c0:c1])


def anticommute_matrix(chars: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` boolean anticommutation matrix (small inputs only).

    Convenience for tests and tiny examples such as the H2 walkthrough
    of Fig. 1; quadratic memory, so guarded against large ``n``.
    """
    chars = np.asarray(chars, dtype=np.uint8)
    n = chars.shape[0]
    if n > 20_000:
        raise MemoryError(
            f"anticommute_matrix materializes an {n}x{n} matrix; "
            "use the pairwise kernels for large sets"
        )
    packed = encode_iooh(chars)
    ii, jj = np.triu_indices(n, k=1)
    mask = anticommute_pairs_iooh(packed, ii, jj)
    out = np.zeros((n, n), dtype=bool)
    out[ii, jj] = mask.astype(bool)
    out |= out.T
    return out


class AnticommuteOracle:
    """Batched anticommutation oracle over a fixed Pauli set.

    Pre-encodes the set once and answers pairwise queries with the
    chosen kernel.  This is the object the streaming conflict-graph
    construction consults instead of an explicit edge list — the heart
    of the paper's memory saving: the dense graph is never stored.

    Parameters
    ----------
    chars:
        ``(n, N)`` char-code matrix.
    kernel:
        ``"iooh"`` (default, the paper's), ``"chars"`` or ``"symplectic"``.
    """

    def __init__(self, chars: np.ndarray, kernel: str = "iooh") -> None:
        self.chars = np.asarray(chars, dtype=np.uint8)
        self.n = self.chars.shape[0]
        self.n_qubits = self.chars.shape[1] if self.chars.ndim == 2 else 0
        self.kernel = kernel
        self._blk_tmp: np.ndarray | None = None
        self._blk_out: np.ndarray | None = None
        if kernel == "iooh":
            self._packed = encode_iooh(self.chars)
        elif kernel == "symplectic":
            self._x, self._z = encode_symplectic(self.chars)
        elif kernel == "chars":
            pass
        else:
            raise ValueError(f"unknown kernel {kernel!r}")

    def _block_scratch(self, rows: int, cols: int):
        """Persistent per-oracle block buffers (grown on demand) so a
        tile sweep's edge-block queries stay off the allocator."""
        if (
            self._blk_tmp is None
            or self._blk_tmp.shape[0] < rows
            or self._blk_tmp.shape[1] < cols
        ):
            r = max(rows, 0 if self._blk_tmp is None else self._blk_tmp.shape[0])
            c = max(cols, 0 if self._blk_tmp is None else self._blk_tmp.shape[1])
            self._blk_tmp = np.empty((r, c), dtype=np.uint64)
            self._blk_out = np.empty((r, c), dtype=np.uint8)
        return self._blk_tmp[:rows, :cols], self._blk_out[:rows, :cols]

    def anticommute(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """uint8 mask, 1 where ``P_i`` and ``P_j`` anticommute."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        if self.kernel == "iooh":
            return anticommute_pairs_iooh(self._packed, i, j)
        if self.kernel == "symplectic":
            return anticommute_pairs_symplectic(self._x, self._z, i, j)
        return anticommute_pairs_chars(self.chars, i, j)

    def commute_edges(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """uint8 mask, 1 where ``(i, j)`` is an edge of the *complement*
        graph ``G'`` (distinct strings that do **not** anticommute)."""
        return (1 - self.anticommute(i, j)).astype(np.uint8)

    def anticommute_block(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """Block form of :meth:`anticommute`: uint8 ``(r1-r0, c1-c0)``
        matrix for the row-range x col-range pair block, computed as a
        word broadcast without gathering any rows (tiled engine).

        The returned array may view a reused internal buffer — consume
        it before the next ``*_block`` call on this oracle.
        """
        if self.kernel == "iooh":
            tmp, out = self._block_scratch(r1 - r0, c1 - c0)
            return parity_block(self._packed[r0:r1], self._packed[c0:c1], tmp, out)
        if self.kernel == "symplectic":
            return anticommute_block_symplectic(self._x, self._z, r0, r1, c0, c1)
        return anticommute_block_chars(self.chars, r0, r1, c0, c1)

    def commute_block(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """Block form of :meth:`commute_edges`.  Diagonal entries
        (``i == j``) are meaningless here; tiled consumers mask the
        strict upper triangle before use."""
        return (1 - self.anticommute_block(r0, r1, c0, c1)).astype(np.uint8)

    @property
    def nbytes(self) -> int:
        """Bytes held by the encoded representation (memory accounting)."""
        total = self.chars.nbytes
        if self.kernel == "iooh":
            total += self._packed.nbytes
        elif self.kernel == "symplectic":
            total += self._x.nbytes + self._z.nbytes
        return total
