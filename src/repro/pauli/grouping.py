"""Pauli-grouping relations beyond anticommutation (paper §III).

The measurement-reduction literature groups Pauli strings under three
compatibility relations, all reducible to clique partitioning:

- ``"anticommute"`` — unitary partitioning (the paper's target):
  groups are pairwise-*anticommuting* cliques, composing into single
  unitaries (Eq. 2);
- ``"commute"`` — general commutativity (GC, Yen et al.): groups are
  pairwise-commuting, simultaneously diagonalizable by one Clifford;
- ``"qubitwise"`` — qubit-wise commutativity (QWC, Altepeter et al.):
  strings agree or hit identity at *every* position — measurable in a
  single product basis without extra gates.  QWC implies commute.

Each relation induces a compatibility graph whose clique partition we
obtain, exactly as in §II-B, by coloring the *complement* — with the
edges streamed from the encodings, never stored, so all three schemes
run through the same memory-efficient Picasso machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pauli.encoding import I
from repro.pauli.strings import PauliSet

RELATIONS = ("anticommute", "commute", "qubitwise")


def qubitwise_commute_pairs(
    chars: np.ndarray, i: np.ndarray, j: np.ndarray
) -> np.ndarray:
    """uint8 mask: 1 where strings ``i`` and ``j`` qubit-wise commute
    (every position equal, or at least one identity)."""
    a = chars[i]
    b = chars[j]
    ok = (a == b) | (a == I) | (b == I)
    return ok.all(axis=1).astype(np.uint8)


class PauliRelationSource:
    """Edge source for clique-partitioning any of the three relations.

    The graph *colored* is the complement of the compatibility graph:
    an edge means "these two strings must NOT share a group".
    Implements the source protocol consumed by
    :meth:`repro.core.Picasso.color_source`.
    """

    def __init__(self, pauli_set: PauliSet, relation: str = "anticommute") -> None:
        if relation not in RELATIONS:
            raise ValueError(
                f"unknown relation {relation!r}; expected one of {RELATIONS}"
            )
        self.pauli_set = pauli_set
        self.relation = relation
        self._oracle = pauli_set.oracle()

    @property
    def n(self) -> int:
        return self.pauli_set.n

    def compatible(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """uint8 mask: 1 where the pair may share a group."""
        if self.relation == "anticommute":
            return self._oracle.anticommute(i, j)
        if self.relation == "commute":
            return self._oracle.commute_edges(i, j)
        return qubitwise_commute_pairs(self.pauli_set.chars, i, j)

    def edge_mask(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Edges of the graph to color = incompatible pairs."""
        return (1 - self.compatible(i, j)).astype(np.uint8)

    def subset(self, idx: np.ndarray) -> "PauliRelationSource":
        return PauliRelationSource(self.pauli_set.subset(idx), self.relation)

    @property
    def nbytes(self) -> int:
        return self.pauli_set.nbytes + self._oracle.nbytes

    def validate(self, colors: np.ndarray, sample_pairs: int | None = None) -> bool:
        from repro.util.chunking import iter_pair_chunks

        colors = np.asarray(colors)
        if (colors < 0).any():
            return False
        for i, j in iter_pair_chunks(self.n, 1 << 18):
            bad = (colors[i] == colors[j]) & self.edge_mask(i, j).astype(bool)
            if bad.any():
                return False
        return True


@dataclass
class GroupingResult:
    """Outcome of :func:`group_pauli_set` for one relation."""

    relation: str
    groups: list[np.ndarray]
    n_colors: int

    @property
    def reduction(self) -> float:
        """Input strings per group (the §III "1/10 to 1/6" metric)."""
        total = sum(len(g) for g in self.groups)
        return total / max(self.n_colors, 1)


def group_pauli_set(
    pauli_set: PauliSet,
    relation: str = "anticommute",
    params=None,
    seed: int | np.random.Generator | None = None,
) -> GroupingResult:
    """Clique-partition a Pauli set under any of the three relations
    using Picasso on the streamed complement.

    Returns the groups (index arrays) with pairwise compatibility
    guaranteed by the coloring.
    """
    from repro.core.picasso import Picasso

    source = PauliRelationSource(pauli_set, relation)
    result = Picasso(params=params, seed=seed).color_source(source)
    groups = result.color_classes()
    return GroupingResult(
        relation=relation, groups=list(groups), n_colors=result.n_colors
    )


def validate_grouping(pauli_set: PauliSet, grouping: GroupingResult) -> bool:
    """Exhaustively re-check pairwise compatibility inside every group."""
    source = PauliRelationSource(pauli_set, grouping.relation)
    seen = 0
    for g in grouping.groups:
        seen += len(g)
        if len(g) < 2:
            continue
        ii, jj = np.triu_indices(len(g), k=1)
        if not source.compatible(g[ii], g[jj]).all():
            return False
    return seen == pauli_set.n
