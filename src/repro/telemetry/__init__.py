"""First-class observability: metrics, trace spans, exporters.

``repro.telemetry`` is the one place in the library allowed to touch
the monotonic clock directly (the ``telemetry-clock`` lint rule).  It
depends on nothing else in ``repro``, so every layer — core, parallel,
distributed, resilience, device — can instrument itself without
layering cycles.

Disabled (the default) the hooks are single-bool no-ops; enabled (via
``PicassoParams(telemetry=True)``, ``REPRO_TELEMETRY=1``, or the CLI
``--trace-json`` / ``--metrics-out`` flags) each process accumulates
into a local registry and worker/agent deltas are merged into the
dispatcher's view on the existing finalize channels.  See
:mod:`repro.telemetry.core` for the model and
:mod:`repro.telemetry.export` for the exporter formats.
"""

from repro.telemetry.core import (
    ENV_VAR,
    Registry,
    absorb_snapshots,
    clock,
    combine_agent_snapshot,
    count,
    drain_worker_snapshot,
    enable,
    enabled,
    env_enabled,
    gauge_max,
    is_snapshot,
    is_worker_process,
    mark_worker_process,
    observe,
    registry,
    reset,
    snapshot,
    span,
)
from repro.telemetry.export import (
    prometheus_lines,
    trace_lines,
    write_prometheus,
    write_trace_jsonl,
)

__all__ = [
    "ENV_VAR",
    "Registry",
    "absorb_snapshots",
    "clock",
    "combine_agent_snapshot",
    "count",
    "drain_worker_snapshot",
    "enable",
    "enabled",
    "env_enabled",
    "gauge_max",
    "is_snapshot",
    "is_worker_process",
    "mark_worker_process",
    "observe",
    "registry",
    "reset",
    "snapshot",
    "span",
    "prometheus_lines",
    "trace_lines",
    "write_prometheus",
    "write_trace_jsonl",
]
