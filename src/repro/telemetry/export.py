"""Telemetry exporters: JSON-lines event trace and Prometheus text.

Both exporters render a registry *snapshot* (the merged dispatcher
view, or any shipped worker delta), so they can run after the
executors are gone — the CLI calls them once per command, the bench
script once per probe run.

**JSON-lines trace** (``--trace-json``): one JSON object per line.
Span lines carry ``{"type": "span", "name", "proc", "id", "parent",
"t0", "dur_s", "attrs"}`` where ``proc`` is ``"dispatcher"`` for the
driving process and a slot path (``"w0"``, ``"s1"``, ``"s1:w0"``) for
pool workers / cluster agents; ``parent`` links to another span's
``id`` within the same ``proc``.  Counter / gauge / histogram summary
lines follow the spans, so one file is the complete merged view.

**Prometheus text** (``--metrics-out``): the classic exposition
format — ``# TYPE`` headers plus ``repro_<name>{label="v"} value``
sample lines, series names derived from the dotted metric names by
replacing non-alphanumerics with underscores.  Span events are
summarized as per-name duration histograms (count/sum) rather than
emitted individually.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any

__all__ = ["write_trace_jsonl", "write_prometheus", "trace_lines", "prometheus_lines"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """``name{k=v,...}`` series key back into name + label dict."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def _prom_series(name: str, labels: dict[str, str]) -> str:
    base = "repro_" + _NAME_RE.sub("_", name)
    if not labels:
        return base
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{base}{{{inner}}}"


def trace_lines(snapshot: dict[str, Any]) -> list[str]:
    """The JSON-lines trace of a snapshot, spans first."""
    lines = []
    for ev in snapshot.get("events", ()):
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "name": ev["name"],
                    "proc": ev.get("proc") or "dispatcher",
                    "id": ev["id"],
                    "parent": ev.get("parent"),
                    "t0": ev["t0"],
                    "dur_s": ev["dur_s"],
                    "attrs": ev.get("attrs", {}),
                },
                sort_keys=True,
            )
        )
    for kind in ("counters", "gauges"):
        for key in sorted(snapshot.get(kind, {})):
            name, labels = _split_key(key)
            lines.append(
                json.dumps(
                    {
                        "type": kind[:-1],
                        "name": name,
                        "labels": labels,
                        "value": snapshot[kind][key],
                    },
                    sort_keys=True,
                )
            )
    for key in sorted(snapshot.get("hists", {})):
        name, labels = _split_key(key)
        lines.append(
            json.dumps(
                {"type": "histogram", "name": name, "labels": labels,
                 **snapshot["hists"][key]},
                sort_keys=True,
            )
        )
    return lines


def write_trace_jsonl(path: str | pathlib.Path, snapshot: dict[str, Any]) -> None:
    """Write the merged JSON-lines event trace of a snapshot."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("\n".join(trace_lines(snapshot)) + "\n")


def prometheus_lines(snapshot: dict[str, Any]) -> list[str]:
    """Prometheus exposition lines for a snapshot."""
    lines: list[str] = []

    def emit(kind: str, series: dict[str, float], prom_type: str) -> None:
        seen_types: set[str] = set()
        for key in sorted(series):
            name, labels = _split_key(key)
            base = "repro_" + _NAME_RE.sub("_", name)
            if base not in seen_types:
                seen_types.add(base)
                lines.append(f"# TYPE {base} {prom_type}")
            lines.append(f"{_prom_series(name, labels)} {series[key]:g}")

    emit("counters", snapshot.get("counters", {}), "counter")
    emit("gauges", snapshot.get("gauges", {}), "gauge")
    for key in sorted(snapshot.get("hists", {})):
        name, labels = _split_key(key)
        base = "repro_" + _NAME_RE.sub("_", name)
        agg = snapshot["hists"][key]
        lines.append(f"# TYPE {base} summary")
        for stat in ("count", "sum", "min", "max"):
            lines.append(
                f"{_prom_series(name + '_' + stat, labels)} {agg[stat]:g}"
            )
    # Span durations as per-name summaries: the trace file carries the
    # individual events; the snapshot format carries the aggregate.
    spans: dict[str, dict[str, float]] = {}
    for ev in snapshot.get("events", ()):
        agg = spans.setdefault(ev["name"], {"count": 0, "sum": 0.0})
        agg["count"] += 1
        agg["sum"] += ev["dur_s"]
    for name in sorted(spans):
        base = "repro_span_" + _NAME_RE.sub("_", name)
        lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count {spans[name]['count']:g}")
        lines.append(f"{base}_sum {spans[name]['sum']:g}")
    return lines


def write_prometheus(path: str | pathlib.Path, snapshot: dict[str, Any]) -> None:
    """Write the Prometheus-style text snapshot."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("\n".join(prometheus_lines(snapshot)) + "\n")
