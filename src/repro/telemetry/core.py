"""Process-local metrics registry, trace spans, and the telemetry clock.

This is the observability substrate for the whole executor stack: a
thread-safe registry of **counters**, **gauges** (max-merged),
**histograms** (count/sum/min/max) and **span** timers, with a
zero-cost disabled default — every instrumentation entry point checks
one module-level bool before touching the registry, so the default
(telemetry off) path costs a single global read per hook.

Cross-process collection is delta-based: pool workers and cluster
agents accumulate into their own process-local registry and ship the
accumulated delta back on the channels the executors already use (the
pool finalize broadcast, the distributed finalize RPC).  The
dispatcher absorbs each snapshot under a deterministic per-slot prefix
(``w0``, ``w1``, … for pool workers, ``s0``, ``s1``, … for cluster
shards — nested as ``s1:w0`` for hierarchical agents), so one run
produces one merged view regardless of how many processes it spanned.

Two invariants keep telemetry *neutral*:

- no instrumentation ever feeds a value back into the pipeline — the
  registry is write-only from the algorithm's point of view, so runs
  with telemetry on and off are bit-identical per seed;
- all timing goes through :func:`clock` (the wrapped monotonic
  ``time.perf_counter``), never the wall clock — enforced by the
  ``telemetry-clock`` reprolint rule, which makes this module the only
  place in the library allowed to touch ``time`` timers directly.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any

__all__ = [
    "ENV_VAR",
    "clock",
    "enabled",
    "enable",
    "env_enabled",
    "count",
    "gauge_max",
    "observe",
    "span",
    "snapshot",
    "reset",
    "drain_worker_snapshot",
    "absorb_snapshots",
    "combine_agent_snapshot",
    "mark_worker_process",
    "is_worker_process",
    "is_snapshot",
    "Registry",
]

#: Environment knob: a truthy value enables telemetry when
#: ``PicassoParams(telemetry=None)`` leaves the choice open (mirrors
#: ``REPRO_FUSED`` / ``REPRO_KERNEL_BACKEND``).
ENV_VAR = "REPRO_TELEMETRY"

_TRUTHY = frozenset({"1", "true", "on", "yes"})

#: Marker key identifying a registry snapshot dict on the wire, so
#: finalize-channel return values that are *not* telemetry (other
#: teardown returns, plain None) are skipped safely.
_MARKER = "__telemetry__"


def clock() -> float:
    """The one sanctioned monotonic clock (``time.perf_counter``).

    Every span/metric timing in the library goes through this wrapper
    so traces and phase buckets share a single clock source; the
    ``telemetry-clock`` lint rule bans direct ``time.perf_counter()``
    calls outside this package.
    """
    return time.perf_counter()


def _key(name: str, labels: dict[str, Any]) -> str:
    """Flat series key: ``name`` or ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _empty_snapshot() -> dict[str, Any]:
    return {
        _MARKER: True,
        "counters": {},
        "gauges": {},
        "hists": {},
        "events": [],
        "ops": 0,
    }


def is_snapshot(obj: Any) -> bool:
    """Whether a finalize-channel return value is a telemetry snapshot."""
    return isinstance(obj, dict) and bool(obj.get(_MARKER))


def merge_snapshot(
    dst: dict[str, Any], src: dict[str, Any], prefix: str | None = None
) -> None:
    """Merge snapshot ``src`` into ``dst`` in place.

    Counters add, gauges keep the max, histograms combine their
    count/sum/min/max moments.  With a ``prefix``, span events are
    re-homed under it: the event's process label and its span/parent
    ids gain a ``prefix:`` namespace, which keeps ids collision-free
    and parent links intact when many processes merge into one view.
    """
    for k, v in src.get("counters", {}).items():
        dst["counters"][k] = dst["counters"].get(k, 0.0) + v
    for k, v in src.get("gauges", {}).items():
        old = dst["gauges"].get(k)
        dst["gauges"][k] = v if old is None else max(old, v)
    for k, h in src.get("hists", {}).items():
        agg = dst["hists"].get(k)
        if agg is None:
            dst["hists"][k] = dict(h)
        else:
            agg["count"] += h["count"]
            agg["sum"] += h["sum"]
            agg["min"] = min(agg["min"], h["min"])
            agg["max"] = max(agg["max"], h["max"])
    for ev in src.get("events", ()):
        if prefix is None:
            dst["events"].append(dict(ev))
            continue
        proc = ev.get("proc") or ""
        moved = dict(ev)
        moved["proc"] = prefix if not proc else f"{prefix}:{proc}"
        moved["id"] = f"{prefix}:{ev['id']}"
        if ev.get("parent") is not None:
            moved["parent"] = f"{prefix}:{ev['parent']}"
        dst["events"].append(moved)
    dst["ops"] += int(src.get("ops", 0))


class Registry:
    """One process's accumulated metrics and span events.

    All mutation happens under one lock; span nesting (parent ids) is
    tracked per thread so concurrent threads produce independent,
    correctly-parented span stacks.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stacks = threading.local()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.hists: dict[str, dict[str, float]] = {}
        self.events: list[dict[str, Any]] = []
        self.ops = 0

    # -- span-stack bookkeeping (per thread) ---------------------------
    def _stack(self) -> list[Any]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    # -- instrumentation -----------------------------------------------
    def count(self, name: str, value: float, labels: dict[str, Any]) -> None:
        key = _key(name, labels)
        with self._lock:
            self.counters[key] = self.counters.get(key, 0.0) + value
            self.ops += 1

    def gauge_max(self, name: str, value: float, labels: dict[str, Any]) -> None:
        key = _key(name, labels)
        with self._lock:
            old = self.gauges.get(key)
            self.gauges[key] = value if old is None else max(old, value)
            self.ops += 1

    def observe(self, name: str, value: float, labels: dict[str, Any]) -> None:
        key = _key(name, labels)
        with self._lock:
            agg = self.hists.get(key)
            if agg is None:
                self.hists[key] = {
                    "count": 1, "sum": value, "min": value, "max": value,
                }
            else:
                agg["count"] += 1
                agg["sum"] += value
                agg["min"] = min(agg["min"], value)
                agg["max"] = max(agg["max"], value)
            self.ops += 1

    def add_event(self, event: dict[str, Any]) -> None:
        with self._lock:
            self.events.append(event)
            self.ops += 1

    # -- collection ----------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A deep-enough copy of the accumulated state (wire-safe)."""
        with self._lock:
            return {
                _MARKER: True,
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "hists": {k: dict(v) for k, v in self.hists.items()},
                "events": [dict(e) for e in self.events],
                "ops": self.ops,
            }

    def drain(self) -> dict[str, Any]:
        """Snapshot and reset — the per-worker delta shipped home."""
        with self._lock:
            snap = {
                _MARKER: True,
                "counters": self.counters,
                "gauges": self.gauges,
                "hists": self.hists,
                "events": self.events,
                "ops": self.ops,
            }
            self.counters = {}
            self.gauges = {}
            self.hists = {}
            self.events = []
            self.ops = 0
            return snap

    def reset(self) -> None:
        self.drain()

    def absorb(self, snap: dict[str, Any], prefix: str | None) -> None:
        """Merge a shipped snapshot into this registry under ``prefix``."""
        with self._lock:
            view = {
                "counters": self.counters,
                "gauges": self.gauges,
                "hists": self.hists,
                "events": self.events,
                "ops": 0,
            }
            merge_snapshot(view, snap, prefix)
            self.ops += int(snap.get("ops", 0))


class _Span:
    """Context manager recording one span event on exit."""

    __slots__ = ("_reg", "_name", "_attrs", "_id", "_parent", "_t0")

    def __init__(self, reg: Registry, name: str, attrs: dict[str, Any]) -> None:
        self._reg = reg
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        stack = self._reg._stack()
        self._parent = stack[-1] if stack else None
        self._id = next(self._reg._ids)
        stack.append(self._id)
        self._t0 = clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        dur = clock() - self._t0
        stack = self._reg._stack()
        if stack and stack[-1] == self._id:
            stack.pop()
        self._reg.add_event(
            {
                "name": self._name,
                "proc": "",
                "id": self._id,
                "parent": self._parent,
                "t0": self._t0,
                "dur_s": dur,
                "attrs": self._attrs,
            }
        )
        return False


class _NullSpan:
    """Shared no-op span for the disabled path (no allocation per call)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()

_REGISTRY = Registry()
_ENABLED = False
_IS_WORKER = False


def enabled() -> bool:
    """Whether telemetry is recording in this process."""
    return _ENABLED


def enable(on: bool = True) -> None:
    """Turn recording on/off in this process (the registry is kept)."""
    global _ENABLED
    _ENABLED = bool(on)


def env_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for telemetry."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def registry() -> Registry:
    """This process's registry (the merged view on the dispatcher)."""
    return _REGISTRY


def snapshot() -> dict[str, Any]:
    """Wire-safe copy of the current merged state."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Drop all accumulated state (bench/test isolation seam)."""
    _REGISTRY.reset()


def mark_worker_process() -> None:
    """Flag this process as a worker/agent: its metrics are a *delta*
    shipped home by :func:`drain_worker_snapshot`, not the merged view.
    Called from the pool worker bootstrap and the agent serve loop —
    never from initializers, which also run in-process under the serial
    executor."""
    global _IS_WORKER
    _IS_WORKER = True


def is_worker_process() -> bool:
    return _IS_WORKER


def count(name: str, value: float = 1.0, **labels: Any) -> None:
    """Add to a counter (no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.count(name, value, labels)


def gauge_max(name: str, value: float, **labels: Any) -> None:
    """Record a high-water-mark gauge (max-merged; no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.gauge_max(name, value, labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Add one observation to a histogram (no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.observe(name, value, labels)


def span(name: str, **attrs: Any) -> _Span | _NullSpan:
    """Time a block as a trace span (shared no-op object when disabled)."""
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(_REGISTRY, name, attrs)


def drain_worker_snapshot() -> dict[str, Any] | None:
    """The delta a worker/agent ships on the finalize channel.

    Returns ``None`` (nothing to ship) unless this process is a marked
    worker with telemetry enabled — under the serial executor the
    "worker" is the dispatcher itself and its metrics are already in
    the right registry.
    """
    if not (_ENABLED and _IS_WORKER):
        return None
    return _REGISTRY.drain()


def absorb_snapshots(returns: Any, prefix: str = "w") -> None:
    """Dispatcher-side merge of finalize-channel return values.

    ``returns`` is whatever the executor's finalize broadcast yielded —
    one entry per worker slot, in slot order, so the merge is
    deterministic.  Non-snapshot entries (None, other teardown returns)
    are skipped.
    """
    if not _ENABLED or not returns:
        return
    for i, snap in enumerate(returns):
        if is_snapshot(snap):
            _REGISTRY.absorb(snap, f"{prefix}{i}")


def combine_agent_snapshot(inner_returns: Any) -> dict[str, Any] | None:
    """Agent-side fold for hierarchical agents: merge the inner pool's
    worker snapshots with this agent process's own delta into the one
    snapshot the finalize RPC replies with."""
    own = drain_worker_snapshot()
    inner = [s for s in (inner_returns or ()) if is_snapshot(s)]
    if not inner:
        return own
    combined = _empty_snapshot()
    if own is not None:
        merge_snapshot(combined, own)
    for i, snap in enumerate(inner):
        merge_snapshot(combined, snap, f"w{i}")
    return combined
