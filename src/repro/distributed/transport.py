"""Length-prefixed socket transport for multi-host execution.

The wire format is deliberately thin: one *message* is a pickled
Python object (protocol 5) whose NumPy arrays travel **out of band** as
raw buffers — ``pickle`` emits a :class:`pickle.PickleBuffer` per
C-contiguous array instead of copying it into the pickle stream, and
the frame carries those buffers verbatim after the (small) object
pickle.  No msgpack, no base64, no per-element encoding: a strip's hit
arrays or a round's forbidden-word delta cross the socket at memcpy
cost, the same philosophy as the shared-memory gather one node down
the stack (:mod:`repro.parallel.shm`).

Frame layout (all integers big-endian)::

    u32   number of out-of-band buffers  (B)
    u64   pickle byte count              (P)
    P  bytes   object pickle
    B times:
        u64  buffer byte count  (L)
        L bytes  raw buffer

Buffers are received into ``bytearray`` so reconstructed arrays are
writable, matching what a worker gets from the in-band pickling of the
process-pool path.

Every connection starts with a **handshake**: the server sends
``{magic, version, pid, incarnation}``, the client checks both fields
and answers with its own ``{magic, version}``.  A version or magic
mismatch raises :class:`HandshakeError` on whichever side saw it — two
builds of the library can never silently exchange frames.  The
``incarnation`` (fresh per agent process) is how the cluster executor
detects a restarted worker whose payload cache is gone, the socket
analog of :meth:`repro.parallel.executor.PoolExecutor.worker_pids`.

Send/recv are **bounded**: every blocking socket operation runs under a
timeout, reusing the knobs of the single-host pool — installs and
handshakes wait at most ``REPRO_BROADCAST_TIMEOUT_S``
(:data:`repro.parallel.executor.BROADCAST_TIMEOUT_S`), per-result waits
at most ``REPRO_RESULT_TIMEOUT_S``
(:data:`repro.parallel.executor.RESULT_TIMEOUT_S`) — so a peer that
died mid-round surfaces as a :class:`TransportError` within the bound
instead of hanging the dispatcher forever.
"""

from __future__ import annotations

import pickle
import socket
import struct

from repro import telemetry
from repro.parallel.executor import BROADCAST_TIMEOUT_S, RESULT_TIMEOUT_S

__all__ = [
    "PROTOCOL_VERSION",
    "TransportError",
    "HandshakeError",
    "TransportVersionError",
    "Connection",
    "connect",
    "send_msg",
    "recv_msg",
]

#: Bumped whenever the frame layout or the RPC vocabulary changes; the
#: handshake rejects any mismatch.
PROTOCOL_VERSION = 1

#: Frame sentinel — catches a non-repro peer (or a desynced stream)
#: before any pickle bytes are interpreted.
MAGIC = b"RPDX"

_HEADER = struct.Struct("!4sIQ")  # magic, n_buffers, pickle_len
_BUFLEN = struct.Struct("!Q")

#: Bytes per ``socket.recv`` call while draining a frame.
_RECV_CHUNK = 1 << 20


class TransportError(RuntimeError):
    """A socket operation failed or timed out — the peer is gone,
    wedged past its bound, or speaking a different protocol."""


class HandshakeError(TransportError):
    """The peer answered the handshake with the wrong magic/version."""


class TransportVersionError(HandshakeError):
    """The peer is a repro worker agent, but speaks a different
    protocol version — a build-skew error, not a wiring error, so it
    gets its own type (and carries both versions) for callers that want
    to report "upgrade one side" rather than "check your hosts list".
    """

    def __init__(self, peer_version, local_version) -> None:
        super().__init__(
            f"protocol version mismatch: peer speaks {peer_version!r}, "
            f"this build speaks {local_version!r} — upgrade one side"
        )
        self.peer_version = peer_version
        self.local_version = local_version

    def __reduce__(self):
        # Default exception pickling would replay the formatted message
        # into the two-argument constructor; rebuild from the versions.
        return (TransportVersionError, (self.peer_version, self.local_version))


def _recv_exact(sock: socket.socket, n: int) -> bytearray:
    """Read exactly ``n`` bytes (into a mutable buffer) or raise.

    EOF mid-frame means the peer died or closed on us; a socket timeout
    means it exceeded its bound.  Both surface as
    :class:`TransportError` so callers have one failure type to map to
    "recycle the cluster".
    """
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            k = sock.recv_into(view[got:], min(n - got, _RECV_CHUNK))
        except socket.timeout:
            raise TransportError(
                f"socket recv timed out after {sock.gettimeout():.0f}s "
                "— the peer is wedged or died mid-frame"
            ) from None
        except OSError as exc:
            raise TransportError(f"socket recv failed: {exc}") from None
        if k == 0:
            raise TransportError("peer closed the connection mid-frame")
        got += k
    return buf


#: Buffers below this size are coalesced into the control bytes (one
#: syscall beats one memcpy at this scale); larger ones go to the
#: socket directly, zero-copy.
_COALESCE_BYTES = 1 << 16


def send_msg(sock: socket.socket, obj, timeout: float | None = None) -> None:
    """Send one framed message; NumPy buffers go raw, out of band.

    Large buffers are handed to ``sendall`` as-is — the frame never
    concatenates them into a fresh bytes object, so a strip's multi-MB
    hit arrays cross at memcpy cost exactly once (kernel copy), not
    twice.  Small buffers coalesce with the control bytes instead,
    keeping the syscall count low for chatty messages.
    """
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    sock.settimeout(timeout if timeout is not None else BROADCAST_TIMEOUT_S)
    small = bytearray(_HEADER.pack(MAGIC, len(buffers), len(payload)))
    small += payload
    frame_bytes = len(small)
    try:
        for buf in buffers:
            raw = buf.raw()
            frame_bytes += _BUFLEN.size + raw.nbytes
            small += _BUFLEN.pack(raw.nbytes)
            if raw.nbytes >= _COALESCE_BYTES:
                sock.sendall(small)
                small = bytearray()
                sock.sendall(raw)
            else:
                small += raw
        if small:
            sock.sendall(small)
        telemetry.count("transport.frames_sent")
        telemetry.count("transport.bytes_sent", float(frame_bytes))
    except socket.timeout:
        raise TransportError(
            "socket send timed out — the peer stopped draining its socket"
        ) from None
    except OSError as exc:
        raise TransportError(f"socket send failed: {exc}") from None


def recv_msg(sock: socket.socket, timeout: float | None = None):
    """Receive one framed message; out-of-band buffers come back as
    writable ``bytearray``-backed arrays.

    ``timeout=None`` applies the default result bound;
    ``float("inf")`` blocks forever (an idle agent waiting for its next
    RPC — the one legitimate unbounded wait, since nothing is in
    flight).
    """
    bound = RESULT_TIMEOUT_S if timeout is None else timeout
    sock.settimeout(None if bound == float("inf") else bound)
    magic, n_buffers, pickle_len = _HEADER.unpack(
        _recv_exact(sock, _HEADER.size)
    )
    if magic != MAGIC:
        raise TransportError(
            f"bad frame magic {magic!r} — peer is not a repro transport "
            "or the stream desynced"
        )
    payload = _recv_exact(sock, pickle_len)
    frame_bytes = _HEADER.size + pickle_len
    bufs = []
    for _ in range(n_buffers):
        (blen,) = _BUFLEN.unpack(_recv_exact(sock, _BUFLEN.size))
        bufs.append(_recv_exact(sock, blen))
        frame_bytes += _BUFLEN.size + blen
    telemetry.count("transport.frames_recv")
    telemetry.count("transport.bytes_recv", float(frame_bytes))
    return pickle.loads(bytes(payload), buffers=bufs)


class Connection:
    """One framed, handshaken socket to a worker agent.

    Thin object wrapper over :func:`send_msg`/:func:`recv_msg` holding
    the peer identity the handshake reported (``pid``,
    ``incarnation``) — the cluster executor keys its token-validity
    check on the incarnation.
    """

    def __init__(self, sock: socket.socket, peer: dict | None = None) -> None:
        self.sock = sock
        self.peer = peer or {}

    @property
    def incarnation(self) -> str | None:
        """The agent process identity from the handshake (fresh per
        agent start, never reused) — a changed incarnation means the
        worker-side payload caches are gone."""
        return self.peer.get("incarnation")

    def send(self, obj, timeout: float | None = None) -> None:
        send_msg(self.sock, obj, timeout)

    def recv(self, timeout: float | None = None):
        return recv_msg(self.sock, timeout)

    def request(self, obj, timeout: float | None = None):
        """Send one message and wait (bounded) for one reply."""
        self.send(obj, timeout)
        return self.recv(timeout)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close never matters
            pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def server_hello(incarnation: str, capacity: int = 1) -> dict:
    """The greeting an agent sends on every accepted connection.

    ``capacity`` advertises how many local worker processes sit behind
    the agent (1 for the flat agent, ``inner_workers`` for the
    hierarchical one) so the dispatcher's weighted strip deal can size
    this shard's share.  Extra keys are handshake-compatible:
    :func:`check_hello` validates only magic and version, so an old
    client simply ignores the field.
    """
    import os

    return {
        "magic": MAGIC,
        "version": PROTOCOL_VERSION,
        "pid": os.getpid(),
        "incarnation": incarnation,
        "capacity": int(capacity),
    }


def check_hello(hello) -> dict:
    """Validate a handshake message; returns it, raises on mismatch."""
    if not isinstance(hello, dict) or hello.get("magic") != MAGIC:
        raise HandshakeError(f"peer is not a repro worker agent: {hello!r}")
    if hello.get("version") != PROTOCOL_VERSION:
        raise TransportVersionError(hello.get("version"), PROTOCOL_VERSION)
    return hello


def connect(
    host: str, port: int, timeout: float | None = None
) -> Connection:
    """Dial a worker agent and run the client half of the handshake."""
    bound = timeout if timeout is not None else BROADCAST_TIMEOUT_S
    try:
        sock = socket.create_connection((host, port), timeout=bound)
    except OSError as exc:
        raise TransportError(
            f"cannot connect to worker agent {host}:{port}: {exc}"
        ) from None
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        peer = check_hello(recv_msg(sock, bound))
        send_msg(sock, {"magic": MAGIC, "version": PROTOCOL_VERSION}, bound)
    except BaseException:
        sock.close()
        raise
    return Connection(sock, peer)


def parse_hosts(hosts) -> tuple[tuple[str, int], ...]:
    """Normalize a hosts spec to ``((host, port), ...)``.

    Accepts a comma-separated ``"host:port,host:port"`` string (the CLI
    / ``REPRO_HOSTS`` form) or any iterable of ``"host:port"`` strings
    or ``(host, port)`` pairs.
    """
    if isinstance(hosts, str):
        hosts = [h for h in (part.strip() for part in hosts.split(",")) if h]
    out: list[tuple[str, int]] = []
    for h in hosts:
        if isinstance(h, str):
            host, sep, port = h.rpartition(":")
            if not sep or not host:
                raise ValueError(
                    f"host spec {h!r} is not of the form host:port"
                )
            out.append((host, int(port)))
        else:
            host, port = h
            out.append((str(host), int(port)))
    if not out:
        raise ValueError("empty hosts list")
    seen = set()
    for host, port in out:
        if (host, port) in seen:
            raise ValueError(
                f"duplicate host {host}:{port} in hosts list — each entry "
                "is one shard, so a repeated address would double-deal "
                "tasks to the same agent (and double-count it as a worker)"
            )
        seen.add((host, port))
    return tuple(out)
