"""Multi-host sharded execution (paper §VIII's distributed future work).

The single-host execution stack (PRs 2–4) made every sweep and every
coloring round a *(payload install, task list, ordered results)*
triple against the :class:`~repro.parallel.executor.Executor` seam.
This package extends that seam beyond one node:

- :mod:`repro.distributed.transport` — a length-prefixed socket
  protocol: pickled control messages, NumPy buffers raw and out of
  band, versioned handshake, bounded send/recv.
- :mod:`repro.distributed.worker` — the per-host agent serving
  install / imap / finalize RPCs with the *existing* worker task
  functions (``python -m repro.distributed.worker --bind ...``).
- :mod:`repro.distributed.cluster` — :class:`ClusterExecutor`, the
  full ``Executor`` contract over N agents: channelled payload tokens,
  delta installs, incarnation-pinned ``holds_token``, recycle on
  broken broadcasts; results interleave back into task order so
  distributed CSR builds and colorings are bit-identical per seed to
  serial for any shard count.
- :mod:`repro.distributed.local` — :class:`LocalCluster`, N agents on
  loopback for tests/CI, with kill/restart failure injection.

Select it with ``PicassoParams(hosts="hostA:7070,hostB:7070")`` (CLI:
``--hosts``), or ``executor="cluster"`` with the ``REPRO_HOSTS``
environment variable.
"""

from repro.distributed.cluster import ClusterExecutor, make_cluster_executor
from repro.distributed.local import LocalCluster
from repro.distributed.transport import (
    Connection,
    HandshakeError,
    TransportError,
    connect,
    parse_hosts,
)
from repro.distributed.worker import WorkerAgent

__all__ = [
    "ClusterExecutor",
    "make_cluster_executor",
    "LocalCluster",
    "Connection",
    "HandshakeError",
    "TransportError",
    "connect",
    "parse_hosts",
    "WorkerAgent",
]
