"""Worker host agent: serves install/imap/finalize RPCs over the transport.

One agent process runs per host (or per shard).  It owns no algorithm
logic of its own — RPCs name the *existing* worker task functions
(:func:`repro.parallel.pool.init_sweep_worker`,
``_run_tile_strip``, :func:`repro.coloring.parallel_list._pick_strip`,
...) by pickle reference, and the agent just calls them in-process.
Worker-global state therefore behaves exactly as in a
``multiprocessing`` pool worker: the token-cached static payload
(:data:`repro.parallel.pool._STATIC_CACHE`, the palette cache of the
parallel coloring engine) survives between RPCs for as long as the
agent process lives, which is what makes delta installs work across
hosts, and :class:`~repro.parallel.pool.PayloadNotInstalled` travels
back to the dispatcher as itself so the one-shot full-install retry of
:func:`repro.parallel.pool.imap_delta_install` fires unchanged.

RPC vocabulary (one pickled dict per request)::

    {"op": "install",  "fn": f, "payload": args}  -> {"ok": True}
    {"op": "imap",     "fn": f, "tasks": [...]}   -> one {"ok": True,
                                                    "result": r} per
                                                    task, in task order
    {"op": "finalize", "fn": f, "payload": args}  -> {"ok": True}
    {"op": "ping"}                                -> {"ok": True, ...}
    {"op": "shutdown"}                            -> {"ok": True}, stop

Failures reply ``{"ok": False, "error": exc, "traceback": str}`` — the
exception object itself when it pickles, a ``RuntimeError`` carrying
its repr otherwise — and the agent keeps serving.  ``imap`` streams
results as they finish so the dispatcher can interleave shards; a
dispatcher that abandons the stream (its socket closes) just aborts the
remaining tasks, and the agent goes back to accepting.

The agent serves one connection at a time: the cluster executor holds
one persistent connection per shard, mirroring the persistent pool.

With ``inner_workers > 1`` the agent is **hierarchical**: it wraps a
local persistent :class:`~repro.parallel.executor.PoolExecutor`, fans
installs out to every local worker, and streams imap results from the
pool — so every core on the host works while the transport crosses
hosts once per strip group.  The handshake advertises ``inner_workers``
as the shard's ``capacity``, which the dispatcher's weighted strip deal
consumes.

Run standalone on a real host with::

    python -m repro.distributed.worker --bind 0.0.0.0:7070
"""

from __future__ import annotations

import argparse
import socket
import sys
import traceback
import uuid

from repro import telemetry
from repro.distributed.transport import (
    RESULT_TIMEOUT_S,
    Connection,
    HandshakeError,
    TransportError,
    check_hello,
    recv_msg,
    send_msg,
    server_hello,
)

__all__ = ["WorkerAgent", "serve", "main"]

#: Block forever while idle between RPCs — nothing is in flight, so
#: there is nothing for a bound to protect.
_IDLE = float("inf")

#: Bound on result sends.  The dispatcher drains shards strictly in
#: task order and may legitimately sit on a *sibling* shard for up to
#: its per-result bound; until it comes back to us, our sends block on
#: TCP backpressure.  Matching the dispatcher's drain bound (not the
#: much shorter install bound) means backpressure alone can never kill
#: a healthy connection.
_SEND_BOUND = RESULT_TIMEOUT_S


class _Shutdown(Exception):
    """Raised inside the RPC loop by the shutdown op."""


def _safe_error(exc: BaseException) -> dict:
    """An error reply whose exception survives pickling.

    Library exceptions (``PayloadNotInstalled``, ``ValueError``, ...)
    pickle fine and are re-raised verbatim on the dispatcher; anything
    that does not pickle degrades to a ``RuntimeError`` with the repr,
    never to a dead connection.
    """
    import pickle

    try:
        pickle.dumps(exc)
        err: BaseException = exc
    except Exception:
        err = RuntimeError(f"{type(exc).__name__}: {exc!r}")
    return {"ok": False, "error": err, "traceback": traceback.format_exc()}


class WorkerAgent:
    """One host's RPC server over a listening socket.

    Parameters
    ----------
    host, port:
        Bind address.  Port 0 picks an ephemeral port (the loopback
        test harness); :attr:`port` reports the bound one.
        ``SO_REUSEADDR`` is set so a restarted agent can rebind the
        port of a killed predecessor immediately.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        inner_workers: int = 1,
    ) -> None:
        self.host = host
        #: Local worker processes behind this agent.  1 keeps the flat
        #: PR 5 agent (RPCs run in the agent process itself); > 1 makes
        #: the agent hierarchical — it wraps a local
        #: :class:`~repro.parallel.executor.PoolExecutor` so every core
        #: on the host works while the transport crosses hosts once per
        #: strip group.
        self.inner_workers = max(1, int(inner_workers))
        #: Fresh per agent process, never reused: a dispatcher that
        #: reconnects and sees a different incarnation knows every
        #: worker-side payload cache is gone.
        self.incarnation = uuid.uuid4().hex
        # The agent process is a telemetry "worker": its deltas (its
        # own spans plus the transport counters of the agent side)
        # drain into the finalize reply, never into a local exporter.
        telemetry.mark_worker_process()
        self._inner = None
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        self.port = self._listener.getsockname()[1]

    @property
    def capacity(self) -> int:
        """Strip-deal weight this shard advertises in its handshake."""
        return self.inner_workers

    def _inner_pool(self):
        """The lazy local pool of a hierarchical agent (None when flat)."""
        if self.inner_workers <= 1:
            return None
        if self._inner is None:
            from repro.parallel.executor import PoolExecutor

            self._inner = PoolExecutor(self.inner_workers)
        return self._inner

    # -- RPC handlers ----------------------------------------------------

    def _handle(self, conn: Connection, msg: dict) -> None:
        op = msg.get("op")
        inner = self._inner_pool()
        if op == "install" or op == "finalize":
            result = None
            try:
                if inner is not None:
                    # Fan the install out to every local worker.  A
                    # delta install against a recycled inner pool raises
                    # PayloadNotInstalled from the workers; it travels
                    # back verbatim and the dispatcher's one-shot
                    # full-install retry fires, exactly as for a
                    # restarted flat agent.
                    if op == "finalize":
                        # Finalize doubles as the telemetry piggyback:
                        # the inner workers' drained deltas fold into
                        # this agent's own (transport counters, agent
                        # spans) and ride the ack back to the
                        # dispatcher.
                        result = telemetry.combine_agent_snapshot(
                            inner.finalize(msg["fn"], msg.get("payload", ()))
                        )
                    else:
                        inner.broadcast(msg["fn"], msg.get("payload", ()))
                else:
                    ret = msg["fn"](*msg.get("payload", ()))
                    if op == "finalize":
                        result = ret
            except Exception as exc:
                # Exception, not BaseException: KeyboardInterrupt /
                # SystemExit must stop a standalone agent, not be
                # pickled into an error reply.
                conn.send(_safe_error(exc))
                return
            conn.send({"ok": True, "result": result})
        elif op == "imap":
            fn = msg["fn"]
            if inner is not None:
                self._imap_inner(conn, inner, fn, msg["tasks"])
                return
            for task in msg["tasks"]:
                try:
                    result = fn(task)
                except Exception as exc:
                    conn.send(_safe_error(exc), _SEND_BOUND)
                    return
                conn.send({"ok": True, "result": result}, _SEND_BOUND)
        elif op == "ping":
            conn.send(
                {"ok": True, **server_hello(self.incarnation, self.capacity)}
            )
        elif op == "shutdown":
            conn.send({"ok": True})
            raise _Shutdown
        else:
            conn.send(
                _safe_error(ValueError(f"unknown RPC op {op!r}"))
            )

    def _imap_inner(self, conn: Connection, inner, fn, tasks) -> None:
        """The hierarchical imap: strips run on the local pool, results
        stream back per-task in task order.

        A SIGKILLed inner worker surfaces (within the result bound) as
        the pool's typed :class:`~repro.parallel.executor.WorkerFailure`
        — which pickles — so the dispatcher sees the same exception
        family a dead flat agent produces and the supervisor's retry /
        failover machinery applies unchanged.  The inner pool has been
        recycled by then, so the retry's full install lands on fresh
        workers.
        """
        stream = inner.imap(fn, tasks)
        try:
            while True:
                try:
                    result = next(stream)
                except StopIteration:
                    return
                except Exception as exc:
                    conn.send(_safe_error(exc), _SEND_BOUND)
                    return
                conn.send({"ok": True, "result": result}, _SEND_BOUND)
        finally:
            # A dispatcher that vanished mid-stream (its send raised
            # TransportError past us) abandons the stream; closing it
            # triggers the pool's recycle-on-abandon so stale strips
            # never leak into the next sweep.  (Empty task lists come
            # back as a plain iterator with no close.)
            close = getattr(stream, "close", None)
            if close is not None:
                close()

    def _serve_connection(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_msg(sock, server_hello(self.incarnation, self.capacity))
        check_hello(recv_msg(sock))
        conn = Connection(sock)
        # The resilience suite's "drop" fault severs *this* connection
        # (mid-stream, deterministically) instead of killing the whole
        # agent; a no-op unless a fault is armed.
        from repro.resilience.faults import register_connection

        register_connection(conn)
        try:
            while True:
                msg = recv_msg(sock, _IDLE)
                self._handle(conn, msg)
        finally:
            register_connection(None)

    def serve_forever(self) -> None:
        """Accept loop: one connection served to completion at a time.

        A dispatcher that disconnects (sweep done, executor recycled,
        or died) drops the agent back into ``accept``; only an explicit
        shutdown RPC ends the loop.
        """
        try:
            while True:
                sock, _ = self._listener.accept()
                try:
                    self._serve_connection(sock)
                except _Shutdown:
                    return
                except (TransportError, HandshakeError, OSError):
                    # Peer gone or spoke garbage: this connection is
                    # done, the agent is fine.  In-flight per-sweep
                    # state is torn down by the next install.
                    pass
                finally:
                    sock.close()
        finally:
            self.close()

    def close(self) -> None:
        if self._inner is not None:
            try:
                self._inner.close()
            except Exception:  # pragma: no cover - close never matters
                pass
            self._inner = None
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close never matters
            pass


def serve(
    host: str = "127.0.0.1", port: int = 0, inner_workers: int = 1
) -> None:
    """Bind and serve until a shutdown RPC (blocking convenience)."""
    agent = WorkerAgent(host, port, inner_workers=inner_workers)
    # stderr, flushed: stdout may be captured by a launcher, and
    # operators (and tests) read the bound port through a pipe anyway.
    print(
        f"repro worker agent listening on {agent.host}:{agent.port}",
        file=sys.stderr,
        flush=True,
    )
    agent.serve_forever()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="repro distributed worker agent"
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="listen address (port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--inner-workers",
        type=int,
        default=1,
        metavar="N",
        help="local worker processes behind this agent (default 1 = "
        "flat agent; > 1 wraps a local process pool and advertises N "
        "as the shard's strip-deal capacity)",
    )
    args = parser.parse_args(argv)
    host, _, port = args.bind.rpartition(":")
    serve(host or "127.0.0.1", int(port), inner_workers=args.inner_workers)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
