"""Multi-host execution backend: the ``Executor`` contract over sockets.

:class:`ClusterExecutor` is to a set of worker *agents*
(:mod:`repro.distributed.worker`) what
:class:`~repro.parallel.executor.PoolExecutor` is to a persistent
process pool — it implements the same submit/gather interface, so the
conflict-sweep dispatcher (:mod:`repro.parallel.pool`) and the
round-synchronous coloring engine
(:mod:`repro.coloring.parallel_list`) shard across hosts with **zero
changes to their dispatch logic**:

- payloads install through a broadcast to every shard, recorded under
  **channelled payload tokens** exactly as on the pool — repeat sweeps
  ship only the colmasks / forbidden-word delta, and the sweep and
  coloring channels coexist without evicting each other;
- :meth:`holds_token` additionally pins the agent *incarnations* seen
  at install time (the socket analog of the pool's worker-pid pin): an
  agent restarted since the install has an empty payload cache, so the
  next install ships in full rather than stranding it —
  ``PayloadNotInstalled`` raised by a raced shard travels back verbatim
  and triggers the dispatcher's one-shot full-install retry;
- tasks are dealt **round-robin** over the shards and results are
  interleaved back into task order, so the concatenated chunk stream —
  and therefore the assembled CSR and the coloring rounds — is
  bit-identical to the serial backend's for any shard count;
- a broken broadcast, a shard that dies mid-strip, or an abandoned
  result stream **recycles** the connections (bounded by the
  ``REPRO_BROADCAST_TIMEOUT_S`` / ``REPRO_RESULT_TIMEOUT_S`` knobs the
  pool already honours) instead of hanging the dispatcher.

What does *not* carry over from the pool: the shared-memory gather
(``shm_gather``) is a single-node shortcut — shared segments do not
cross hosts — so the executor advertises
``supports_shm_gather = False`` and the gather seam falls back to the
framed result stream, which still sends hit arrays as raw out-of-band
buffers (one memcpy, no per-element pickling).

Closing the executor closes its *connections* only; agent processes
are a host resource owned by whoever started them (the
:class:`~repro.distributed.local.LocalCluster` harness, an operator's
``python -m repro.distributed.worker`` on a real host).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator, Sequence
from typing import Any

from repro import telemetry
from repro.distributed.transport import (
    BROADCAST_TIMEOUT_S,
    RESULT_TIMEOUT_S,
    Connection,
    TransportError,
    connect,
    parse_hosts,
)
from repro.parallel.executor import Executor, WorkerFailure, token_channel

__all__ = ["ClusterExecutor", "make_cluster_executor"]


class ClusterExecutor(Executor):
    """Socket-sharded execution backend over worker agents.

    Parameters
    ----------
    hosts:
        Agent addresses — ``"host:port,host:port"`` or an iterable of
        ``"host:port"`` / ``(host, port)``.  One shard per agent.
    connect_timeout_s, broadcast_timeout_s, result_timeout_s:
        Per-operation bounds; default to the pool's env-overridable
        ``REPRO_BROADCAST_TIMEOUT_S`` / ``REPRO_RESULT_TIMEOUT_S``
        knobs.
    redistribute:
        When an agent dies mid-sweep, re-deal its unfinished strips to
        the surviving agents and finish the sweep on them — instead of
        recycling the whole connection set and raising.  Off by
        default: without a supervisor (or an operator opting in) a
        death should stay loud.  The re-deal preserves canonical task
        order (results are buffered and yielded strictly in task
        order), so a sweep that lost an agent produces the
        bit-identical chunk stream.  After the sweep, the executor
        compacts itself to the survivors: later sweeps shard across
        what is actually alive.
    """

    supports_payload_cache = True
    #: Cluster shards absorb telemetry deltas under ``s0``, ``s1``, ...
    #: (a hierarchical agent's inner workers then nest as ``s1:w0``).
    telemetry_prefix = "s"

    def __init__(
        self,
        hosts,
        connect_timeout_s: float | None = None,
        broadcast_timeout_s: float | None = None,
        result_timeout_s: float | None = None,
        redistribute: bool = False,
    ) -> None:
        super().__init__()
        self.redistribute = redistribute
        self.hosts = parse_hosts(hosts)
        self.n_workers = len(self.hosts)
        self.connect_timeout_s = (
            BROADCAST_TIMEOUT_S if connect_timeout_s is None else connect_timeout_s
        )
        self.broadcast_timeout_s = (
            BROADCAST_TIMEOUT_S if broadcast_timeout_s is None else broadcast_timeout_s
        )
        self.result_timeout_s = (
            RESULT_TIMEOUT_S if result_timeout_s is None else result_timeout_s
        )
        self._conns: list[Connection] | None = None
        #: Agent incarnations at install time, per token channel — a
        #: restarted agent invalidates the delta path for a channel.
        self._token_incarnations: dict = {}
        self._streaming = False

    # -- connection lifecycle -------------------------------------------

    @property
    def connected(self) -> bool:
        """True while connections to every shard are live."""
        return self._conns is not None

    def worker_incarnations(self) -> list[str] | None:
        """Agent identities of the live connections (``None`` when not
        connected) — fresh per agent process, so a restart is visible
        even when the replacement reuses the host:port."""
        if self._conns is None:
            return None
        return [c.incarnation for c in self._conns]

    def _ensure_connected(self) -> list[Connection]:
        if self._conns is None:
            conns: list[Connection] = []
            try:
                for host, port in self.hosts:
                    conns.append(connect(host, port, self.connect_timeout_s))
            except BaseException:
                for c in conns:
                    c.close()
                raise
            self._conns = conns
            # A fresh connection epoch gives no guarantee about what a
            # previous dispatcher left in the agents' per-sweep state;
            # forget every token so the next install per channel ships
            # full (which also clears stale worker state).
            self._clear_tokens()
            self._token_incarnations.clear()
        return self._conns

    def _recycle(self) -> None:
        if self._conns is not None:
            for c in self._conns:
                c.close()
            self._conns = None
        self._clear_tokens()
        self._token_incarnations.clear()
        self._streaming = False

    def holds_token(self, token) -> bool:
        """A cluster additionally demands the agent set is unchanged:
        a restarted agent has an empty payload cache, so a delta-only
        install would strand it — any incarnation change (or no live
        connections) forces the next install to ship in full."""
        incs = self.worker_incarnations()
        return (
            super().holds_token(token)
            and incs is not None
            and incs == self._token_incarnations.get(token_channel(token))
        )

    def worker_capacities(self) -> list[int]:
        """Per-shard capacity as advertised in the agents' handshakes.

        A flat agent advertises 1; a hierarchical agent advertises its
        ``inner_workers``.  The weighted strip deal
        (:func:`repro.parallel.pool.sweep_strip_tasks`) consumes this
        to give bigger shards proportionally more pair weight while the
        positional ``tasks[k::n]`` deal stays untouched.  Connects on
        demand; agents predating the capacity field count as 1.
        """
        conns = self._ensure_connected()
        return [max(1, int(c.peer.get("capacity", 1))) for c in conns]

    # -- broadcast / stream ---------------------------------------------

    def _broadcast(
        self, fn: Callable, payload: tuple, op: str = "install"
    ) -> list[Any]:
        conns = self._ensure_connected()
        try:
            # Send to every shard first, then collect the acks: agents
            # drain their sockets promptly (they sit in recv between
            # RPCs), so the installs run concurrently across hosts
            # instead of serializing on each ack.
            for c in conns:
                c.send(
                    {"op": op, "fn": fn, "payload": payload},
                    self.broadcast_timeout_s,
                )
            replies = [c.recv(self.broadcast_timeout_s) for c in conns]
        except TransportError as exc:
            self._recycle()
            raise WorkerFailure(
                f"payload broadcast failed ({exc}) — a cluster worker "
                "likely died mid-install; the connections have been "
                "recycled"
            ) from None
        errors = [r["error"] for r in replies if not r.get("ok")]
        if errors:
            # The install failed on at least one shard; shards that
            # succeeded now hold state the failed ones do not — the
            # only consistent next step is a full re-install, so drop
            # the connections (and with them the token record) and
            # surface the first error verbatim (PayloadNotInstalled
            # included, which the dispatcher retries in full).
            self._recycle()
            raise errors[0]
        # Shard-order broadcast returns — the telemetry piggyback
        # channel (each agent's drained delta rides its finalize ack).
        return [r.get("result") for r in replies]

    def _stream(self, n_tasks: int) -> Iterator:
        conns = self._conns
        n = len(conns)
        done = False
        try:
            for k in range(n_tasks):
                conn = conns[k % n]
                try:
                    msg = conn.recv(self.result_timeout_s)
                except TransportError as exc:
                    raise WorkerFailure(
                        f"no result from shard {k % n} "
                        f"({self.hosts[k % n][0]}:{self.hosts[k % n][1]}) "
                        f"within {self.result_timeout_s:.0f}s ({exc}) — a "
                        "cluster worker likely died mid-strip; the "
                        "connections have been recycled"
                    ) from None
                if not msg.get("ok"):
                    raise msg["error"]
                yield msg["result"]
            done = True
        finally:
            self._streaming = False
            if not done:
                # Remaining results are churning toward a dead
                # iterator; drop the connections (agents abort their
                # task loops on the closed sockets) and start clean.
                self._recycle()

    # -- shard redistribution -------------------------------------------

    def _compact(self, dead: set) -> None:
        """Shrink to the surviving shards after a redistributed sweep.

        Connections, hosts and the recorded per-channel incarnation
        lists all drop the dead indices in lockstep, so
        :meth:`holds_token` keeps answering True for the survivors —
        the next sweep ships only its delta to agents that really do
        still hold the static payload."""
        alive = [i for i in range(len(self._conns)) if i not in dead]
        before = len(self._conns)
        self._conns = [self._conns[i] for i in alive]
        self.hosts = tuple(self.hosts[i] for i in alive)
        self.n_workers = len(self._conns)
        for channel, incs in list(self._token_incarnations.items()):
            if incs is not None and len(incs) == before:
                self._token_incarnations[channel] = [incs[i] for i in alive]

    def _redistribute_dead(
        self, first_dead: int, tasks, task_fn, emissions, owner, dead
    ) -> None:
        """Re-deal a dead shard's unfinished strips to the survivors.

        An agent processes RPCs sequentially, so an ``imap`` op sent to
        a busy survivor queues in its socket and runs *after* its
        current emissions — a survivor's emission order is therefore
        its remaining deque plus whatever this re-deal appends, which
        the ``owner``/``emissions`` bookkeeping records exactly.  A
        survivor that dies while being handed work just joins the queue
        (its whole pending set, old and new, is re-dealt in turn); when
        no survivor remains the sweep is unrecoverable here and
        surfaces the classic bounded error for the supervisor."""
        conns = self._conns
        telemetry.count("cluster.redistribute")
        queue = [first_dead]
        while queue:
            c = queue.pop()
            if c not in dead:
                dead.add(c)
                conns[c].close()
            pending = list(emissions[c])
            emissions[c].clear()
            survivors = [i for i in range(len(conns)) if i not in dead]
            if not survivors:
                raise WorkerFailure(
                    "every cluster shard died mid-strip — no survivor "
                    "left to redistribute to; the connections have "
                    "been recycled"
                ) from None
            if not pending:
                continue
            # Round-robin over the survivors, in canonical index
            # order — deterministic, though any assignment would do:
            # order is restored dispatcher-side from ``owner``.
            assign: dict[int, list[int]] = {s: [] for s in survivors}
            for j, idx in enumerate(pending):
                assign[survivors[j % len(survivors)]].append(idx)
            for s, idxs in assign.items():
                if not idxs:
                    continue
                emissions[s].extend(idxs)
                for i in idxs:
                    owner[i] = s
                try:
                    conns[s].send(
                        {
                            "op": "imap",
                            "fn": task_fn,
                            "tasks": [tasks[i] for i in idxs],
                        },
                        self.broadcast_timeout_s,
                    )
                except TransportError:
                    if s not in queue:
                        queue.append(s)

    def _stream_redistributing(self, tasks, task_fn) -> Iterator:
        """Result stream that survives shard deaths: results are
        buffered out of emission order and yielded strictly in task
        order, so the chunk stream is bit-identical whether or not an
        agent died."""
        conns = self._conns
        n = len(conns)
        emissions = [deque(range(c, len(tasks), n)) for c in range(n)]
        owner = {idx: c for c in range(n) for idx in emissions[c]}
        dead: set = set()
        buffered: dict = {}
        done = False
        try:
            for k in range(len(tasks)):
                while k not in buffered:
                    c = owner[k]
                    try:
                        msg = conns[c].recv(self.result_timeout_s)
                    except TransportError:
                        self._redistribute_dead(
                            c, tasks, task_fn, emissions, owner, dead
                        )
                        continue
                    if not msg.get("ok"):
                        if isinstance(msg["error"], WorkerFailure):
                            # A hierarchical agent relaying its inner
                            # pool's typed failure: the shard's attempt
                            # is lost exactly as if the agent had died,
                            # so its strips redistribute the same way
                            # (the agent itself stays up — with a
                            # recycled inner pool — for later runs).
                            self._redistribute_dead(
                                c, tasks, task_fn, emissions, owner, dead
                            )
                            continue
                        raise msg["error"]
                    buffered[emissions[c].popleft()] = msg["result"]
                yield buffered.pop(k)
            done = True
        finally:
            self._streaming = False
            if not done:
                self._recycle()
            elif dead:
                self._compact(dead)

    # -- Executor contract ----------------------------------------------

    def imap(
        self,
        task_fn: Callable,
        tasks: Sequence,
        initializer: Callable | None = None,
        payload: tuple = (),
        payload_token=None,
    ) -> Iterator:
        tasks = list(tasks)
        if not tasks:
            return iter(())
        if self._streaming:
            raise RuntimeError(
                "ClusterExecutor does not support overlapping sweeps: "
                "finish, close, or abandon the previous result stream first"
            )
        conns = self._ensure_connected()
        if initializer is not None:
            self._broadcast(initializer, payload)
            self._record_install(payload_token)
            if payload_token is None:
                self._token_incarnations.clear()
            else:
                self._token_incarnations[token_channel(payload_token)] = (
                    self.worker_incarnations()
                )
        n = len(conns)
        try:
            for k, conn in enumerate(conns):
                # Round-robin deal: shard k owns tasks k, k+n, k+2n...
                # Globally the i-th result is the (i // n)-th of shard
                # i % n, so interleaving reads in that order restores
                # exact task order — the determinism contract.
                shard = tasks[k::n]
                if shard:
                    conn.send(
                        {"op": "imap", "fn": task_fn, "tasks": shard},
                        self.broadcast_timeout_s,
                    )
        except TransportError as exc:
            self._recycle()
            raise WorkerFailure(
                f"task dispatch failed ({exc}) — a cluster worker died; "
                "the connections have been recycled"
            ) from None
        self._streaming = True
        if self.redistribute:
            return self._stream_redistributing(tasks, task_fn)
        return self._stream(len(tasks))

    def finalize(self, fn: Callable, payload: tuple = ()) -> list[Any] | None:
        if self._conns is not None:
            try:
                return self._broadcast(fn, payload, op="finalize")
            except Exception:
                # Finalize runs inside dispatchers' ``finally`` blocks:
                # a cleanup failure must not mask the sweep's own
                # exception.  _broadcast already recycled the
                # connections, so stale worker state is unreachable.
                pass
        return None

    def close(self) -> None:
        """Close the connections (agent processes stay up — they are
        owned by whoever started them).  Idempotent."""
        self._recycle()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self._recycle()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        addrs = ",".join(f"{h}:{p}" for h, p in self.hosts)
        return f"ClusterExecutor(hosts=[{addrs}])"


def make_cluster_executor(
    hosts, transport: str = "socket", **kwargs
) -> ClusterExecutor:
    """Resolve a transport name to a cluster backend.

    ``"socket"`` is the one transport today; the name is a seam for an
    MPI-style allgather later, and unknown names fail loudly here
    rather than deep in a connect call.
    """
    if transport != "socket":
        raise ValueError(
            f"unknown transport {transport!r} (available: 'socket')"
        )
    return ClusterExecutor(hosts, **kwargs)
