"""Multi-host execution backend: the ``Executor`` contract over sockets.

:class:`ClusterExecutor` is to a set of worker *agents*
(:mod:`repro.distributed.worker`) what
:class:`~repro.parallel.executor.PoolExecutor` is to a persistent
process pool — it implements the same submit/gather interface, so the
conflict-sweep dispatcher (:mod:`repro.parallel.pool`) and the
round-synchronous coloring engine
(:mod:`repro.coloring.parallel_list`) shard across hosts with **zero
changes to their dispatch logic**:

- payloads install through a broadcast to every shard, recorded under
  **channelled payload tokens** exactly as on the pool — repeat sweeps
  ship only the colmasks / forbidden-word delta, and the sweep and
  coloring channels coexist without evicting each other;
- :meth:`holds_token` additionally pins the agent *incarnations* seen
  at install time (the socket analog of the pool's worker-pid pin): an
  agent restarted since the install has an empty payload cache, so the
  next install ships in full rather than stranding it —
  ``PayloadNotInstalled`` raised by a raced shard travels back verbatim
  and triggers the dispatcher's one-shot full-install retry;
- tasks are dealt **round-robin** over the shards and results are
  interleaved back into task order, so the concatenated chunk stream —
  and therefore the assembled CSR and the coloring rounds — is
  bit-identical to the serial backend's for any shard count;
- a broken broadcast, a shard that dies mid-strip, or an abandoned
  result stream **recycles** the connections (bounded by the
  ``REPRO_BROADCAST_TIMEOUT_S`` / ``REPRO_RESULT_TIMEOUT_S`` knobs the
  pool already honours) instead of hanging the dispatcher.

What does *not* carry over from the pool: the shared-memory gather
(``shm_gather``) is a single-node shortcut — shared segments do not
cross hosts — so the executor advertises
``supports_shm_gather = False`` and the gather seam falls back to the
framed result stream, which still sends hit arrays as raw out-of-band
buffers (one memcpy, no per-element pickling).

Closing the executor closes its *connections* only; agent processes
are a host resource owned by whoever started them (the
:class:`~repro.distributed.local.LocalCluster` harness, an operator's
``python -m repro.distributed.worker`` on a real host).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from repro.distributed.transport import (
    BROADCAST_TIMEOUT_S,
    RESULT_TIMEOUT_S,
    Connection,
    TransportError,
    connect,
    parse_hosts,
)
from repro.parallel.executor import Executor, token_channel

__all__ = ["ClusterExecutor", "make_cluster_executor"]


class ClusterExecutor(Executor):
    """Socket-sharded execution backend over worker agents.

    Parameters
    ----------
    hosts:
        Agent addresses — ``"host:port,host:port"`` or an iterable of
        ``"host:port"`` / ``(host, port)``.  One shard per agent.
    connect_timeout_s, broadcast_timeout_s, result_timeout_s:
        Per-operation bounds; default to the pool's env-overridable
        ``REPRO_BROADCAST_TIMEOUT_S`` / ``REPRO_RESULT_TIMEOUT_S``
        knobs.
    """

    supports_payload_cache = True

    def __init__(
        self,
        hosts,
        connect_timeout_s: float | None = None,
        broadcast_timeout_s: float | None = None,
        result_timeout_s: float | None = None,
    ) -> None:
        super().__init__()
        self.hosts = parse_hosts(hosts)
        self.n_workers = len(self.hosts)
        self.connect_timeout_s = (
            BROADCAST_TIMEOUT_S if connect_timeout_s is None else connect_timeout_s
        )
        self.broadcast_timeout_s = (
            BROADCAST_TIMEOUT_S if broadcast_timeout_s is None else broadcast_timeout_s
        )
        self.result_timeout_s = (
            RESULT_TIMEOUT_S if result_timeout_s is None else result_timeout_s
        )
        self._conns: list[Connection] | None = None
        #: Agent incarnations at install time, per token channel — a
        #: restarted agent invalidates the delta path for a channel.
        self._token_incarnations: dict = {}
        self._streaming = False

    # -- connection lifecycle -------------------------------------------

    @property
    def connected(self) -> bool:
        """True while connections to every shard are live."""
        return self._conns is not None

    def worker_incarnations(self) -> list[str] | None:
        """Agent identities of the live connections (``None`` when not
        connected) — fresh per agent process, so a restart is visible
        even when the replacement reuses the host:port."""
        if self._conns is None:
            return None
        return [c.incarnation for c in self._conns]

    def _ensure_connected(self) -> list[Connection]:
        if self._conns is None:
            conns: list[Connection] = []
            try:
                for host, port in self.hosts:
                    conns.append(connect(host, port, self.connect_timeout_s))
            except BaseException:
                for c in conns:
                    c.close()
                raise
            self._conns = conns
            # A fresh connection epoch gives no guarantee about what a
            # previous dispatcher left in the agents' per-sweep state;
            # forget every token so the next install per channel ships
            # full (which also clears stale worker state).
            self._clear_tokens()
            self._token_incarnations.clear()
        return self._conns

    def _recycle(self) -> None:
        if self._conns is not None:
            for c in self._conns:
                c.close()
            self._conns = None
        self._clear_tokens()
        self._token_incarnations.clear()
        self._streaming = False

    def holds_token(self, token) -> bool:
        """A cluster additionally demands the agent set is unchanged:
        a restarted agent has an empty payload cache, so a delta-only
        install would strand it — any incarnation change (or no live
        connections) forces the next install to ship in full."""
        incs = self.worker_incarnations()
        return (
            super().holds_token(token)
            and incs is not None
            and incs == self._token_incarnations.get(token_channel(token))
        )

    # -- broadcast / stream ---------------------------------------------

    def _broadcast(self, fn: Callable, payload: tuple) -> None:
        conns = self._ensure_connected()
        try:
            # Send to every shard first, then collect the acks: agents
            # drain their sockets promptly (they sit in recv between
            # RPCs), so the installs run concurrently across hosts
            # instead of serializing on each ack.
            for c in conns:
                c.send(
                    {"op": "install", "fn": fn, "payload": payload},
                    self.broadcast_timeout_s,
                )
            replies = [c.recv(self.broadcast_timeout_s) for c in conns]
        except TransportError as exc:
            self._recycle()
            raise RuntimeError(
                f"payload broadcast failed ({exc}) — a cluster worker "
                "likely died mid-install; the connections have been "
                "recycled"
            ) from None
        errors = [r["error"] for r in replies if not r.get("ok")]
        if errors:
            # The install failed on at least one shard; shards that
            # succeeded now hold state the failed ones do not — the
            # only consistent next step is a full re-install, so drop
            # the connections (and with them the token record) and
            # surface the first error verbatim (PayloadNotInstalled
            # included, which the dispatcher retries in full).
            self._recycle()
            raise errors[0]

    def _stream(self, n_tasks: int) -> Iterator:
        conns = self._conns
        n = len(conns)
        done = False
        try:
            for k in range(n_tasks):
                conn = conns[k % n]
                try:
                    msg = conn.recv(self.result_timeout_s)
                except TransportError as exc:
                    raise RuntimeError(
                        f"no result from shard {k % n} "
                        f"({self.hosts[k % n][0]}:{self.hosts[k % n][1]}) "
                        f"within {self.result_timeout_s:.0f}s ({exc}) — a "
                        "cluster worker likely died mid-strip; the "
                        "connections have been recycled"
                    ) from None
                if not msg.get("ok"):
                    raise msg["error"]
                yield msg["result"]
            done = True
        finally:
            self._streaming = False
            if not done:
                # Remaining results are churning toward a dead
                # iterator; drop the connections (agents abort their
                # task loops on the closed sockets) and start clean.
                self._recycle()

    # -- Executor contract ----------------------------------------------

    def imap(
        self,
        task_fn: Callable,
        tasks: Sequence,
        initializer: Callable | None = None,
        payload: tuple = (),
        payload_token=None,
    ) -> Iterator:
        tasks = list(tasks)
        if not tasks:
            return iter(())
        if self._streaming:
            raise RuntimeError(
                "ClusterExecutor does not support overlapping sweeps: "
                "finish, close, or abandon the previous result stream first"
            )
        conns = self._ensure_connected()
        if initializer is not None:
            self._broadcast(initializer, payload)
            self._record_install(payload_token)
            if payload_token is None:
                self._token_incarnations.clear()
            else:
                self._token_incarnations[token_channel(payload_token)] = (
                    self.worker_incarnations()
                )
        n = len(conns)
        try:
            for k, conn in enumerate(conns):
                # Round-robin deal: shard k owns tasks k, k+n, k+2n...
                # Globally the i-th result is the (i // n)-th of shard
                # i % n, so interleaving reads in that order restores
                # exact task order — the determinism contract.
                shard = tasks[k::n]
                if shard:
                    conn.send(
                        {"op": "imap", "fn": task_fn, "tasks": shard},
                        self.broadcast_timeout_s,
                    )
        except TransportError as exc:
            self._recycle()
            raise RuntimeError(
                f"task dispatch failed ({exc}) — a cluster worker died; "
                "the connections have been recycled"
            ) from None
        self._streaming = True
        return self._stream(len(tasks))

    def finalize(self, fn: Callable, payload: tuple = ()) -> None:
        if self._conns is not None:
            try:
                self._broadcast(fn, payload)
            except Exception:
                # Finalize runs inside dispatchers' ``finally`` blocks:
                # a cleanup failure must not mask the sweep's own
                # exception.  _broadcast already recycled the
                # connections, so stale worker state is unreachable.
                pass

    def close(self) -> None:
        """Close the connections (agent processes stay up — they are
        owned by whoever started them).  Idempotent."""
        self._recycle()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self._recycle()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        addrs = ",".join(f"{h}:{p}" for h, p in self.hosts)
        return f"ClusterExecutor(hosts=[{addrs}])"


def make_cluster_executor(
    hosts, transport: str = "socket", **kwargs
) -> ClusterExecutor:
    """Resolve a transport name to a cluster backend.

    ``"socket"`` is the one transport today; the name is a seam for an
    MPI-style allgather later, and unknown names fail loudly here
    rather than deep in a connect call.
    """
    if transport != "socket":
        raise ValueError(
            f"unknown transport {transport!r} (available: 'socket')"
        )
    return ClusterExecutor(hosts, **kwargs)
