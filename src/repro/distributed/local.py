"""Loopback cluster harness: N worker agents as local processes.

Tests, CI and the bench need a real multi-agent cluster without real
hosts.  :class:`LocalCluster` spawns ``n_workers`` agent processes on
``127.0.0.1`` (ephemeral ports, reported back over a pipe), honours the
``REPRO_START_METHOD`` override but defaults to ``spawn`` regardless of
platform (see :func:`_local_start_method` — forked agents inherit the
dispatcher's open sockets and keep peer connections alive past their
close), and exposes the ``hosts`` list a
:class:`~repro.distributed.cluster.ClusterExecutor` connects to.

The harness also owns the failure-injection hooks the transport tests
need: :meth:`kill_worker` SIGKILLs one agent (the dispatcher must then
surface a bounded error, not hang), and :meth:`restart_worker` brings a
fresh agent up **on the same port** — same address, new incarnation —
which is exactly the auto-respawn scenario the pool's kill tests pin
down: the executor reconnects, sees the incarnation change, and ships
the next install in full.
"""

from __future__ import annotations

import multiprocessing as mp
import os

from repro.distributed.cluster import ClusterExecutor
from repro.parallel.executor import BROADCAST_TIMEOUT_S

__all__ = ["LocalCluster"]


def _local_start_method(start_method: str | None) -> str:
    """``spawn`` unless explicitly overridden — **not** the pool's
    fork-preferring default.  A forked agent inherits every open file
    descriptor of the dispatcher process, including live sockets to
    *other* agents; those copies keep the peer connections alive after
    the dispatcher closes them, so an idle agent waiting for EOF would
    wedge forever.  ``spawn`` starts agents with a clean descriptor
    table, exactly like the standalone ``python -m
    repro.distributed.worker`` of a real deployment.
    """
    method = start_method or os.environ.get("REPRO_START_METHOD") or "spawn"
    if method not in mp.get_all_start_methods():
        raise ValueError(
            f"start method {method!r} not available "
            f"(have {mp.get_all_start_methods()})"
        )
    return method


def _agent_main(host: str, port: int, report, inner_workers: int = 1) -> None:
    """Agent process entry (module-level so it pickles under spawn)."""
    from repro.distributed.worker import WorkerAgent

    agent = WorkerAgent(host, port, inner_workers=inner_workers)
    report.send(agent.port)
    report.close()
    agent.serve_forever()


class LocalCluster:
    """``n_workers`` worker agents on loopback, as child processes.

    Usage::

        with LocalCluster(2) as cluster:
            with cluster.executor() as ex:
                ...  # any Executor consumer

    The cluster owns the agent *processes*; executors own only their
    connections — several executors may dial one cluster in sequence
    (the agents go back to ``accept`` when a dispatcher disconnects).
    """

    def __init__(
        self,
        n_workers: int = 2,
        start_method: str | None = None,
        host: str = "127.0.0.1",
        inner_workers: int = 1,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.host = host
        self.n_workers = n_workers
        #: Local pool size behind each agent (1 = flat PR 5 agents;
        #: > 1 = hierarchical agents advertising this as capacity).
        self.inner_workers = max(1, int(inner_workers))
        self._ctx = mp.get_context(_local_start_method(start_method))
        self._procs: list = []
        self._ports: list[int] = []
        try:
            for _ in range(n_workers):
                proc, port = self._spawn(0)
                self._procs.append(proc)
                self._ports.append(port)
        except BaseException:
            self.close()
            raise

    def _spawn(self, port: int):
        """Start one agent and wait (bounded) for its bound port."""
        recv, send = self._ctx.Pipe(duplex=False)
        # Hierarchical agents spawn a local pool, and daemonic
        # processes are not allowed children — so they run
        # non-daemonic (close() kills them explicitly either way).
        proc = self._ctx.Process(
            target=_agent_main,
            args=(self.host, port, send, self.inner_workers),
            daemon=self.inner_workers <= 1,
        )
        proc.start()
        send.close()
        # Spawn-context children re-import the library before binding;
        # the broadcast bound is generous enough for that.
        if not recv.poll(BROADCAST_TIMEOUT_S):
            proc.kill()
            proc.join(BROADCAST_TIMEOUT_S)
            raise RuntimeError(
                "local worker agent failed to start "
                f"(exitcode={proc.exitcode})"
            )
        # reprolint: disable=bounded-blocking -- poll(BROADCAST_TIMEOUT_S)
        # above guarantees data is ready; this recv cannot block.
        bound = recv.recv()
        recv.close()
        return proc, bound

    @property
    def hosts(self) -> tuple[str, ...]:
        """``"host:port"`` per live slot — feed to ``ClusterExecutor``,
        ``PicassoParams(hosts=...)`` or ``--hosts``."""
        return tuple(f"{self.host}:{p}" for p in self._ports)

    def executor(self, **kwargs) -> ClusterExecutor:
        """A fresh :class:`ClusterExecutor` over this cluster's agents
        (caller owns it — close it or use it as a context manager)."""
        return ClusterExecutor(self.hosts, **kwargs)

    def worker_pids(self) -> list[int]:
        """Agent pids, in shard order (diagnostics/tests)."""
        return [p.pid for p in self._procs]

    def kill_worker(self, rank: int) -> None:
        """SIGKILL one agent mid-flight — the failure-injection hook.

        The agent gets no chance to flush or close; a dispatcher
        waiting on it sees the connection drop (or its bounded timeout)
        and must recycle, never hang.
        """
        proc = self._procs[rank]
        proc.kill()
        proc.join(BROADCAST_TIMEOUT_S)

    def restart_worker(self, rank: int) -> None:
        """Replace a (dead) agent with a fresh one on the *same* port.

        The replacement has a new incarnation, so executors that held
        payload tokens against the old agent fall back to full
        installs — the cross-host analog of a pool worker respawn.
        """
        old = self._procs[rank]
        if old.is_alive():
            old.kill()
        old.join(BROADCAST_TIMEOUT_S)
        proc, port = self._spawn(self._ports[rank])
        self._procs[rank] = proc
        self._ports[rank] = port

    def close(self) -> None:
        """Kill every agent process.  Idempotent."""
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
            proc.join(BROADCAST_TIMEOUT_S)
        self._procs = []
        self._ports = []

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalCluster(n_workers={self.n_workers}, hosts={self.hosts})"
