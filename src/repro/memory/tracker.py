"""Memory accounting (paper Table IV).

Two complementary views:

- **Analytic models** (:class:`AlgorithmMemoryModel`): closed-form byte
  counts of every structure each algorithm keeps resident, evaluated at
  *any* problem size — including the paper's 2-million-vertex scale,
  which this reproduction cannot run but can account exactly.
- **Measured peaks**: process-level max resident set size via
  :func:`resource.getrusage` (what the paper reports), plus a
  tracemalloc-based scoped measurement for per-call attribution.
"""

from __future__ import annotations

import resource
import sys
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass


def peak_rss_bytes() -> int:
    """Max resident set size of this process so far, in bytes.

    ``ru_maxrss`` is KiB on Linux, bytes on macOS.
    """
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return raw if sys.platform == "darwin" else raw * 1024


@contextmanager
def traced_allocation():
    """Context manager yielding a dict whose ``peak_bytes`` records the
    tracemalloc peak inside the block (per-call attribution; slower)."""
    tracemalloc.start()
    out = {"peak_bytes": 0}
    try:
        yield out
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out["peak_bytes"] = int(peak)


def bytes_human(n: int) -> str:
    """Render a byte count like ``"1.5 GB"`` (Table IV formatting)."""
    x = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(x) < 1024.0 or unit == "TB":
            return f"{x:.2f} {unit}" if unit != "B" else f"{int(x)} B"
        x /= 1024.0
    raise AssertionError("unreachable")


@dataclass(frozen=True)
class AlgorithmMemoryModel:
    """Closed-form resident-byte models for every compared algorithm.

    Parameters mirror the instance: ``n`` vertices, ``m`` undirected
    edges of the (complement) graph being colored, ``n_qubits`` for the
    Pauli payload, and Picasso's per-iteration conflict-edge maximum.

    ``id_bytes`` is 4 below 2^31 vertices (the paper's 32-bit limit for
    ECL-GC-R) and 8 above.
    """

    n: int
    m: int
    n_qubits: int = 0
    id_bytes: int = 4

    # -- shared building blocks ---------------------------------------

    def csr_bytes(self) -> int:
        """CSR graph: int64 offsets + two directed arcs per edge."""
        return 8 * (self.n + 1) + 2 * self.m * self.id_bytes

    def colors_bytes(self) -> int:
        return 8 * self.n

    # -- per-algorithm models ------------------------------------------

    def colpack_bytes(self) -> int:
        """Greedy over explicit CSR: graph + colors + forbidden scratch
        + ordering permutation."""
        return self.csr_bytes() + self.colors_bytes() + 8 * self.n + 8 * self.n

    def kokkos_eb_bytes(self) -> int:
        """Edge-based speculative: CSR + *edge list* + worklists +
        forbidden bitmaps (the paper's most memory-hungry baseline)."""
        edge_list = 2 * self.m * self.id_bytes
        worklists = 2 * self.n * self.id_bytes
        forbidden = 8 * self.n
        return self.csr_bytes() + edge_list + worklists + forbidden + self.colors_bytes()

    def ecl_gc_bytes(self) -> int:
        """JP-LDF with shortcutting: CSR + priorities + colors +
        per-round frontier flags (lean; matches its Table IV showing)."""
        return self.csr_bytes() + 8 * self.n + self.colors_bytes() + self.n

    def picasso_bytes(self, max_conflict_edges: int, palette: int, list_size: int) -> int:
        """Streaming Picasso: encoded Pauli payload + color lists +
        conflict CSR at its per-iteration maximum + colors.  No input
        graph term — that is the whole contribution."""
        pauli_payload = self.n * self.n_qubits  # uint8 chars
        encoded = self.n * 8 * ((3 * self.n_qubits + 63) // 64)
        lists = self.n * list_size * 8
        masks = self.n * 8 * ((palette + 63) // 64)
        conflict_csr = 8 * (self.n + 1) + 2 * max_conflict_edges * self.id_bytes
        return pauli_payload + encoded + lists + masks + conflict_csr + self.colors_bytes()

    def savings_vs_colpack(
        self, max_conflict_edges: int, palette: int, list_size: int
    ) -> float:
        """The Table IV headline ratio (68x for H4 2D 6311g at paper scale)."""
        return self.colpack_bytes() / max(
            self.picasso_bytes(max_conflict_edges, palette, list_size), 1
        )
