"""Memory accounting substrate (paper Table IV)."""

from repro.memory.tracker import (
    AlgorithmMemoryModel,
    bytes_human,
    peak_rss_bytes,
    traced_allocation,
)

__all__ = [
    "AlgorithmMemoryModel",
    "bytes_human",
    "peak_rss_bytes",
    "traced_allocation",
]
