"""Packed-bitset primitives.

The Picasso paper encodes each Pauli character into 3 bits (an "inverse
one-hot" code) and reduces the anticommutation test between two strings
to ``popcount(a & b) & 1``.  The same packed-word machinery is reused for
palette bitsets: each vertex's candidate color list is a bitset over the
palette, and a conflict edge test is ``popcount(mask_u & mask_v) > 0``.

All routines operate on ``uint64`` words and are fully vectorized.  On
NumPy >= 2.0 we use :func:`numpy.bitwise_count` (a single hardware
``POPCNT`` per word); a portable SWAR fallback is provided and tested
against it.
"""

from __future__ import annotations

import numpy as np

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

# SWAR popcount constants for the uint64 fallback.
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


def _popcount_swar(words: np.ndarray) -> np.ndarray:
    """Branch-free SWAR popcount on a uint64 array (portable fallback)."""
    x = words.astype(np.uint64, copy=True)
    x -= (x >> np.uint64(1)) & _M1
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    return ((x * _H01) >> np.uint64(56)).astype(np.int64)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array.

    Parameters
    ----------
    words:
        Array of ``uint64`` words (any shape).

    Returns
    -------
    numpy.ndarray
        ``int64`` array of the same shape with the number of set bits in
        each word.
    """
    words = np.asarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    return _popcount_swar(words)


def popcount_u8(words: np.ndarray) -> np.ndarray:
    """Per-element population count as ``uint8`` (no ``int64`` widening).

    The tiled pair kernels accumulate per-word popcounts over whole
    ``(rows, cols)`` tiles; keeping the result at one byte per pair
    instead of eight is most of their memory-bandwidth win, so this
    variant avoids the :func:`popcount` cast to ``int64``.
    """
    words = np.asarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    x = words.copy()
    x -= (x >> np.uint64(1)) & _M1
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    return ((x * _H01) >> np.uint64(56)).astype(np.uint8)


def parity_block(
    a: np.ndarray,
    b: np.ndarray,
    tmp: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Popcount-parity of ``a[i] & b[j]`` for every row pair, as uint8.

    Parameters
    ----------
    a, b:
        Packed word matrices of shapes ``(R, W)`` and ``(C, W)``.
    tmp, out:
        Optional preallocated ``(R, C)`` scratch (uint64 word-AND
        buffer, uint8 result) — a tile sweep reuses them across tiles
        so the hot loop never touches the allocator.

    Returns
    -------
    numpy.ndarray
        ``(R, C)`` uint8 matrix with ``parity(popcount(a[i] & b[j]))``.

    This is the broadcast ("block") form of :func:`parity_rows` used by
    the tiled kernel engine: one word column at a time so the scratch
    stays at one ``(R, C)`` temporary instead of ``(R, C, W)``.  The
    per-word popcounts are accumulated with wrapping uint8 addition —
    addition mod 256 preserves parity — and folded to a bit at the end.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    shape = (a.shape[0], b.shape[0])
    if tmp is None:
        tmp = np.empty(shape, dtype=np.uint64)
    if out is None:
        out = np.zeros(shape, dtype=np.uint8)
    else:
        out[...] = 0
    for w in range(a.shape[1]):
        np.bitwise_and(a[:, w, None], b[None, :, w], out=tmp)
        if _HAS_BITWISE_COUNT:
            out += np.bitwise_count(tmp)
        else:
            out += popcount_u8(tmp)
    out &= np.uint8(1)
    return out


def anybit_block(
    a: np.ndarray,
    b: np.ndarray,
    tmp: np.ndarray | None = None,
    tmp_bool: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Boolean ``(R, C)`` matrix: True where ``a[i] & b[j]`` is nonzero.

    Block-broadcast form of the palette-intersection test
    (``popcount(mask_u & mask_v) > 0`` collapses to "any word AND is
    nonzero", so no popcount is needed at all).  ``tmp``/``tmp_bool``/
    ``out`` are optional ``(R, C)`` scratch buffers, reused across
    tiles by the sweep drivers.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    shape = (a.shape[0], b.shape[0])
    if tmp is None:
        tmp = np.empty(shape, dtype=np.uint64)
    if tmp_bool is None:
        tmp_bool = np.empty(shape, dtype=bool)
    if out is None:
        out = np.zeros(shape, dtype=bool)
    else:
        out[...] = False
    for w in range(a.shape[1]):
        np.bitwise_and(a[:, w, None], b[None, :, w], out=tmp)
        np.not_equal(tmp, 0, out=tmp_bool)
        out |= tmp_bool
    return out


def lowest_set_bit_rows(masks: np.ndarray) -> np.ndarray:
    """Index of the lowest set bit per row of a packed ``(n, W)`` matrix.

    Returns an ``int64`` vector with -1 for all-zero rows.  This is the
    one color-pick primitive shared across the coloring engines: the
    round-synchronous parallel list engine's tentative pick is the
    lowest set bit of ``list & ~forbidden``, and
    :func:`smallest_available_color` is the lowest set bit of the
    complemented presence bitset.

    Fully vectorized: per word column, isolate the lowest bit with
    ``m & (~m + 1)`` and recover its index via ``log2`` (exact — an
    isolated bit is a power of two, which float64 represents exactly).
    """
    masks = np.asarray(masks, dtype=np.uint64)
    if masks.ndim != 2:
        raise ValueError(f"expected a 2-D bitset matrix, got shape {masks.shape}")
    n, nwords = masks.shape
    out = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n, dtype=np.int64)
    for w in range(nwords):
        if remaining.size == 0:
            break
        col = masks[remaining, w]
        hit = col != 0
        if hit.any():
            words = col[hit]
            iso = words & (~words + np.uint64(1))
            bits = np.log2(iso.astype(np.float64)).astype(np.int64)
            out[remaining[hit]] = 64 * w + bits
            remaining = remaining[~hit]
    return out


def smallest_available_color(forbidden: np.ndarray) -> int:
    """Smallest non-negative integer not present in ``forbidden``.

    ``forbidden`` may contain -1 entries (uncolored neighbors); they are
    ignored.  The answer is at most ``len(forbidden)``, so a presence
    bitset of that width suffices: pack the small forbidden values,
    complement, and take the lowest set bit — the same
    :func:`lowest_set_bit_rows` primitive the list-coloring engines
    pick colors with.
    """
    forbidden = np.asarray(forbidden)
    valid = forbidden[forbidden >= 0]
    if valid.size == 0:
        return 0
    limit = int(valid.size)  # answer is in [0, limit]
    nwords = (limit + 64) // 64
    present = np.zeros(nwords, dtype=np.uint64)
    small = valid[valid <= limit].astype(np.int64)
    np.bitwise_or.at(
        present, small >> 6, np.uint64(1) << (small & 63).astype(np.uint64)
    )
    return int(lowest_set_bit_rows(~present[None, :])[0])


def bitset_indices(row: np.ndarray) -> np.ndarray:
    """Sorted bit indices set in a single packed bitset row.

    ``row`` is a ``(W,)`` uint64 vector; the result is the ascending
    ``int64`` array of set-bit positions (the canonical candidate order
    of the bitset list coloring).
    """
    row = np.ascontiguousarray(row, dtype=np.uint64)
    bits = np.unpackbits(row.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits).astype(np.int64)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Total population count along the last axis.

    For a ``(n, W)`` packed matrix this returns the per-row number of set
    bits as an ``int64`` vector of length ``n``.
    """
    return popcount(words).sum(axis=-1)


def parity_rows(words: np.ndarray) -> np.ndarray:
    """Parity (popcount mod 2) along the last axis, as ``uint8``.

    This is the anticommutation oracle: two encoded Pauli strings
    anticommute iff the parity of ``popcount(a & b)`` is odd.
    """
    return (popcount_rows(words) & 1).astype(np.uint8)


def packbits_rows(bits: np.ndarray, width: int | None = None) -> np.ndarray:
    """Pack a boolean/0-1 matrix into rows of uint64 words (LSB-first).

    Parameters
    ----------
    bits:
        ``(n, B)`` array of 0/1 values; row ``i`` holds the bits of item
        ``i``.  Bit ``j`` of row ``i`` lands in word ``j // 64`` at bit
        position ``j % 64``.
    width:
        Optional total bit width; defaults to ``B``.  Extra bits are
        zero-padded so callers can reserve room.

    Returns
    -------
    numpy.ndarray
        ``(n, ceil(width / 64))`` array of ``uint64``.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"expected a 2-D bit matrix, got shape {bits.shape}")
    n, b = bits.shape
    if width is None:
        width = b
    if width < b:
        raise ValueError(f"width {width} smaller than bit count {b}")
    nwords = (width + 63) // 64
    out = np.zeros((n, nwords), dtype=np.uint64)
    cols = np.arange(b)
    words = cols // 64
    shifts = (cols % 64).astype(np.uint64)
    vals = bits.astype(np.uint64)
    # Accumulate each bit column into its word column.  Grouping by word
    # keeps this vectorized without np.add.at scatter overhead.
    for w in range(nwords):
        sel = words == w
        if not sel.any():
            continue
        contrib = vals[:, sel] << shifts[sel]
        out[:, w] = np.bitwise_or.reduce(contrib, axis=1)
    return out


def bitset_set(masks: np.ndarray, row: int, bit: int) -> None:
    """Set ``bit`` in bitset ``row`` of a packed ``(n, W)`` uint64 matrix."""
    masks[row, bit >> 6] |= np.uint64(1) << np.uint64(bit & 63)


def bitset_clear(masks: np.ndarray, row: int, bit: int) -> None:
    """Clear ``bit`` in bitset ``row`` of a packed ``(n, W)`` uint64 matrix."""
    masks[row, bit >> 6] &= ~(np.uint64(1) << np.uint64(bit & 63))


def bitset_test(masks: np.ndarray, row: int, bit: int) -> bool:
    """Return True iff ``bit`` is set in bitset ``row``."""
    return bool((masks[row, bit >> 6] >> np.uint64(bit & 63)) & np.uint64(1))


def bitset_from_lists(lists: list[np.ndarray] | np.ndarray, nbits: int) -> np.ndarray:
    """Build packed bitsets from per-row integer index lists.

    Parameters
    ----------
    lists:
        Either a ragged list of 1-D integer arrays or a dense ``(n, L)``
        integer matrix; entries are bit indices in ``[0, nbits)``.
        Negative entries in a dense matrix are treated as padding and
        skipped.
    nbits:
        Size of the bit domain (e.g. the palette size).

    Returns
    -------
    numpy.ndarray
        ``(n, ceil(nbits / 64))`` uint64 bitset matrix.
    """
    nwords = (nbits + 63) // 64
    if isinstance(lists, np.ndarray) and lists.ndim == 2:
        n, _ = lists.shape
        out = np.zeros((n, nwords), dtype=np.uint64)
        rows, cols = np.nonzero(lists >= 0)
        idx = lists[rows, cols].astype(np.int64)
        if idx.size and (idx.max() >= nbits):
            raise ValueError("bit index out of range")
        np.bitwise_or.at(
            out,
            (rows, idx >> 6),
            np.uint64(1) << (idx & 63).astype(np.uint64),
        )
        return out
    out = np.zeros((len(lists), nwords), dtype=np.uint64)
    for i, lst in enumerate(lists):
        arr = np.asarray(lst, dtype=np.int64)
        if arr.size == 0:
            continue
        if arr.max() >= nbits or arr.min() < 0:
            raise ValueError("bit index out of range")
        np.bitwise_or.at(
            out[i], arr >> 6, np.uint64(1) << (arr & 63).astype(np.uint64)
        )
    return out
