"""Low-level utilities shared across the Picasso reproduction.

Submodules
----------
bits
    Population-count helpers and packed-bitset operations used by the
    Pauli anticommutation kernels and the color-list intersection tests.
rng
    Seed-spawning helpers so that every randomized component draws from
    an explicit :class:`numpy.random.Generator`.
chunking
    Pair-space chunk iteration used by both the host and device kernels.
"""

from repro.util.bits import (
    packbits_rows,
    popcount,
    popcount_rows,
    parity_rows,
)
from repro.util.chunking import iter_pair_chunks, pair_index_to_ij, num_pairs
from repro.util.rng import as_generator, spawn_generators

__all__ = [
    "packbits_rows",
    "popcount",
    "popcount_rows",
    "parity_rows",
    "iter_pair_chunks",
    "pair_index_to_ij",
    "num_pairs",
    "as_generator",
    "spawn_generators",
]
