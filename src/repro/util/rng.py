"""Seeding discipline.

Every randomized component in the library takes a ``seed`` argument that
may be an int, ``None`` or an existing :class:`numpy.random.Generator`.
These helpers normalize that argument and spawn statistically
independent child streams for parallel workers (mirroring the paper's
use of five distinct seeds per experiment).
"""

from __future__ import annotations

from typing import Any

import numpy as np


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | None, n: int
) -> list[np.random.Generator]:
    """Spawn ``n`` independent child generators from ``seed``.

    Child streams are derived via :meth:`numpy.random.Generator.spawn`
    so parallel workers never share a stream.
    """
    return list(as_generator(seed).spawn(n))


def rng_state(gen: np.random.Generator) -> dict[str, Any]:
    """The bit-generator state of ``gen`` — a plain, picklable dict.

    This is the exact object the checkpoint format persists: restoring
    it with :func:`set_rng_state` makes the generator emit the
    identical tail sequence it would have produced uninterrupted, which
    is the mechanism behind bit-identical resume."""
    return gen.bit_generator.state


def set_rng_state(
    gen: np.random.Generator, state: dict[str, Any]
) -> np.random.Generator:
    """Restore a state captured by :func:`rng_state`; returns ``gen``.

    The state dict names its bit-generator class, and numpy refuses a
    mismatch — a PCG64 state cannot be poured into an MT19937."""
    gen.bit_generator.state = state
    return gen
