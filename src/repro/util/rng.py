"""Seeding discipline.

Every randomized component in the library takes a ``seed`` argument that
may be an int, ``None`` or an existing :class:`numpy.random.Generator`.
These helpers normalize that argument and spawn statistically
independent child streams for parallel workers (mirroring the paper's
use of five distinct seeds per experiment).
"""

from __future__ import annotations

import numpy as np


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | None, n: int
) -> list[np.random.Generator]:
    """Spawn ``n`` independent child generators from ``seed``.

    Child streams are derived via :meth:`numpy.random.Generator.spawn`
    so parallel workers never share a stream.
    """
    return list(as_generator(seed).spawn(n))
