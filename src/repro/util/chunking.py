"""Flat pair-index chunking.

The paper's GPU kernel assigns one thread to each of the
``n * (n - 1) / 2`` unordered vertex pairs (§V).  We reproduce that
decomposition with a flat pair index ``k`` in ``[0, n*(n-1)/2)`` and an
analytic inverse mapping ``k -> (i, j)``, so both the vectorized device
kernel and the multiprocessing layer can slice pair space into chunks
without materializing index arrays for the whole quadratic domain.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def num_pairs(n: int) -> int:
    """Number of unordered pairs over ``n`` items, ``n * (n-1) // 2``."""
    return n * (n - 1) // 2


def pair_index_to_ij(k: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map flat unordered-pair indices to ``(i, j)`` with ``i < j``.

    Uses the row-major enumeration ``(0,1), (0,2), ..., (0,n-1), (1,2),
    ...``.  For a flat index ``k``, row ``i`` satisfies
    ``offset(i) <= k < offset(i+1)`` where
    ``offset(i) = i*n - i*(i+1)/2``; solving the quadratic gives a
    closed-form inverse, fixed up for floating-point edge error.

    Parameters
    ----------
    k:
        Integer array of flat pair indices.
    n:
        Number of items.

    Returns
    -------
    (i, j):
        ``int64`` arrays with ``0 <= i < j < n``.
    """
    k = np.asarray(k, dtype=np.int64)
    if k.size and (k.min() < 0 or k.max() >= num_pairs(n)):
        raise ValueError("pair index out of range")
    nf = float(n)
    # i = floor(n - 1/2 - sqrt((n - 1/2)^2 - 2k))
    disc = (nf - 0.5) ** 2 - 2.0 * k.astype(np.float64)
    i = np.floor(nf - 0.5 - np.sqrt(np.maximum(disc, 0.0))).astype(np.int64)
    # Floating point can land one row off near boundaries; correct both ways.
    off = i * n - (i * (i + 1)) // 2
    too_big = off > k
    while too_big.any():
        i[too_big] -= 1
        off = i * n - (i * (i + 1)) // 2
        too_big = off > k
    nxt = (i + 1) * n - ((i + 1) * (i + 2)) // 2
    too_small = k >= nxt
    while too_small.any():
        i[too_small] += 1
        off = i * n - (i * (i + 1)) // 2
        nxt = (i + 1) * n - ((i + 1) * (i + 2)) // 2
        too_small = k >= nxt
    j = k - off + i + 1
    return i, j


def iter_pair_chunks(n: int, chunk_size: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(i, j)`` index arrays covering all unordered pairs.

    Each yielded chunk holds at most ``chunk_size`` pairs.  Chunks are
    contiguous in the flat pair enumeration, which maps to contiguous
    memory traffic over the packed Pauli matrix (the cache-friendliness
    the HPC guide calls for).
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    total = num_pairs(n)
    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        k = np.arange(start, stop, dtype=np.int64)
        yield pair_index_to_ij(k, n)
