"""Flat pair-index chunking.

The paper's GPU kernel assigns one thread to each of the
``n * (n - 1) / 2`` unordered vertex pairs (§V).  We reproduce that
decomposition with a flat pair index ``k`` in ``[0, n*(n-1)/2)`` and an
analytic inverse mapping ``k -> (i, j)``, so both the vectorized device
kernel and the multiprocessing layer can slice pair space into chunks
without materializing index arrays for the whole quadratic domain.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def num_pairs(n: int) -> int:
    """Number of unordered pairs over ``n`` items, ``n * (n-1) // 2``."""
    return n * (n - 1) // 2


#: Largest ``n`` for which the analytic float64 inverse is exact: the
#: discriminant ``(n - 0.5)^2 - 2k`` mixes quantities up to ``~n^2``,
#: and float64 holds integers (and the 0.25 fraction) exactly only
#: below ``2^52``-ish — so ``n <= 2^26`` keeps ``n^2 <= 2^52`` and the
#: subtraction exact.  Beyond that, pair indices silently lose low bits
#: in the float conversion, so the mapping routes to an exact integer
#: bisection instead.
_ANALYTIC_MAX_N = 1 << 26


#: Cache of row-offset tables keyed by ``n`` (tiny LRU: the driver and
#: the multiprocessing workers each hammer one or two values of ``n``).
_ROW_OFFSET_CACHE: dict[int, np.ndarray] = {}
_ROW_OFFSET_CACHE_MAX = 4


def _row_offsets(n: int) -> np.ndarray:
    """``offset(i) = i*n - i*(i+1)/2`` for ``i`` in ``[0, n)``, cached.

    Strictly increasing for ``i <= n-1``, so it is directly
    searchsorted-able when the analytic inverse lands a row off.
    """
    cached = _ROW_OFFSET_CACHE.get(n)
    if cached is None:
        i = np.arange(n, dtype=np.int64)
        cached = i * n - (i * (i + 1)) // 2
        if len(_ROW_OFFSET_CACHE) >= _ROW_OFFSET_CACHE_MAX:
            _ROW_OFFSET_CACHE.pop(next(iter(_ROW_OFFSET_CACHE)))
        _ROW_OFFSET_CACHE[n] = cached
    return cached


def _rows_by_bisect(k: np.ndarray, n: int) -> np.ndarray:
    """Exact row lookup ``i = max{i : offset(i) <= k}`` in pure int64.

    Vectorized binary search over the *analytic* offset formula — no
    ``O(n)`` offset table (the searchsorted fallback would need one,
    which at the scales that route here would be gigabytes).  All
    arithmetic stays in int64: ``offset(i) = i*(2n - i - 1)/2`` peaks
    at ``~2 * num_pairs(n)``, which the caller has bounded below
    ``2^63``.
    """
    lo = np.zeros(len(k), dtype=np.int64)
    hi = np.full(len(k), max(n - 2, 0), dtype=np.int64)
    while True:
        active = lo < hi
        if not active.any():
            return lo
        mid = (lo + hi + 1) >> 1
        off = (mid * (2 * n - mid - 1)) >> 1
        go_up = off <= k
        lo = np.where(active & go_up, mid, lo)
        hi = np.where(active & ~go_up, mid - 1, hi)


def pair_index_to_ij(k: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map flat unordered-pair indices to ``(i, j)`` with ``i < j``.

    Uses the row-major enumeration ``(0,1), (0,2), ..., (0,n-1), (1,2),
    ...``.  For a flat index ``k``, row ``i`` satisfies
    ``offset(i) <= k < offset(i+1)`` where
    ``offset(i) = i*n - i*(i+1)/2``; solving the quadratic gives a
    closed-form inverse, fixed up for floating-point edge error.

    The closed form runs through float64, whose 53-bit mantissa cannot
    hold pair indices once ``n`` exceeds :data:`_ANALYTIC_MAX_N`
    (``2^26`` — pair space ``~2^51``); those sizes route to an exact
    int64 bisection of the offset formula instead of silently losing
    low bits.  Pair spaces at or beyond ``2^62`` (where even the int64
    intermediates of the bisection would wrap) raise ``OverflowError``.

    Parameters
    ----------
    k:
        Integer array of flat pair indices.
    n:
        Number of items.

    Returns
    -------
    (i, j):
        ``int64`` arrays with ``0 <= i < j < n``.
    """
    k = np.asarray(k, dtype=np.int64)
    total = num_pairs(n)
    if total >= 1 << 62:
        raise OverflowError(
            f"pair space of n={n} items ({total} pairs) exceeds the exact "
            "int64 range of the row bisection (2^62)"
        )
    if k.size and (k.min() < 0 or k.max() >= total):
        raise ValueError("pair index out of range")
    if n > _ANALYTIC_MAX_N:
        # Overflow guard: float64 would silently truncate k and the
        # discriminant at this scale — take the exact integer path.
        i = _rows_by_bisect(k, n)
        off = i * n - (i * (i + 1)) // 2
        return i, k - off + i + 1
    nf = float(n)
    # Analytic fast path: i = floor(n - 1/2 - sqrt((n - 1/2)^2 - 2k)).
    disc = (nf - 0.5) ** 2 - 2.0 * k.astype(np.float64)
    i = np.floor(nf - 0.5 - np.sqrt(np.maximum(disc, 0.0))).astype(np.int64)
    np.clip(i, 0, max(n - 2, 0), out=i)
    # Floating point can land a row off near boundaries.  Instead of the
    # old repeated +-1 fixup loops, resolve every misfit in one shot by
    # binary-searching the cached row-offset table.
    off = i * n - (i * (i + 1)) // 2
    bad = (off > k) | (k >= off + (n - 1 - i))
    if bad.any():
        i[bad] = np.searchsorted(_row_offsets(n), k[bad], side="right") - 1
        off = i * n - (i * (i + 1)) // 2
    j = k - off + i + 1
    return i, j


def iter_pair_chunks(n: int, chunk_size: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(i, j)`` index arrays covering all unordered pairs.

    Each yielded chunk holds at most ``chunk_size`` pairs.  Chunks are
    contiguous in the flat pair enumeration, which maps to contiguous
    memory traffic over the packed Pauli matrix (the cache-friendliness
    the HPC guide calls for).
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    total = num_pairs(n)
    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        k = np.arange(start, stop, dtype=np.int64)
        yield pair_index_to_ij(k, n)
