"""Flat pair-index chunking.

The paper's GPU kernel assigns one thread to each of the
``n * (n - 1) / 2`` unordered vertex pairs (§V).  We reproduce that
decomposition with a flat pair index ``k`` in ``[0, n*(n-1)/2)`` and an
analytic inverse mapping ``k -> (i, j)``, so both the vectorized device
kernel and the multiprocessing layer can slice pair space into chunks
without materializing index arrays for the whole quadratic domain.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def num_pairs(n: int) -> int:
    """Number of unordered pairs over ``n`` items, ``n * (n-1) // 2``."""
    return n * (n - 1) // 2


#: Cache of row-offset tables keyed by ``n`` (tiny LRU: the driver and
#: the multiprocessing workers each hammer one or two values of ``n``).
_ROW_OFFSET_CACHE: dict[int, np.ndarray] = {}
_ROW_OFFSET_CACHE_MAX = 4


def _row_offsets(n: int) -> np.ndarray:
    """``offset(i) = i*n - i*(i+1)/2`` for ``i`` in ``[0, n)``, cached.

    Strictly increasing for ``i <= n-1``, so it is directly
    searchsorted-able when the analytic inverse lands a row off.
    """
    cached = _ROW_OFFSET_CACHE.get(n)
    if cached is None:
        i = np.arange(n, dtype=np.int64)
        cached = i * n - (i * (i + 1)) // 2
        if len(_ROW_OFFSET_CACHE) >= _ROW_OFFSET_CACHE_MAX:
            _ROW_OFFSET_CACHE.pop(next(iter(_ROW_OFFSET_CACHE)))
        _ROW_OFFSET_CACHE[n] = cached
    return cached


def pair_index_to_ij(k: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map flat unordered-pair indices to ``(i, j)`` with ``i < j``.

    Uses the row-major enumeration ``(0,1), (0,2), ..., (0,n-1), (1,2),
    ...``.  For a flat index ``k``, row ``i`` satisfies
    ``offset(i) <= k < offset(i+1)`` where
    ``offset(i) = i*n - i*(i+1)/2``; solving the quadratic gives a
    closed-form inverse, fixed up for floating-point edge error.

    Parameters
    ----------
    k:
        Integer array of flat pair indices.
    n:
        Number of items.

    Returns
    -------
    (i, j):
        ``int64`` arrays with ``0 <= i < j < n``.
    """
    k = np.asarray(k, dtype=np.int64)
    if k.size and (k.min() < 0 or k.max() >= num_pairs(n)):
        raise ValueError("pair index out of range")
    nf = float(n)
    # Analytic fast path: i = floor(n - 1/2 - sqrt((n - 1/2)^2 - 2k)).
    disc = (nf - 0.5) ** 2 - 2.0 * k.astype(np.float64)
    i = np.floor(nf - 0.5 - np.sqrt(np.maximum(disc, 0.0))).astype(np.int64)
    np.clip(i, 0, max(n - 2, 0), out=i)
    # Floating point can land a row off near boundaries.  Instead of the
    # old repeated +-1 fixup loops, resolve every misfit in one shot by
    # binary-searching the cached row-offset table.
    off = i * n - (i * (i + 1)) // 2
    bad = (off > k) | (k >= off + (n - 1 - i))
    if bad.any():
        i[bad] = np.searchsorted(_row_offsets(n), k[bad], side="right") - 1
        off = i * n - (i * (i + 1)) // 2
    j = k - off + i + 1
    return i, j


def iter_pair_chunks(n: int, chunk_size: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(i, j)`` index arrays covering all unordered pairs.

    Each yielded chunk holds at most ``chunk_size`` pairs.  Chunks are
    contiguous in the flat pair enumeration, which maps to contiguous
    memory traffic over the packed Pauli matrix (the cache-friendliness
    the HPC guide calls for).
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    total = num_pairs(n)
    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        k = np.arange(start, stop, dtype=np.int64)
        yield pair_index_to_ij(k, n)
