"""Linear algebra over GF(2).

Needed by the qubit-tapering extension: Z2 symmetries of a Hamiltonian
are the kernel of its Pauli terms' symplectic parity-check matrix.
Matrices are ``uint8`` 0/1 NumPy arrays; arithmetic is XOR.
"""

from __future__ import annotations

import numpy as np


def gf2_row_reduce(mat: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns the RREF matrix and the list of pivot column indices.
    """
    m = (np.asarray(mat, dtype=np.uint8) & 1).copy()
    if m.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    rows, cols = m.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        # Find a pivot row at or below r.
        hit = np.nonzero(m[r:, c])[0]
        if len(hit) == 0:
            continue
        pr = r + int(hit[0])
        if pr != r:
            m[[r, pr]] = m[[pr, r]]
        # Eliminate the column everywhere else (RREF, not just REF).
        elim = np.nonzero(m[:, c])[0]
        for er in elim:
            if er != r:
                m[er] ^= m[r]
        pivots.append(c)
        r += 1
    return m, pivots


def gf2_rank(mat: np.ndarray) -> int:
    """Rank over GF(2)."""
    _, pivots = gf2_row_reduce(mat)
    return len(pivots)


def gf2_nullspace(mat: np.ndarray) -> np.ndarray:
    """Basis of the right nullspace over GF(2).

    Returns a ``(k, cols)`` matrix whose rows satisfy ``mat @ v = 0``
    (mod 2); ``k = cols - rank``.
    """
    mat = np.asarray(mat, dtype=np.uint8) & 1
    rows, cols = mat.shape
    rref, pivots = gf2_row_reduce(mat)
    free = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free), cols), dtype=np.uint8)
    for k, fc in enumerate(free):
        basis[k, fc] = 1
        # Back-substitute: pivot variable r equals the free column's
        # entry in its RREF row.
        for r, pc in enumerate(pivots):
            basis[k, pc] = rref[r, fc]
    return basis


def gf2_solve(mat: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """One solution of ``mat @ x = rhs`` over GF(2), or None if
    inconsistent."""
    mat = np.asarray(mat, dtype=np.uint8) & 1
    rhs = np.asarray(rhs, dtype=np.uint8) & 1
    rows, cols = mat.shape
    aug = np.concatenate([mat, rhs[:, None]], axis=1)
    rref, pivots = gf2_row_reduce(aug)
    if cols in pivots:
        return None  # pivot in the RHS column -> inconsistent
    x = np.zeros(cols, dtype=np.uint8)
    for r, pc in enumerate(pivots):
        x[pc] = rref[r, cols]
    return x
