"""Zero-copy shared-memory gather for the parallel pair sweep.

The PR 2 pool returned every per-strip hit array by pickling it through
the pool's result pipe — output-proportional *communication*, but each
conflict edge still crossed a pipe twice (pickle, unpickle).  This
module removes that copy: the dispatcher allocates one
``multiprocessing.shared_memory`` COO region sized by the paper's
Lemma 2 conflict-edge estimate, every strip of the sweep gets a
reserved slot range inside it, workers write their ``(i, j)`` hits
directly into their slices, and only a per-strip *hit count* (one
integer) travels back through the pipe.  The dispatcher then hands
NumPy views over the shared region straight to
:func:`repro.graphs.csr.csr_from_coo_chunks` — no result pickling, no
gather-side concatenation.

Sizing follows Lemma 2: the expected conflict-edge count is
``|E| * p_share`` with ``p_share`` the exact list-intersection
probability; strips reserve slots proportional to their pair weight
(never more than the weight itself — a strip can not produce more hits
than pairs).  Because the estimate is an expectation, a strip can
overshoot its reservation; the worker then reports the exact deficit
and the dispatcher **grows and retries**: a second region sized by the
reported exact counts re-runs only the overflowed strips.  Per-strip
results keep canonical strip order either way, so the shm gather is
bit-identical to the pickled gather and to the serial sweep.

Worker-side attachments are cached per region and closed by the sweep
teardown broadcast (:func:`repro.parallel.pool` clears worker state in
a ``finally``); the dispatcher closes and unlinks the regions when the
gather context exits — views into the region are only valid inside the
``with`` block.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro import telemetry
from repro.util.chunking import num_pairs

__all__ = [
    "SHM_SAFETY",
    "MIN_STRIP_SLOTS",
    "ShmCooRegion",
    "ShmRegionPool",
    "ShmGatherResult",
    "estimate_conflict_edges",
    "plan_strip_slots",
    "shm_conflict_gather",
    "write_strip_hits",
    "close_worker_attachments",
]

#: Multiplicative headroom over the Lemma 2 expectation when reserving
#: strip slots — expectation, not bound, so give variance some room
#: (undershoot is survivable: the grow-and-retry path re-runs only the
#: overflowed strips).
SHM_SAFETY = 1.5

#: Floor on any strip's reservation, so near-zero estimates still give
#: every strip a useful slice (a few cache lines; never exceeds the
#: strip's own pair count).
MIN_STRIP_SLOTS = 32

#: Bytes per COO slot: one int64 ``i`` plus one int64 ``j``.
SLOT_BYTES = 16


def _attach_untracked(name: str):
    """Attach an existing segment without resource-tracker bookkeeping.

    The dispatcher and its pool workers share one resource tracker (the
    fd rides in the process preparation data), and only the *creator*
    should hold the registration: a worker-side register can race the
    owner's unlink-time unregister through the tracker pipe and leave a
    phantom entry ("leaked shared_memory" warnings at shutdown), while
    a worker-side unregister strips the owner's entry.  Python 3.13+
    exposes this as ``track=False``; older interpreters register
    unconditionally, so the call is stubbed out for the duration of the
    constructor (pool workers run tasks single-threaded, so the stub
    cannot leak into a concurrent create).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShmCooRegion:
    """A shared-memory COO buffer: ``capacity`` slots of ``(u, v)``.

    Layout is two back-to-back int64 arrays (all ``u`` then all ``v``),
    so a strip's reservation ``[off, off + cap)`` is one contiguous
    slice of each.  The creator owns the segment (close + unlink);
    workers attach by name and only close.
    """

    def __init__(self, shm, capacity: int, owner: bool) -> None:
        self._shm = shm
        self.capacity = int(capacity)
        self.owner = owner
        self.u = np.frombuffer(shm.buf, dtype=np.int64, count=self.capacity)
        self.v = np.frombuffer(
            shm.buf, dtype=np.int64, count=self.capacity,
            offset=8 * self.capacity,
        )

    @classmethod
    def create(cls, capacity: int) -> "ShmCooRegion":
        capacity = max(int(capacity), 1)
        shm = shared_memory.SharedMemory(
            create=True, size=SLOT_BYTES * capacity
        )
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmCooRegion":
        return cls(_attach_untracked(name), capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return SLOT_BYTES * self.capacity

    def slice(self, offset: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of one reservation's first ``count`` filled slots."""
        return (
            self.u[offset : offset + count],
            self.v[offset : offset + count],
        )

    def close(self) -> None:
        """Drop the NumPy views and unmap the segment."""
        self.u = self.v = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            # A consumer kept a view past the gather context; the map
            # stays until that view dies, but the name can still go.
            pass

    def unlink(self) -> None:
        if self.owner:
            self._shm.unlink()


class ShmRegionPool:
    """Double-buffered region reuse across the sweeps of one run.

    Creating, zero-mapping and unlinking a fresh segment every
    iteration is pure churn when Algorithm 1 runs many rounds over a
    shrinking active set.  The pool keeps ``n_slots`` regions alive and
    hands them out round-robin: a slot whose region is large enough is
    reused as-is (workers re-attach by name through their own cache —
    stale bytes beyond each strip's reported count are never read); a
    too-small one is replaced.  Two slots double-buffer: a straggling
    view of the previous sweep's region never aliases the one being
    written.  The owner must :meth:`close` the pool when the run ends —
    pooled regions are deliberately *not* released by the gather
    context.
    """

    def __init__(self, n_slots: int = 2) -> None:
        self._slots: list[ShmCooRegion | None] = [None] * max(1, int(n_slots))
        self._next = 0

    def acquire(self, capacity: int) -> ShmCooRegion:
        """A region with at least ``capacity`` slots, reused if possible."""
        capacity = max(int(capacity), 1)
        k = self._next
        self._next = (k + 1) % len(self._slots)
        region = self._slots[k]
        if region is not None and region.capacity >= capacity:
            telemetry.count("shm.region.reuse")
            return region
        if region is not None:
            region.close()
            region.unlink()
        region = ShmCooRegion.create(capacity)
        telemetry.count("shm.region.create")
        self._slots[k] = region
        return region

    def close(self) -> None:
        """Release every pooled region.  Idempotent."""
        for k, region in enumerate(self._slots):
            if region is not None:
                region.close()
                region.unlink()
                self._slots[k] = None

    def __enter__(self) -> "ShmRegionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# Worker-global attachment cache: one attach per region per worker,
# reused across the worker's strips.  Cleared by the sweep teardown
# broadcast (and by the next payload install).
_ATTACHED: dict[str, ShmCooRegion] = {}


def _attached_region(name: str, capacity: int) -> ShmCooRegion:
    region = _ATTACHED.get(name)
    if region is None:
        region = ShmCooRegion.attach(name, capacity)
        _ATTACHED[name] = region
    return region


def close_worker_attachments() -> None:
    """Close every cached worker-side attachment (sweep teardown)."""
    for region in _ATTACHED.values():
        region.close()
    _ATTACHED.clear()


def write_strip_hits(
    u: np.ndarray, v: np.ndarray, spec: tuple[str, int, int, int]
) -> int:
    """Write one strip's hits into its reserved slice; return the count.

    ``spec`` is ``(region_name, region_capacity, offset, slot_cap)``.
    A strip whose hits exceed its reservation returns the *negated*
    exact hit count instead of writing — the dispatcher's grow-and-retry
    signal (the retry region is then sized exactly, so it cannot
    overflow again).
    """
    name, capacity, offset, slot_cap = spec
    n_hits = len(u)
    if n_hits > slot_cap:
        return -n_hits
    if n_hits:
        region = _attached_region(name, capacity)
        region.u[offset : offset + n_hits] = u
        region.v[offset : offset + n_hits] = v
    return n_hits


def estimate_conflict_edges(n: int, colmasks: np.ndarray) -> float:
    """Lemma 2 conflict-edge expectation derived from the masks alone.

    ``E[|Ec|] = |E| * p_share`` needs the colored graph's edge count,
    which the sweep exists to avoid knowing — so ``|E|`` is bounded by
    all ``n(n-1)/2`` pairs and ``p_share`` is the exact intersection
    probability for the palette width and mean list size read off the
    packed masks.  An overestimate of the expectation, but variance cuts
    the other way; the grow-and-retry path absorbs what is left.
    """
    total = num_pairs(n)
    if total == 0 or colmasks.size == 0:
        return 0.0
    # Palette size: highest set bit across all masks, + 1.
    orbits = np.bitwise_or.reduce(colmasks, axis=0)
    nz = np.flatnonzero(orbits)
    if len(nz) == 0:
        return 0.0
    w = int(nz[-1])
    palette = 64 * w + int(orbits[w]).bit_length()
    from repro.util.bits import popcount_rows

    list_size = max(1, round(float(popcount_rows(colmasks).mean())))
    list_size = min(list_size, palette)
    # Exact p_share (lazy import: repro.core pulls this package in).
    from repro.core.analysis import list_share_probability

    return total * list_share_probability(palette, list_size)


def staging_bytes_hint(
    n: int,
    est_edges: float,
    n_strips: int,
    safety: float = SHM_SAFETY,
) -> int:
    """Upper-bound byte hint for the shm staging a sweep will request.

    Callers that charge the staging against a budget (the device build)
    reserve this *before* sizing their own output buffer, so the
    staging allocation cannot find the budget already fully claimed.
    Mirrors :func:`plan_strip_slots`: the proportional share plus the
    per-strip floor and ceil cushion, capped at pair space.
    """
    total = num_pairs(n)
    if total == 0:
        return SLOT_BYTES  # the region clamps to one slot
    slots = int(max(est_edges, 0.0) * safety) + n_strips * (MIN_STRIP_SLOTS + 1)
    return SLOT_BYTES * max(min(slots, total), 1)


def plan_strip_slots(
    weights: np.ndarray,
    est_edges: float,
    safety: float = SHM_SAFETY,
) -> np.ndarray:
    """Slot reservation per strip from the Lemma 2 estimate.

    Slots are proportional to each strip's pair weight (uniform random
    lists make hit density uniform over pair space), floored at
    :data:`MIN_STRIP_SLOTS` and capped at the weight itself — a strip
    cannot hit more pairs than it scans, so a full-weight reservation
    can never overflow.
    """
    weights = np.asarray(weights, dtype=np.int64)
    total = int(weights.sum())
    if total <= 0:
        return np.zeros(len(weights), dtype=np.int64)
    density = max(float(est_edges), 0.0) * float(safety) / total
    slots = np.ceil(weights * density).astype(np.int64) + MIN_STRIP_SLOTS
    return np.minimum(slots, weights)


@dataclass
class ShmGatherResult:
    """Outcome of one shared-memory sweep.

    ``chunks`` holds per-strip ``(u, v)`` int64 views into the shared
    region(s), in canonical strip order — the exact stream the pickled
    gather would have produced, valid only inside the gather context.
    A fused sweep also fills ``strip_verts``: each strip's sorted
    unique conflict-vertex ids (plain arrays off the result pipe, one
    entry per strip, aligned with the task order).
    """

    chunks: list = field(default_factory=list)
    strip_verts: list = field(default_factory=list)
    n_edges: int = 0
    n_strips: int = 0
    n_zero_strips: int = 0
    n_retries: int = 0
    total_slots: int = 0
    nbytes: int = 0


@contextmanager
def shm_conflict_gather(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn=None,
    tile_bytes: int | None = None,
    tile: int | None = None,
    executor=None,
    est_conflict_edges: float | None = None,
    safety: float = SHM_SAFETY,
    source=None,
    active_idx: np.ndarray | None = None,
    region_cb=None,
    fused: bool = False,
    region_pool: "ShmRegionPool | None" = None,
    kernel_backend: str | None = None,
):
    """Run one conflict sweep through the shared-memory gather path.

    Same domain decomposition, payload shipping and strip order as
    :func:`repro.parallel.pool.conflict_sweep_chunks`, but hit arrays
    come back through a shared COO region instead of the result pipe.
    Yields a :class:`ShmGatherResult` whose ``chunks`` feed
    :func:`repro.graphs.csr.csr_from_coo_chunks` with no copy; the
    region is closed and unlinked when the context exits.

    ``region_cb``, when given, is called with the byte size of each
    region before it is created — the hook the device build uses to
    charge shared staging against its budget (it may raise to veto).
    ``source``/``active_idx`` enable the persistent-pool delta payload
    (see :mod:`repro.parallel.pool`).  Works with any executor; the
    serial backend simply runs the same strip tasks in-process.

    ``fused`` runs the fused strip tasks, which additionally return
    each strip's pre-swept conflict-vertex set through the result pipe
    (filling ``result.strip_verts``); overflowed strips keep their
    main-pass vertex set — the sweep ran even though the write did not,
    and the retry's identical set is discarded.  ``region_pool``
    (a :class:`ShmRegionPool`) supplies the *main* region from a reused
    double-buffered pool instead of a per-sweep segment; the pool owns
    that region's lifetime, while retry regions always stay per-sweep.
    Pooled acquisitions skip ``region_cb`` (the budget hook charges new
    segments, and the device build never pools).
    """
    # Imported here, not at module top: pool.py imports this module for
    # the worker-side write path.
    from repro.parallel import pool as _pool
    from repro.parallel.executor import SerialExecutor

    if executor is None:
        executor = SerialExecutor()
    if engine == "tiled" and tile is None:
        from repro.device.tiles import DEFAULT_TILE_BYTES, tile_edge

        tile = tile_edge(
            colmasks.shape[1], tile_bytes or DEFAULT_TILE_BYTES, n=n
        )
    tasks, weights = _pool.sweep_strip_tasks(n, engine, tile, executor)
    result = ShmGatherResult(n_strips=len(tasks))
    if not tasks:
        yield result
        return

    if est_conflict_edges is None:
        est_conflict_edges = estimate_conflict_edges(n, colmasks)
    slots = plan_strip_slots(weights, est_conflict_edges, safety)
    offsets = np.zeros(len(slots) + 1, dtype=np.int64)
    np.cumsum(slots, out=offsets[1:])
    result.total_slots = int(offsets[-1])

    payload_args = dict(
        n=n, engine=engine, tile=tile, chunk_size=chunk_size,
        colmasks=colmasks, edge_mask_fn=edge_mask_fn,
        edge_block_fn=edge_block_fn,
        source=source, active_idx=active_idx, executor=executor,
        kernel_backend=kernel_backend,
    )
    if fused:
        task_fn = (
            _pool.run_tile_strip_shm_fused if engine == "tiled"
            else _pool.run_pair_range_shm_fused
        )
    else:
        task_fn = (
            _pool.run_tile_strip_shm if engine == "tiled"
            else _pool.run_pair_range_shm
        )

    regions: list[ShmCooRegion] = []

    def _new_region(capacity: int) -> ShmCooRegion:
        capacity = max(int(capacity), 1)
        if region_cb is not None:
            region_cb(SLOT_BYTES * capacity)
        region = ShmCooRegion.create(capacity)
        telemetry.count("shm.region.create")
        regions.append(region)
        return region

    def _counts(raw: list) -> list[int]:
        """Split fused ``(count, verts)`` results; bare counts pass through."""
        if not fused:
            return raw
        return [c for c, _ in raw]

    try:
        if region_pool is not None:
            region = region_pool.acquire(result.total_slots)
        else:
            region = _new_region(result.total_slots)
        shm_tasks = [
            (
                t,
                (region.name, region.capacity, int(offsets[k]), int(slots[k])),
            )
            for k, t in enumerate(tasks)
        ]
        raw = list(
            _pool.imap_sweep(executor, task_fn, shm_tasks, payload_args)
        )
        counts = _counts(raw)
        if fused:
            result.strip_verts = [verts for _, verts in raw]

        # Grow-and-retry: strips that overflowed reported their exact
        # hit count; a second region sized by those counts re-runs just
        # them (the payload is already installed — no re-initialization).
        failed = [k for k, c in enumerate(counts) if c < 0]
        chunk_src: list[tuple[ShmCooRegion, int]] = [
            (region, int(offsets[k])) for k in range(len(tasks))
        ]
        if failed:
            result.n_retries = len(failed)
            telemetry.count("shm.grow_retry", float(len(failed)))
            needed = np.array([-counts[k] for k in failed], dtype=np.int64)
            retry_offsets = np.zeros(len(failed) + 1, dtype=np.int64)
            np.cumsum(needed, out=retry_offsets[1:])
            retry_region = _new_region(int(retry_offsets[-1]))
            result.total_slots += int(retry_offsets[-1])
            retry_tasks = [
                (
                    tasks[k],
                    (
                        retry_region.name,
                        retry_region.capacity,
                        int(retry_offsets[r]),
                        int(needed[r]),
                    ),
                )
                for r, k in enumerate(failed)
            ]
            # Through imap_sweep, not a bare imap: the retry must
            # re-install the payload (a delta no-op while the token is
            # still held) so a worker respawned since the main pass
            # does not run the strip against empty state.
            retry_counts = _counts(list(
                _pool.imap_sweep(executor, task_fn, retry_tasks, payload_args)
            ))
            for r, k in enumerate(failed):
                if retry_counts[r] < 0:  # pragma: no cover - exact sizing
                    raise RuntimeError("shm retry region overflowed")
                counts[k] = retry_counts[r]
                chunk_src[k] = (retry_region, int(retry_offsets[r]))

        result.nbytes = sum(r.nbytes for r in regions)
        if region_pool is not None:
            result.nbytes += region.nbytes
        telemetry.count("shm.bytes_reserved", float(result.nbytes))
        result.n_zero_strips = sum(1 for c in counts if c == 0)
        result.n_edges = int(sum(counts))
        result.chunks = [
            src.slice(off, counts[k])
            for k, (src, off) in enumerate(chunk_src)
            if counts[k]
        ]
        yield result
    finally:
        # Workers first (close their cached attachments), then drop our
        # views, then release the segments.  The chunk list is cleared
        # *in place*: consumers were handed this exact list object, and
        # a rebind would leave their reference still pinning the views.
        _pool.finalize_sweep(executor)
        result.chunks.clear()
        result.strip_verts.clear()
        for r in regions:
            r.close()
            r.unlink()
