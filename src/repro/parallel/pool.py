"""Unified parallel pair-sweep dispatch over execution backends.

The paper provides "a sequential and a parallel implementation" (§I);
its CPU parallelism is shared-memory threads over pair chunks.  Python
processes substitute for threads (the GIL rules those out for compute).
This module is the seam where every conflict/graph sweep meets an
:class:`~repro.parallel.executor.Executor`:

- the ``"tiled"`` engine partitions the upper-triangular tile grid into
  balanced contiguous :class:`~repro.parallel.partition.TileBlock`
  strips, each worker runs the fused block-broadcast kernel over its
  strip and returns one concatenated ``(i, j)`` hit pair;
- the ``"pairs"`` engine partitions the flat index range into
  :class:`~repro.parallel.partition.PairRange` slices and runs the
  legacy gather kernel over each.

Payload shipping is two-tier for the persistent pool.  The payload is
split into a **static** part (the edge source / oracle and engine
configuration — constant across Algorithm 1 iterations when the caller
passes the *root* ``source``) and a per-sweep **delta** (the packed
color masks, the active-vertex indices and the tile size).  The static
part is installed once under a token and cached worker-side; while the
pool lives and the token matches, later sweeps ship only the delta —
the per-iteration colmasks instead of the full payload.  Workers derive
the iteration's edge oracle from the cached root source and the active
indices, which reproduces the dispatcher's own subset construction
exactly.  Strips keep the canonical tile order and results are gathered
in task order, so the concatenated hit stream is identical to the
serial sweep's and the two-pass CSR assembly
(:func:`repro.graphs.csr.csr_from_coo_chunks`) produces **bit-identical
graphs** for serial and parallel builds per seed.

Hit arrays travel back either pickled through the result pipe (the
default) or through a shared-memory COO region
(:mod:`repro.parallel.shm`) where workers write into reserved slices
and only hit counts cross the pipe.

Per-sweep worker state (colmasks, derived oracle, tile scratch) is
cleared in a ``finally`` on the dispatcher side after every sweep —
both in-process and, for pools, via a teardown broadcast — so large
arrays never stay alive between builds.  Only the token-cached static
payload survives, by design, until the executor closes.

On a single-core box this demonstrates correctness, not speedup; the
Table V speedup comes from the vectorized kernels instead.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from collections.abc import Iterator
from contextlib import contextmanager

import numpy as np

from repro import telemetry
from repro.device.tiles import (
    DEFAULT_TILE_BYTES,
    EdgeBlockFn,
    TileScratch,
    block_hits_strip,
    conflict_hits_strip,
    sweep_block_hits,
    sweep_conflict_chunks,
    tile_edge,
)
from repro.graphs.csr import CSRGraph, csr_from_coo_chunks
from repro.parallel.executor import Executor, SerialExecutor, owned_executor
from repro.parallel.partition import (
    partition_pairs,
    partition_tiles,
    tile_grid,
)
from repro.parallel.shm import (
    close_worker_attachments,
    shm_conflict_gather,
    write_strip_hits,
)
from repro.pauli.anticommute import AnticommuteOracle
from repro.resilience.faults import fault_point
from repro.util.chunking import pair_index_to_ij

__all__ = [
    "conflict_sweep_chunks",
    "conflict_hit_chunks",
    "gathered_conflict_csr",
    "fused_conflict_csr",
    "block_sweep_chunks",
    "parallel_conflict_graph",
    "payload_token_for",
    "imap_delta_install",
    "PayloadNotInstalled",
    "TASKS_PER_WORKER",
    "strip_shares",
    "finalize_sweep",
]


class PayloadNotInstalled(RuntimeError):
    """A delta-only install reached a worker without the cached static
    payload (it was auto-respawned after dying) — the one install
    failure that is mechanically recoverable by re-sending in full."""

#: Tasks handed to the pool per worker: a few strips each so stragglers
#: (denser strips, busier cores) rebalance through the pool queue.
TASKS_PER_WORKER = 4

# Worker-global per-sweep state, installed by the payload initializer
# and cleared by :func:`teardown_sweep_worker` when the sweep ends.
_WORKER: dict = {}

# Worker-global static-payload cache: one entry, keyed by the payload
# token.  Holds the root edge source and engine configuration across
# sweeps of a persistent pool so repeat installs can ship only the
# delta.  Replaced on the next full install; dies with the pool.
_STATIC_CACHE: dict = {}

# Dispatcher-side token registry: every source object gets one stable
# token for its lifetime; tokens are never reused (a dead source's
# entry vanishes with it and the counter only moves forward), so a
# stale worker cache can never be mistaken for the current payload.
_TOKEN_COUNTER = itertools.count(1)
_SOURCE_TOKENS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def payload_token_for(source) -> int:
    """Stable install token for a root edge source object."""
    token = _SOURCE_TOKENS.get(source)
    if token is None:
        token = next(_TOKEN_COUNTER)
        _SOURCE_TOKENS[source] = token
    return token


def _backend_for(kernel_backend: str | None):
    """Resolve a kernel-backend *name* to an instance, lazily.

    ``None`` means "no dispatch" — the tiles drivers run their direct
    numpy path, exactly the pre-seam code.  The import is deferred so
    the pool module never drags the backend registry (and through it
    the device package) into its own import cycle.
    """
    if kernel_backend is None:
        return None
    from repro.device.backends import resolve_backend

    return resolve_backend(kernel_backend)


def sweep_payload(
    n: int,
    engine: str,
    tile: int | None,
    chunk_size: int,
    colmasks: np.ndarray,
    edge_mask_fn,
    edge_block_fn,
    source=None,
    active_idx: np.ndarray | None = None,
    executor: Executor | None = None,
    kernel_backend: str | None = None,
) -> tuple[dict, int | None]:
    """Build the install payload and its token for one sweep.

    With a ``source`` and a cache-capable executor the static part is
    the *root* source; when the executor still holds the token, the
    static part is elided and only the delta (colmasks, active indices,
    tile) ships.  Without a source the edge functions themselves are
    the static part and every install is a full one (token ``None``).

    ``kernel_backend`` ships as a *name* in the static part and is
    resolved by :func:`init_sweep_worker` in the worker process —
    spawned and remote workers pick their backend against their own
    environment (a cluster agent without numba degrades to numpy on
    its own, bit-identically).
    """
    delta = {
        "n": n,
        "tile": tile,
        "colmasks": colmasks,
        "active_idx": active_idx,
    }
    if source is not None and executor is not None and executor.supports_payload_cache:
        # The token must name the *whole* static part, not just the
        # source: the same executor swept with a different engine,
        # chunk size or kernel backend is a different payload, and a
        # delta-only install against the old cache would run stale
        # config.  The leading "sweep" element is the token channel
        # (see :func:`repro.parallel.executor.token_channel`): sweep
        # and coloring payloads coexist on one persistent pool without
        # evicting each other's delta path.
        # Telemetry rides the token too: a worker that cached a static
        # payload without the recording flag must take a full install
        # when recording turns on (and vice versa), or it would keep
        # running under the stale flag.  Neutral either way — the flag
        # never touches the numerics.
        token = (
            "sweep", payload_token_for(source), engine, chunk_size,
            kernel_backend, telemetry.enabled(),
        )
        static = {
            "engine": engine,
            "chunk_size": chunk_size,
            "source": source,
            "edge_mask_fn": None,
            "edge_block_fn": None,
            "kernel_backend": kernel_backend,
            "telemetry": telemetry.enabled(),
        }
        if executor.holds_token(token):
            static = None
        telemetry.count(
            "pool.install.delta" if static is None else "pool.install.full"
        )
        return {"token": token, "static": static, "delta": delta}, token
    static = {
        "engine": engine,
        "chunk_size": chunk_size,
        "source": source,
        "edge_mask_fn": edge_mask_fn if source is None else None,
        "edge_block_fn": edge_block_fn if source is None else None,
        "kernel_backend": kernel_backend,
        "telemetry": telemetry.enabled(),
    }
    telemetry.count("pool.install.full")
    return {"token": None, "static": static, "delta": delta}, None


def imap_delta_install(
    executor: Executor, task_fn, tasks, initializer, make_payload
):
    """Submit with a token-cached payload, retrying once on the
    delta-install respawn race — the one retry protocol shared by the
    conflict sweep and the parallel coloring engine.

    ``make_payload(force_full)`` returns ``(payload, token, is_full)``.
    ``holds_token`` is checked when the payload is built, but a worker
    can die (and be auto-respawned with an empty cache) before the
    broadcast lands; the stranded worker then raises
    :class:`PayloadNotInstalled` and the broadcast recycles the pool.
    Because an install has no side effects beyond worker state, the
    recovery is mechanical: rebuild the payload in full (a recycled
    pool no longer holds the token, so delta-aware builders come out
    full on their own) and submit once more.  The failure may also
    surface as a *peer's* ``BrokenBarrierError`` (the stranded worker
    aborts the install barrier, and whichever error the pool reports
    wins), so both count as the respawn race — but only for a
    delta-only install; a failure on a *full* install is a real error
    and propagates.

    A supervised executor
    (:class:`repro.resilience.supervisor.ResilientExecutor`) exposes
    ``imap_with_payload`` and takes over the whole protocol — it must
    re-materialize the payload on *every* retry/failover, not just
    once, so the delta decision is made against whichever backend is
    current.
    """
    supervised = getattr(executor, "imap_with_payload", None)
    if supervised is not None:
        return supervised(task_fn, tasks, initializer, make_payload)
    payload, token, is_full = make_payload(False)
    try:
        return executor.imap(
            task_fn, tasks, initializer=initializer,
            payload=(payload,), payload_token=token,
        )
    except (PayloadNotInstalled, threading.BrokenBarrierError):
        if is_full:
            raise
        payload, token, _ = make_payload(True)
        return executor.imap(
            task_fn, tasks, initializer=initializer,
            payload=(payload,), payload_token=token,
        )


def imap_sweep(executor: Executor, task_fn, tasks, payload_args: dict):
    """Install a sweep payload and stream the tasks (see
    :func:`imap_delta_install` for the retry semantics)."""

    def make_payload(force_full: bool):
        # Full-ness is decided by sweep_payload via holds_token; after
        # the respawn race recycled the pool the token is gone, so the
        # rebuild comes out full without needing the flag.
        payload, token = sweep_payload(**payload_args)
        return payload, token, payload["static"] is not None

    return imap_delta_install(
        executor, task_fn, tasks, init_sweep_worker, make_payload
    )


def init_sweep_worker(payload: dict) -> None:
    """Install a sweep payload; derive per-worker oracle and tile state.

    A payload whose ``static`` part is ``None`` reuses the worker's
    token-cached static payload (the delta-only install of a persistent
    pool).  The previous sweep's state is dropped first.
    """
    token = payload["token"]
    static = payload["static"]
    if static is not None:
        # Any full install evicts the previous cache entry — a
        # token-less sweep (bare edge fns) must not leave the prior
        # run's root source pinned in the worker.
        _STATIC_CACHE.clear()
        if token is not None:
            _STATIC_CACHE[token] = static
    else:
        static = _STATIC_CACHE.get(token)
        if static is None:
            raise PayloadNotInstalled(
                f"sweep payload token {token!r} not installed in this worker "
                "(respawned after a crash?)"
            )
    teardown_sweep_worker()
    _WORKER.update(static)
    _WORKER.update(payload["delta"])
    # The recording flag ships with the static payload so pool workers
    # and cluster agents mirror the dispatcher's telemetry state.  Only
    # ever switched on here: under the serial executor this runs in the
    # dispatcher process, whose state is already authoritative.
    if _WORKER.get("telemetry"):
        telemetry.enable(True)
    source = _WORKER.get("source")
    if source is not None:
        idx = _WORKER.get("active_idx")
        if idx is not None:
            source = source.subset(idx)
        _WORKER["edge_mask_fn"] = source.edge_mask
        _WORKER["edge_block_fn"] = getattr(source, "edge_block", None)
    # Worker-side backend resolution: the payload carries the *name*,
    # each worker resolves it against its own environment.
    _WORKER["backend"] = _backend_for(_WORKER.get("kernel_backend"))
    if _WORKER["engine"] == "tiled":
        _WORKER["grid"] = tile_grid(_WORKER["n"], _WORKER["tile"])
        _WORKER["scratch"] = TileScratch(_WORKER["tile"])


def teardown_sweep_worker() -> dict | None:
    """Drop per-sweep worker state (the dispatcher's ``finally`` duty).

    Clears the colmasks, the derived oracle functions and the tile
    scratch, and closes cached shared-memory attachments, so none of it
    outlives the sweep.  The token-cached static payload is kept — that
    persistence is what lets the next install ship only a delta.

    Returns this worker's accumulated telemetry delta (``None`` when
    telemetry is off or in-process): the teardown broadcast runs after
    every sweep on the channel the executor already has, so worker
    metrics piggyback home without an extra round trip — see
    :func:`finalize_sweep`."""
    close_worker_attachments()
    _WORKER.clear()
    return telemetry.drain_worker_snapshot()


def finalize_sweep(executor: Executor) -> None:
    """Tear down per-sweep worker state across an executor and absorb
    the telemetry deltas the teardown returns, merged under the
    backend's slot prefix (``w<k>`` pool workers, ``s<k>`` shards) in
    deterministic slot order."""
    telemetry.absorb_snapshots(
        executor.finalize(teardown_sweep_worker),
        prefix=getattr(executor, "telemetry_prefix", "w"),
    )


def _run_tile_strip(task: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Worker task: fused conflict kernel over one strip of tiles."""
    fault_point("task")
    start, stop = task
    with telemetry.span("pool.strip", engine="tiled", start=start, stop=stop):
        u, v = conflict_hits_strip(
            _WORKER["colmasks"],
            _WORKER["grid"][start:stop],
            _WORKER["edge_mask_fn"],
            _WORKER["edge_block_fn"],
            scratch=_WORKER["scratch"],
            backend=_WORKER.get("backend"),
        )
    telemetry.observe("pool.strip_hits", float(len(u)))
    return u, v


def _run_pair_range(task: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Worker task: gather-engine conflict scan of one flat pair range."""
    from repro.device.kernels import conflict_pair_kernel

    fault_point("task")
    start, stop = task
    n = _WORKER["n"]
    chunk = _WORKER["chunk_size"]
    edge_mask_fn = _WORKER["edge_mask_fn"]
    colmasks = _WORKER["colmasks"]
    us, vs = [], []
    with telemetry.span("pool.strip", engine="pairs", start=start, stop=stop):
        for s in range(start, stop, chunk):
            e = min(s + chunk, stop)
            k = np.arange(s, e, dtype=np.int64)
            i, j = pair_index_to_ij(k, n)
            mask = conflict_pair_kernel(
                edge_mask_fn, colmasks, i, j
            ).astype(bool)
            if mask.any():
                us.append(i[mask])
                vs.append(j[mask])
    n_hits = sum(len(u) for u in us)
    telemetry.observe("pool.strip_hits", float(n_hits))
    if not us:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(us), np.concatenate(vs)


def run_tile_strip_shm(task) -> int:
    """Worker task: tile strip swept into a shared COO slice; returns
    the hit count (negated on reservation overflow)."""
    (start, stop), spec = task
    u, v = _run_tile_strip((start, stop))
    return write_strip_hits(u, v, spec)


def run_pair_range_shm(task) -> int:
    """Worker task: pair range swept into a shared COO slice."""
    (start, stop), spec = task
    u, v = _run_pair_range((start, stop))
    return write_strip_hits(u, v, spec)


def _strip_verts(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Sorted unique endpoint ids of one strip's hits — the pre-swept
    per-vertex conflict state of the fused pipeline.  Computing it here
    moves the O(|Ec|) vertex detection off the dispatcher and onto the
    worker; the dispatcher only ORs each strip's (much smaller) vertex
    set into its global conflict mask."""
    if not len(u):
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate((u, v)))


def _run_tile_strip_fused(task):
    """Worker task: tile-strip sweep plus per-strip conflict vertices."""
    u, v = _run_tile_strip(task)
    return u, v, _strip_verts(u, v)


def _run_pair_range_fused(task):
    """Worker task: pair-range sweep plus per-strip conflict vertices."""
    u, v = _run_pair_range(task)
    return u, v, _strip_verts(u, v)


def run_tile_strip_shm_fused(task) -> tuple[int, np.ndarray]:
    """Worker task: tile strip into a shared COO slice, returning the
    hit count (negated on overflow) and the strip's conflict vertices
    (valid either way — the sweep ran even when the write did not)."""
    (start, stop), spec = task
    u, v = _run_tile_strip((start, stop))
    return write_strip_hits(u, v, spec), _strip_verts(u, v)


def run_pair_range_shm_fused(task) -> tuple[int, np.ndarray]:
    """Worker task: pair range into a shared COO slice, fused variant."""
    (start, stop), spec = task
    u, v = _run_pair_range((start, stop))
    return write_strip_hits(u, v, spec), _strip_verts(u, v)


def _init_block_worker(payload: dict) -> None:
    _WORKER.clear()
    _WORKER.update(payload)
    _WORKER["grid"] = tile_grid(payload["n"], payload["tile"])
    _WORKER["backend"] = _backend_for(payload.get("kernel_backend"))


def _run_block_strip(task: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Worker task: generic block predicate over one strip of tiles."""
    start, stop = task
    return block_hits_strip(
        _WORKER["block_fn"],
        _WORKER["grid"][start:stop],
        backend=_WORKER.get("backend"),
    )


def strip_shares(executor: Executor, n_tasks: int) -> list[int] | None:
    """Capacity shares for the weighted strip deal, or ``None`` for the
    classic equal-share partition.

    Every executor deals task ``k`` to worker slot ``k % n_workers``
    (the pool queue rebalances freely; the cluster deal is positional),
    so giving strip ``k`` a share equal to slot ``k % n_workers``'s
    advertised capacity hands each shard total pair weight proportional
    to its capacity *without touching the deal itself* — the task list
    keeps its canonical contiguous cover, so results (and therefore the
    CSR and the coloring) are bit-identical to the unweighted deal.
    Uniform capacities return ``None``: the equal-share path is kept
    byte-exact."""
    get_caps = getattr(executor, "worker_capacities", None)
    if get_caps is None:
        return None
    caps = list(get_caps())
    if not caps or len(set(caps)) == 1:
        return None
    return [int(caps[k % len(caps)]) for k in range(n_tasks)]


def sweep_strip_tasks(
    n: int, engine: str, tile: int | None, executor: Executor
) -> tuple[list[tuple[int, int]], np.ndarray]:
    """Partition the sweep domain for an executor: ``(start, stop)``
    strip tasks in canonical order plus each strip's pair weight (the
    shm gather sizes slot reservations from the weights).

    Heterogeneous backends (hierarchical cluster agents advertising
    their inner pool size) get a capacity-weighted partition: strip
    ``k``'s pair weight is proportional to the capacity of the worker
    slot the positional deal sends it to.  Weighted partitions keep
    empty strips in place so the ``tasks[k::n]`` alignment holds."""
    n_workers = max(1, executor.n_workers)
    n_tasks = n_workers * TASKS_PER_WORKER
    shares = strip_shares(executor, n_tasks)
    keep = shares is not None
    if engine == "tiled":
        blocks = partition_tiles(
            n, tile, n_tasks, shares=shares, keep_empty=keep
        )
        blocks = blocks if keep else [b for b in blocks if len(b)]
        tasks = [(b.start, b.stop) for b in blocks]
        weights = np.array([b.n_pairs for b in blocks], dtype=np.int64)
    else:
        ranges = partition_pairs(
            n, n_tasks, shares=shares, keep_empty=keep
        )
        ranges = ranges if keep else [r for r in ranges if len(r)]
        tasks = [(r.start, r.stop) for r in ranges]
        weights = np.array([len(r) for r in ranges], dtype=np.int64)
    return tasks, weights


def conflict_sweep_chunks(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    tile: int | None = None,
    executor: Executor | None = None,
    source=None,
    active_idx: np.ndarray | None = None,
    kernel_backend: str | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Executor-routed conflict sweep: yield ``(i, j)`` edge chunks.

    The single entry point behind the host build
    (:mod:`repro.core.conflict`), the device build
    (:mod:`repro.device.csr_build`) and
    :func:`parallel_conflict_graph`.  A serial backend (or ``None``)
    short-circuits to the streaming in-process sweep — same kernels,
    same tile order, lowest memory.  A pool backend partitions the
    domain into contiguous strips (tile grid for ``"tiled"``, flat pair
    ranges for ``"pairs"``), installs the payload once per worker, and
    yields the per-strip results in strip order, which makes the
    concatenated hit stream — and therefore the assembled CSR —
    bit-identical to the serial sweep's.

    ``source``/``active_idx`` (optional) enable the persistent-pool
    delta payload: the root ``source`` is installed once under a token,
    later sweeps ship only colmasks + active indices, and each worker
    derives ``source.subset(active_idx)`` locally.  Per-sweep worker
    state is cleared in a ``finally`` whether the sweep completes or
    aborts.
    """
    if engine not in ("tiled", "pairs"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "tiled" and tile is None:
        tile = tile_edge(colmasks.shape[1], tile_bytes, n=n)
    if executor is None or isinstance(executor, SerialExecutor):
        yield from sweep_conflict_chunks(
            n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
            tile_bytes=tile_bytes, tile=tile,
            backend=_backend_for(kernel_backend),
        )
        return
    tasks, _ = sweep_strip_tasks(n, engine, tile, executor)
    task_fn = _run_tile_strip if engine == "tiled" else _run_pair_range
    payload_args = dict(
        n=n, engine=engine, tile=tile, chunk_size=chunk_size,
        colmasks=colmasks, edge_mask_fn=edge_mask_fn,
        edge_block_fn=edge_block_fn,
        source=source, active_idx=active_idx, executor=executor,
        kernel_backend=kernel_backend,
    )
    try:
        yield from imap_sweep(executor, task_fn, tasks, payload_args)
    finally:
        finalize_sweep(executor)


@contextmanager
def conflict_hit_chunks(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    tile: int | None = None,
    executor: Executor | None = None,
    shm: bool = False,
    est_conflict_edges: float | None = None,
    source=None,
    active_idx: np.ndarray | None = None,
    region_cb=None,
    kernel_backend: str | None = None,
):
    """One gather-policy seam for every conflict build.

    Yields an iterable of ``(i, j)`` hit chunks in canonical strip
    order, resolved through the shared-memory gather when ``shm`` is on
    and the backend supports it (same-node worker pools), and through
    the plain result stream otherwise — ``shm`` is meaningless for
    in-process sweeps (nothing crosses a pipe) and impossible for
    cluster backends (shared segments do not cross hosts), so both
    take the plain path.
    Keeping the policy here, not in each caller, is what guarantees the
    host build, the device build and :func:`parallel_conflict_graph`
    can never diverge on it.  Shm-backed chunks are views into the
    shared region and are only valid inside the ``with`` block.
    """
    # Validate up front so both gather paths reject bad input
    # identically (the pickled path would raise inside the sweep; the
    # shm partitioner would silently treat unknown engines as "pairs").
    if engine not in ("tiled", "pairs"):
        raise ValueError(f"unknown engine {engine!r}")
    if shm and executor is not None and executor.supports_shm_gather:
        with shm_conflict_gather(
            n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
            tile_bytes=tile_bytes, tile=tile, executor=executor,
            est_conflict_edges=est_conflict_edges,
            source=source, active_idx=active_idx, region_cb=region_cb,
            kernel_backend=kernel_backend,
        ) as gather:
            yield gather.chunks
        return
    stream = conflict_sweep_chunks(
        n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
        tile_bytes=tile_bytes, tile=tile, executor=executor,
        source=source, active_idx=active_idx,
        kernel_backend=kernel_backend,
    )
    try:
        yield stream
    finally:
        # Close explicitly: a consumer that aborts mid-stream (device
        # COO overflow) unwinds the executor's stream now instead of at
        # garbage collection.
        stream.close()


def gathered_conflict_csr(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    executor: Executor | None = None,
    shm: bool = False,
    est_conflict_edges: float | None = None,
    source=None,
    active_idx: np.ndarray | None = None,
    timings: dict | None = None,
    kernel_backend: str | None = None,
) -> tuple[CSRGraph, int]:
    """Sweep-and-assemble: the shared back half of every host conflict
    build.  Runs one sweep through :func:`conflict_hit_chunks` and
    folds the hit stream into the two-pass CSR assembly, returning
    ``(graph, n_conflict_edges)``.

    Centralized because the shm view-lifetime protocol is subtle: the
    chunk references must be dropped *before* the gather context closes
    the shared region, or the unmap sees live buffer exports.  One copy
    of that dance, not one per caller.

    ``timings``, when given, accumulates ``sweep_s`` (draining the hit
    stream — worker compute plus gather) and ``assemble_s`` (the CSR
    build) into the dict, for the per-iteration phase metrics.
    """
    with conflict_hit_chunks(
        n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
        tile_bytes=tile_bytes, executor=executor, shm=shm,
        est_conflict_edges=est_conflict_edges,
        source=source, active_idx=active_idx,
        kernel_backend=kernel_backend,
    ) as hit_stream:
        try:
            t0 = telemetry.clock()
            with telemetry.span("sweep.gather", engine=engine):
                chunks = [(u, v) for u, v in hit_stream if len(u)]
            t1 = telemetry.clock()
            m = sum(len(u) for u, _ in chunks)
            with telemetry.span("sweep.assemble", engine=engine):
                graph = csr_from_coo_chunks(chunks, n)
            if timings is not None:
                timings["sweep_s"] = (
                    timings.get("sweep_s", 0.0) + (t1 - t0)
                )
                timings["assemble_s"] = (
                    timings.get("assemble_s", 0.0)
                    + (telemetry.clock() - t1)
                )
        finally:
            chunks = None
    return graph, m


def _fused_sub_csr(
    n: int,
    mask: np.ndarray,
    chunks: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[CSRGraph, np.ndarray]:
    """Assemble the conflicted-subgraph CSR directly from hit chunks.

    ``mask`` flags the conflict vertices (the union of all strip vertex
    sets).  The relabel ``old -> new`` is strictly monotone, so
    renumbered chunks keep every ordering property of the originals:
    chunk order is unchanged, within-chunk source order is unchanged,
    and ties break identically under the stable fill sort — which makes
    this CSR **bit-identical** to the unfused
    ``induced_subgraph(csr_from_coo_chunks(chunks, n), conflicted)``
    (on the conflicted set the induced relabel drops zero arcs, so it
    too is a pure monotone relabel) while never materializing the
    full-width graph, its degree vector, or the relabel pass.
    """
    conflicted = np.flatnonzero(mask)
    new_id = np.cumsum(mask, dtype=np.int64)
    new_id -= 1
    sub_chunks = [(new_id[u], new_id[v]) for u, v in chunks]
    return csr_from_coo_chunks(sub_chunks, len(conflicted)), conflicted


def fused_conflict_csr(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    executor: Executor | None = None,
    shm: bool = False,
    est_conflict_edges: float | None = None,
    source=None,
    active_idx: np.ndarray | None = None,
    region_pool=None,
    timings: dict | None = None,
    kernel_backend: str | None = None,
) -> tuple[CSRGraph, np.ndarray, int]:
    """Fused sweep-and-assemble: one pass from pair sweep to
    coloring-ready conflict state.

    Workers emit each strip's hits *plus* its pre-swept conflict-vertex
    set, so the dispatcher-side O(|Ec|) edge sweep of the unfused path
    (full-width CSR build, degree scan, induced-subgraph relabel) is
    replaced by OR-ing per-strip vertex sets into a mask and assembling
    the conflicted sub-CSR directly.  Returns ``(sub_gc, conflicted,
    n_conflict_edges)`` where ``sub_gc`` is bit-identical to the
    unfused ``induced_subgraph`` result and ``conflicted`` to the
    unfused ``nonzero(degree > 0)`` vertex set.

    ``region_pool`` (a :class:`repro.parallel.shm.ShmRegionPool`)
    double-buffers the shm gather regions across iterations.
    ``timings`` accumulates ``sweep_s`` / ``assemble_s``.
    """
    if engine not in ("tiled", "pairs"):
        raise ValueError(f"unknown engine {engine!r}")
    t0 = telemetry.clock()
    mask = np.zeros(n, dtype=bool)
    chunks: list[tuple[np.ndarray, np.ndarray]] = []
    m = 0
    if executor is None or isinstance(executor, SerialExecutor):
        # In-process sweep: there is no worker to pre-sweep on, so the
        # vertex detection scatters endpoints directly per chunk (same
        # set as the per-strip unique, no sort needed).
        stream = conflict_sweep_chunks(
            n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
            tile_bytes=tile_bytes, executor=executor,
            source=source, active_idx=active_idx,
            kernel_backend=kernel_backend,
        )
        try:
            with telemetry.span("sweep.gather", engine=engine):
                for u, v in stream:
                    if len(u):
                        chunks.append((u, v))
                        mask[u] = True
                        mask[v] = True
                        m += len(u)
        finally:
            stream.close()
        t1 = telemetry.clock()
        with telemetry.span("sweep.assemble", engine=engine):
            sub_gc, conflicted = _fused_sub_csr(n, mask, chunks)
    elif shm and executor.supports_shm_gather:
        with shm_conflict_gather(
            n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
            tile_bytes=tile_bytes, executor=executor,
            est_conflict_edges=est_conflict_edges,
            source=source, active_idx=active_idx,
            fused=True, region_pool=region_pool,
            kernel_backend=kernel_backend,
        ) as gather:
            with telemetry.span("sweep.gather", engine=engine):
                for verts in gather.strip_verts:
                    if len(verts):
                        mask[verts] = True
                chunks = [(u, v) for u, v in gather.chunks if len(u)]
            m = gather.n_edges
            t1 = telemetry.clock()
            # Assemble inside the context: the renumbered chunks are
            # fresh arrays, so nothing pins the shared region after it.
            with telemetry.span("sweep.assemble", engine=engine):
                sub_gc, conflicted = _fused_sub_csr(n, mask, chunks)
    else:
        if engine == "tiled" and tile_bytes is not None:
            tile = tile_edge(colmasks.shape[1], tile_bytes, n=n)
        else:
            tile = None
        tasks, _ = sweep_strip_tasks(n, engine, tile, executor)
        task_fn = (
            _run_tile_strip_fused if engine == "tiled"
            else _run_pair_range_fused
        )
        payload_args = dict(
            n=n, engine=engine, tile=tile, chunk_size=chunk_size,
            colmasks=colmasks, edge_mask_fn=edge_mask_fn,
            edge_block_fn=edge_block_fn,
            source=source, active_idx=active_idx, executor=executor,
            kernel_backend=kernel_backend,
        )
        try:
            with telemetry.span("sweep.gather", engine=engine):
                for u, v, verts in imap_sweep(
                    executor, task_fn, tasks, payload_args
                ):
                    if len(verts):
                        mask[verts] = True
                    if len(u):
                        chunks.append((u, v))
                        m += len(u)
        finally:
            finalize_sweep(executor)
        t1 = telemetry.clock()
        with telemetry.span("sweep.assemble", engine=engine):
            sub_gc, conflicted = _fused_sub_csr(n, mask, chunks)
    if timings is not None:
        timings["sweep_s"] = timings.get("sweep_s", 0.0) + (t1 - t0)
        timings["assemble_s"] = (
            timings.get("assemble_s", 0.0) + (telemetry.clock() - t1)
        )
    return sub_gc, conflicted, m


def block_sweep_chunks(
    n: int,
    block_fn: EdgeBlockFn,
    tile: int,
    executor: Executor | None = None,
    kernel_backend: str | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Executor-routed generic tiled pair sweep (explicit graph
    builders): yield upper-triangle ``(i, j)`` hits of ``block_fn`` in
    canonical tile order, strip-parallel when a pool backend is given."""
    if executor is None or isinstance(executor, SerialExecutor):
        yield from sweep_block_hits(
            n, block_fn, tile, backend=_backend_for(kernel_backend)
        )
        return
    n_tasks = max(1, executor.n_workers) * TASKS_PER_WORKER
    blocks = partition_tiles(n, tile, n_tasks)
    tasks = [(b.start, b.stop) for b in blocks if len(b)]
    payload = {
        "n": n, "tile": tile, "block_fn": block_fn,
        "kernel_backend": kernel_backend,
    }
    try:
        yield from executor.imap(
            _run_block_strip, tasks, initializer=_init_block_worker,
            payload=(payload,),
        )
    finally:
        finalize_sweep(executor)


def parallel_conflict_graph(
    pauli_set,
    colmasks: np.ndarray,
    n_workers: int = 2,
    chunk_size: int = 1 << 16,
    want_anticommute: bool = False,
    engine: str = "tiled",
    tile_bytes: int = DEFAULT_TILE_BYTES,
    executor: Executor | None = None,
    shm: bool = False,
    kernel_backend: str | None = None,
) -> tuple[CSRGraph, int]:
    """Build the conflict graph over a Pauli set with worker processes.

    Thin front end over :func:`conflict_sweep_chunks` plus the shared
    two-pass count-then-fill CSR assembly — the same code path the
    serial host build uses, so parallel and serial graphs are
    bit-identical.

    Parameters
    ----------
    pauli_set:
        The active :class:`repro.pauli.PauliSet` (complement edges are
        derived on the fly in each worker).
    colmasks:
        Packed candidate-color bitsets for the active vertices.
    n_workers:
        Pool size; 1 short-circuits to the in-process streaming sweep.
        Ignored when ``executor`` is given.
    want_anticommute:
        Color the anticommute graph itself instead of its complement
        (used by tests to cross-check orientations).
    engine:
        ``"tiled"`` block-broadcast sweep (default) or ``"pairs"`` flat
        gather chunks.
    executor:
        Explicit backend; overrides ``n_workers``.  A spec-created
        backend is closed before returning; a passed instance is left
        open for its owner.
    shm:
        Gather hits through a shared-memory COO region instead of the
        result pipe (:mod:`repro.parallel.shm`).

    Returns
    -------
    (graph, n_conflict_edges)
    """
    oracle = AnticommuteOracle(pauli_set.chars)
    if want_anticommute:
        edge_mask_fn = oracle.anticommute
        edge_block_fn = oracle.anticommute_block
    else:
        edge_mask_fn = oracle.commute_edges
        edge_block_fn = oracle.commute_block
    with owned_executor(executor if executor is not None else "auto", n_workers) as ex:
        return gathered_conflict_csr(
            pauli_set.n,
            edge_mask_fn,
            colmasks,
            chunk_size=chunk_size,
            engine=engine,
            edge_block_fn=edge_block_fn,
            tile_bytes=tile_bytes,
            executor=ex,
            shm=shm,
            kernel_backend=kernel_backend,
        )
