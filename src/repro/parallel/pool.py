"""Multiprocess conflict-edge enumeration.

The paper provides "a sequential and a parallel implementation" (§I);
its CPU parallelism is shared-memory threads over pair chunks.  Python
processes substitute for threads (the GIL rules those out for compute),
with the encoded Pauli payload and color masks shipped once per worker
via fork/initializer — workers then stream disjoint
:class:`PairRange` slices and return only their conflict edges, so the
communication volume is output-proportional, as the HPC guides
prescribe.

On a single-core box this demonstrates correctness, not speedup; the
Table V speedup comes from the vectorized device kernel instead.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.device.kernels import conflict_pair_kernel
from repro.graphs.csr import CSRGraph, from_edge_list
from repro.parallel.partition import PairRange, partition_pairs
from repro.pauli.anticommute import AnticommuteOracle
from repro.util.chunking import pair_index_to_ij

# Worker-global state, installed by the pool initializer (fork-friendly:
# inherited copy-on-write, never pickled per task).
_WORKER: dict = {}


def _init_worker(chars: np.ndarray, colmasks: np.ndarray, want_anticommute: bool):
    _WORKER["oracle"] = AnticommuteOracle(chars)
    _WORKER["colmasks"] = colmasks
    _WORKER["want_anticommute"] = want_anticommute


def _edge_mask(i: np.ndarray, j: np.ndarray) -> np.ndarray:
    oracle: AnticommuteOracle = _WORKER["oracle"]
    if _WORKER["want_anticommute"]:
        return oracle.anticommute(i, j)
    return oracle.commute_edges(i, j)


def _scan_range(args: tuple[int, int, int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Worker task: conflict edges within one flat pair range."""
    start, stop, n, chunk = args
    us, vs = [], []
    for s in range(start, stop, chunk):
        e = min(s + chunk, stop)
        k = np.arange(s, e, dtype=np.int64)
        i, j = pair_index_to_ij(k, n)
        mask = conflict_pair_kernel(_edge_mask, _WORKER["colmasks"], i, j).astype(bool)
        if mask.any():
            us.append(i[mask])
            vs.append(j[mask])
    u = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
    v = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
    return u, v


def parallel_conflict_graph(
    pauli_set,
    colmasks: np.ndarray,
    n_workers: int = 2,
    chunk_size: int = 1 << 16,
    want_anticommute: bool = False,
) -> tuple[CSRGraph, int]:
    """Build the conflict graph over a Pauli set with a process pool.

    Parameters
    ----------
    pauli_set:
        The active :class:`repro.pauli.PauliSet` (complement edges are
        derived on the fly in each worker).
    colmasks:
        Packed candidate-color bitsets for the active vertices.
    n_workers:
        Pool size; 1 short-circuits to an in-process scan.
    want_anticommute:
        Color the anticommute graph itself instead of its complement
        (used by tests to cross-check orientations).

    Returns
    -------
    (graph, n_conflict_edges)
    """
    n = pauli_set.n
    ranges = partition_pairs(n, max(1, n_workers * 4))
    tasks = [(r.start, r.stop, n, chunk_size) for r in ranges if len(r)]
    if n_workers <= 1:
        _init_worker(pauli_set.chars, colmasks, want_anticommute)
        results = [_scan_range(t) for t in tasks]
    else:
        ctx = mp.get_context("fork")
        with ctx.Pool(
            n_workers,
            initializer=_init_worker,
            initargs=(pauli_set.chars, colmasks, want_anticommute),
        ) as pool:
            results = pool.map(_scan_range, tasks)
    us = [u for u, _ in results if len(u)]
    vs = [v for _, v in results if len(v)]
    u = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
    v = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
    return from_edge_list(u, v, n), len(u)
