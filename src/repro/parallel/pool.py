"""Unified parallel pair-sweep dispatch over execution backends.

The paper provides "a sequential and a parallel implementation" (§I);
its CPU parallelism is shared-memory threads over pair chunks.  Python
processes substitute for threads (the GIL rules those out for compute).
This module is the seam where every conflict/graph sweep meets an
:class:`~repro.parallel.executor.Executor`:

- the ``"tiled"`` engine partitions the upper-triangular tile grid into
  balanced contiguous :class:`~repro.parallel.partition.TileBlock`
  strips, each worker runs the fused block-broadcast kernel over its
  strip and returns one concatenated ``(i, j)`` hit pair;
- the ``"pairs"`` engine partitions the flat index range into
  :class:`~repro.parallel.partition.PairRange` slices and runs the
  legacy gather kernel over each.

Either way the payload (edge oracle, packed color masks) ships **once
per worker** via the pool initializer — inherited copy-on-write under
fork, pickled under spawn — and workers return only their conflict
edges, so communication volume stays output-proportional, as the HPC
guides prescribe.  Strips keep the canonical tile order and results are
gathered in task order, so the concatenated hit stream is identical to
the serial sweep's and the two-pass CSR assembly
(:func:`repro.graphs.csr.csr_from_coo_chunks`) produces **bit-identical
graphs** for serial and parallel builds per seed.

On a single-core box this demonstrates correctness, not speedup; the
Table V speedup comes from the vectorized kernels instead.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.device.tiles import (
    DEFAULT_TILE_BYTES,
    EdgeBlockFn,
    TileScratch,
    block_hits_strip,
    conflict_hits_strip,
    sweep_block_hits,
    sweep_conflict_chunks,
    tile_edge,
)
from repro.graphs.csr import CSRGraph, csr_from_coo_chunks
from repro.parallel.executor import Executor, SerialExecutor, make_executor
from repro.parallel.partition import (
    partition_pairs,
    partition_tiles,
    tile_grid,
)
from repro.pauli.anticommute import AnticommuteOracle
from repro.util.chunking import pair_index_to_ij

__all__ = [
    "conflict_sweep_chunks",
    "block_sweep_chunks",
    "parallel_conflict_graph",
    "TASKS_PER_WORKER",
]

#: Tasks handed to the pool per worker: a few strips each so stragglers
#: (denser strips, busier cores) rebalance through the pool queue.
TASKS_PER_WORKER = 4

# Worker-global state, installed by the pool initializer (fork: the
# payload is inherited copy-on-write at fork time; spawn: the same
# initializer arguments are pickled once per worker — never per task).
_WORKER: dict = {}


def _init_sweep_worker(payload: dict) -> None:
    """Install the sweep payload; pre-build per-worker tile state."""
    _WORKER.clear()
    _WORKER.update(payload)
    if payload["engine"] == "tiled":
        _WORKER["grid"] = tile_grid(payload["n"], payload["tile"])
        _WORKER["scratch"] = TileScratch(payload["tile"])


def _run_tile_strip(task: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Worker task: fused conflict kernel over one strip of tiles."""
    start, stop = task
    return conflict_hits_strip(
        _WORKER["colmasks"],
        _WORKER["grid"][start:stop],
        _WORKER["edge_mask_fn"],
        _WORKER["edge_block_fn"],
        scratch=_WORKER["scratch"],
    )


def _run_pair_range(task: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Worker task: gather-engine conflict scan of one flat pair range."""
    from repro.device.kernels import conflict_pair_kernel

    start, stop = task
    n = _WORKER["n"]
    chunk = _WORKER["chunk_size"]
    edge_mask_fn = _WORKER["edge_mask_fn"]
    colmasks = _WORKER["colmasks"]
    us, vs = [], []
    for s in range(start, stop, chunk):
        e = min(s + chunk, stop)
        k = np.arange(s, e, dtype=np.int64)
        i, j = pair_index_to_ij(k, n)
        mask = conflict_pair_kernel(edge_mask_fn, colmasks, i, j).astype(bool)
        if mask.any():
            us.append(i[mask])
            vs.append(j[mask])
    if not us:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(us), np.concatenate(vs)


def _init_block_worker(payload: dict) -> None:
    _WORKER.clear()
    _WORKER.update(payload)
    _WORKER["grid"] = tile_grid(payload["n"], payload["tile"])


def _run_block_strip(task: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Worker task: generic block predicate over one strip of tiles."""
    start, stop = task
    return block_hits_strip(_WORKER["block_fn"], _WORKER["grid"][start:stop])


def conflict_sweep_chunks(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    tile: int | None = None,
    executor: Executor | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Executor-routed conflict sweep: yield ``(i, j)`` edge chunks.

    The single entry point behind the host build
    (:mod:`repro.core.conflict`), the device build
    (:mod:`repro.device.csr_build`) and
    :func:`parallel_conflict_graph`.  A serial backend (or ``None``)
    short-circuits to the streaming in-process sweep — same kernels,
    same tile order, lowest memory.  A pool backend partitions the
    domain into contiguous strips (tile grid for ``"tiled"``, flat pair
    ranges for ``"pairs"``), ships the payload once per worker, and
    yields the per-strip results in strip order, which makes the
    concatenated hit stream — and therefore the assembled CSR —
    bit-identical to the serial sweep's.
    """
    if engine not in ("tiled", "pairs"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "tiled" and tile is None:
        tile = tile_edge(colmasks.shape[1], tile_bytes, n=n)
    if executor is None or isinstance(executor, SerialExecutor):
        yield from sweep_conflict_chunks(
            n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
            tile_bytes=tile_bytes, tile=tile,
        )
        return
    n_tasks = max(1, executor.n_workers) * TASKS_PER_WORKER
    if engine == "tiled":
        blocks = partition_tiles(n, tile, n_tasks)
        tasks = [(b.start, b.stop) for b in blocks if len(b)]
        task_fn = _run_tile_strip
    else:
        ranges = partition_pairs(n, n_tasks)
        tasks = [(r.start, r.stop) for r in ranges if len(r)]
        task_fn = _run_pair_range
    payload = {
        "n": n,
        "engine": engine,
        "tile": tile,
        "chunk_size": chunk_size,
        "colmasks": colmasks,
        "edge_mask_fn": edge_mask_fn,
        "edge_block_fn": edge_block_fn,
    }
    yield from executor.imap(
        task_fn, tasks, initializer=_init_sweep_worker, payload=(payload,)
    )


def block_sweep_chunks(
    n: int,
    block_fn: EdgeBlockFn,
    tile: int,
    executor: Executor | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Executor-routed generic tiled pair sweep (explicit graph
    builders): yield upper-triangle ``(i, j)`` hits of ``block_fn`` in
    canonical tile order, strip-parallel when a pool backend is given."""
    if executor is None or isinstance(executor, SerialExecutor):
        yield from sweep_block_hits(n, block_fn, tile)
        return
    n_tasks = max(1, executor.n_workers) * TASKS_PER_WORKER
    blocks = partition_tiles(n, tile, n_tasks)
    tasks = [(b.start, b.stop) for b in blocks if len(b)]
    payload = {"n": n, "tile": tile, "block_fn": block_fn}
    yield from executor.imap(
        _run_block_strip, tasks, initializer=_init_block_worker, payload=(payload,)
    )


def parallel_conflict_graph(
    pauli_set,
    colmasks: np.ndarray,
    n_workers: int = 2,
    chunk_size: int = 1 << 16,
    want_anticommute: bool = False,
    engine: str = "tiled",
    tile_bytes: int = DEFAULT_TILE_BYTES,
    executor: Executor | None = None,
) -> tuple[CSRGraph, int]:
    """Build the conflict graph over a Pauli set with worker processes.

    Thin front end over :func:`conflict_sweep_chunks` plus the shared
    two-pass count-then-fill CSR assembly — the same code path the
    serial host build uses, so parallel and serial graphs are
    bit-identical.

    Parameters
    ----------
    pauli_set:
        The active :class:`repro.pauli.PauliSet` (complement edges are
        derived on the fly in each worker).
    colmasks:
        Packed candidate-color bitsets for the active vertices.
    n_workers:
        Pool size; 1 short-circuits to the in-process streaming sweep.
        Ignored when ``executor`` is given.
    want_anticommute:
        Color the anticommute graph itself instead of its complement
        (used by tests to cross-check orientations).
    engine:
        ``"tiled"`` block-broadcast sweep (default) or ``"pairs"`` flat
        gather chunks.
    executor:
        Explicit backend; overrides ``n_workers``.

    Returns
    -------
    (graph, n_conflict_edges)
    """
    oracle = AnticommuteOracle(pauli_set.chars)
    if want_anticommute:
        edge_mask_fn = oracle.anticommute
        edge_block_fn = oracle.anticommute_block
    else:
        edge_mask_fn = oracle.commute_edges
        edge_block_fn = oracle.commute_block
    if executor is None:
        executor = make_executor("auto", n_workers)
    chunks: list[tuple[np.ndarray, np.ndarray]] = []
    m = 0
    for u, v in conflict_sweep_chunks(
        pauli_set.n,
        edge_mask_fn,
        colmasks,
        chunk_size=chunk_size,
        engine=engine,
        edge_block_fn=edge_block_fn,
        tile_bytes=tile_bytes,
        executor=executor,
    ):
        if len(u):
            chunks.append((u, v))
            m += len(u)
    return csr_from_coo_chunks(chunks, pauli_set.n), m
