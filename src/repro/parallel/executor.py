"""Execution backends: a common submit/gather interface over workers.

The paper ships "a sequential and a parallel implementation" (§I).  This
module is the seam between the two: every pair/tile sweep in the library
is expressed as *(initializer payload, task list, task function)* and
handed to an :class:`Executor`, which decides where the tasks run.

- :class:`SerialExecutor` — runs tasks in-process, in order.  The
  correctness reference and the right choice for small problems (no
  process start-up, no result pickling).
- :class:`PoolExecutor` — a ``multiprocessing.Pool`` of worker
  processes.  The payload (encoded Pauli strings, color masks, oracle
  state) is shipped **once per worker** through the pool initializer:
  under the ``fork`` start method it is inherited copy-on-write at fork
  time; where fork is unavailable (Windows, macOS default) the same
  initializer arguments are pickled to each worker instead, so the
  backend degrades gracefully to ``spawn`` with identical semantics.

Both backends preserve task order in their results, which is what lets
the tile sweep keep its deterministic chunk stream — parallel and
serial conflict-graph builds are bit-identical per seed (see
:mod:`repro.parallel.pool`).
"""

from __future__ import annotations

import multiprocessing as mp
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator, Sequence

__all__ = [
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "make_executor",
    "default_start_method",
]


def default_start_method() -> str:
    """``"fork"`` where the platform offers it, else ``"spawn"``.

    Fork ships the worker payload copy-on-write (zero marshalling);
    spawn pickles the initializer arguments per worker.  Both are
    correct — fork is just cheaper, so it wins when available.
    """
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class Executor(ABC):
    """Submit/gather interface shared by all backends.

    An executor runs ``task_fn`` over ``tasks`` after installing
    ``payload`` via ``initializer`` exactly once per worker, and returns
    the results *in task order* — the ordering contract the
    deterministic CSR assembly relies on.
    """

    #: Worker processes the backend will use (1 for serial).
    n_workers: int = 1

    @abstractmethod
    def imap(
        self,
        task_fn: Callable,
        tasks: Sequence,
        initializer: Callable | None = None,
        payload: tuple = (),
    ) -> Iterator:
        """Run ``task_fn`` over ``tasks``, yielding results in task
        order as they complete — the streaming form consumers use when
        results feed a bounded buffer (e.g. the device COO stream)."""

    def map(
        self,
        task_fn: Callable,
        tasks: Sequence,
        initializer: Callable | None = None,
        payload: tuple = (),
    ) -> list:
        """Run ``task_fn`` over ``tasks``; all results, in task order."""
        return list(self.imap(task_fn, tasks, initializer, payload))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class SerialExecutor(Executor):
    """In-process backend: initializer then an ordered loop."""

    n_workers = 1

    def imap(
        self,
        task_fn: Callable,
        tasks: Sequence,
        initializer: Callable | None = None,
        payload: tuple = (),
    ) -> Iterator:
        if initializer is not None:
            initializer(*payload)
        for t in tasks:
            yield task_fn(t)


class PoolExecutor(Executor):
    """Process-pool backend over ``multiprocessing``.

    Parameters
    ----------
    n_workers:
        Pool size (>= 1).
    start_method:
        ``"fork"``, ``"spawn"``, ``"forkserver"`` or ``None`` to pick
        :func:`default_start_method`.  With fork the payload is
        inherited copy-on-write; otherwise the initializer arguments
        are pickled into each worker — the documented fallback for
        platforms without fork.
    """

    def __init__(self, n_workers: int = 2, start_method: str | None = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} not available "
                f"(have {mp.get_all_start_methods()})"
            )
        self.n_workers = n_workers
        self.start_method = start_method

    def resolved_start_method(self) -> str:
        """The start method a :meth:`map` call will actually use."""
        return self.start_method or default_start_method()

    def imap(
        self,
        task_fn: Callable,
        tasks: Sequence,
        initializer: Callable | None = None,
        payload: tuple = (),
    ) -> Iterator:
        tasks = list(tasks)
        if not tasks:
            return
        ctx = mp.get_context(self.resolved_start_method())
        with ctx.Pool(
            min(self.n_workers, len(tasks)),
            initializer=initializer,
            initargs=payload,
        ) as pool:
            # imap (not map): results stream back in task order as they
            # finish, so a consumer filling a bounded buffer — the
            # device COO stream — never holds every strip's hit arrays
            # at once and can abort (DeviceOutOfMemory) mid-sweep.
            yield from pool.imap(task_fn, tasks)


def make_executor(
    spec: str | Executor = "auto",
    n_workers: int = 1,
    start_method: str | None = None,
) -> Executor:
    """Resolve an executor spec to a backend instance.

    ``"serial"`` always runs in-process; ``"pool"`` always builds a
    :class:`PoolExecutor` (even for one worker — useful in tests);
    ``"auto"`` picks serial for ``n_workers <= 1`` and a pool
    otherwise.  An :class:`Executor` instance passes through untouched.
    """
    if isinstance(spec, Executor):
        return spec
    if spec == "serial":
        return SerialExecutor()
    if spec == "pool":
        return PoolExecutor(max(1, n_workers), start_method)
    if spec == "auto":
        if n_workers <= 1:
            return SerialExecutor()
        return PoolExecutor(n_workers, start_method)
    raise ValueError(f"unknown executor spec {spec!r}")
