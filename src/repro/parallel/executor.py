"""Execution backends: a common submit/gather interface over workers.

The paper ships "a sequential and a parallel implementation" (§I).  This
module is the seam between the two: every pair/tile sweep in the library
is expressed as *(initializer payload, task list, task function)* and
handed to an :class:`Executor`, which decides where the tasks run.

- :class:`SerialExecutor` — runs tasks in-process, in order.  The
  correctness reference and the right choice for small problems (no
  process start-up, no result pickling).
- :class:`PoolExecutor` — a **persistent** ``multiprocessing.Pool`` of
  worker processes, created lazily on first use and reused across
  sweeps (Algorithm 1 runs one sweep per iteration; re-forking a pool
  for each was pure start-up overhead).  Payloads are installed into
  live workers through a barrier-gated broadcast — every worker runs
  the initializer exactly once per install — and repeat installs that
  present the same ``payload_token`` may ship only a delta (the worker
  keeps the token-cached static part; see
  :mod:`repro.parallel.pool`).  Optional ``pin=True`` pins each worker
  to one core via ``os.sched_setaffinity`` so its tile scratch stays
  NUMA-local (a silent no-op on platforms without the call).
- :class:`repro.distributed.cluster.ClusterExecutor` (spec
  ``"cluster"``, or ``"auto"`` with ``hosts=``) — the same contract
  sharded over worker agents on other hosts through the socket
  transport; lives in :mod:`repro.distributed` and is resolved lazily
  by :func:`make_executor`.

All backends preserve task order in their results, which is what lets
the tile sweep keep its deterministic chunk stream — parallel and
serial conflict-graph builds are bit-identical per seed (see
:mod:`repro.parallel.pool`).

Lifecycle contract: whoever materializes an :class:`Executor` from a
spec string owns it and must :meth:`~Executor.close` it (or use it as a
context manager) — a persistent pool holds live worker processes until
then.  Passing an :class:`Executor` *instance* into a build function
leaves ownership with the caller.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.pool as mp_pool
import os
from abc import ABC, abstractmethod
from collections.abc import Callable, Hashable, Iterator, Sequence
from contextlib import contextmanager
from typing import Any

from repro import telemetry

__all__ = [
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "WorkerFailure",
    "make_executor",
    "owned_executor",
    "default_start_method",
    "pin_current_worker",
    "token_channel",
]


class WorkerFailure(RuntimeError):
    """A worker (pool process or cluster agent) died or wedged past its
    bound mid-operation.  The backend has already recycled itself when
    this is raised, so the failure is mechanically recoverable: the
    same operation resubmitted on the (fresh) backend — or on a
    fallback one — produces the identical remaining results, which is
    what :class:`repro.resilience.supervisor.ResilientExecutor` does.
    Subclasses ``RuntimeError`` so pre-supervision callers that caught
    the generic error keep working."""

#: Seconds a worker waits at the install barrier before declaring the
#: broadcast broken (a worker died mid-install) instead of hanging.
#: Overridable via ``REPRO_BROADCAST_TIMEOUT_S`` for hosts where a
#: spawn-mode payload pickle can legitimately straggle.
BROADCAST_TIMEOUT_S = float(os.environ.get("REPRO_BROADCAST_TIMEOUT_S", "120"))

#: Seconds the dispatcher waits for any single strip result before
#: declaring the worker dead.  multiprocessing never re-issues a task
#: lost to an abruptly-killed worker, so an unbounded wait would hang
#: the whole build; generous because one strip of a very large sweep
#: can legitimately run for minutes.  Overridable via
#: ``REPRO_RESULT_TIMEOUT_S`` for runs whose densest strip outlasts it.
RESULT_TIMEOUT_S = float(os.environ.get("REPRO_RESULT_TIMEOUT_S", "600"))


def default_start_method() -> str:
    """``"fork"`` where the platform offers it, else ``"spawn"``.

    The ``REPRO_START_METHOD`` environment variable overrides the
    choice (CI forces ``spawn`` to prove the fork-less path works);
    an unavailable forced method raises.
    """
    forced = os.environ.get("REPRO_START_METHOD")
    if forced:
        if forced not in mp.get_all_start_methods():
            raise ValueError(
                f"REPRO_START_METHOD={forced!r} not available "
                f"(have {mp.get_all_start_methods()})"
            )
        return forced
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def pin_current_worker(rank: int) -> bool:
    """Pin the calling process to one CPU of its allowed set.

    Worker ``rank`` takes CPU ``allowed[rank % len(allowed)]``, so a
    pool of ``n_workers <= cores`` lands one worker per core and tile
    scratch stays core-local.  Returns True when the affinity call
    succeeded; platforms without ``sched_setaffinity`` (macOS, Windows)
    and restricted environments degrade to a silent no-op (False).
    """
    getaff = getattr(os, "sched_getaffinity", None)
    setaff = getattr(os, "sched_setaffinity", None)
    if getaff is None or setaff is None:
        return False
    try:
        allowed = sorted(getaff(0))
        if not allowed:
            return False
        setaff(0, {allowed[rank % len(allowed)]})
        return True
    except OSError:
        return False


# -- pool-worker bootstrap ------------------------------------------------
#
# Installed once per worker process at pool creation.  The rank counter
# hands each worker a distinct index (for pinning); the barrier gates
# payload broadcasts so each of the pool's workers runs an install
# exactly once (a worker that finished its install blocks on the
# barrier, so the next install task must go to a different worker).

_POOL_LOCAL: dict[str, Any] = {}


def _bootstrap_pool_worker(
    rank_counter: Any, barrier: Any, pin: bool
) -> None:
    with rank_counter.get_lock():
        rank = rank_counter.value
        rank_counter.value += 1
    _POOL_LOCAL["rank"] = rank
    _POOL_LOCAL["barrier"] = barrier
    _POOL_LOCAL["pinned"] = pin_current_worker(rank) if pin else False
    # This process is a pool worker: its telemetry is a delta shipped
    # home on the finalize broadcast, not the dispatcher's merged view.
    telemetry.mark_worker_process()


def _broadcast_task(arg: tuple[Callable[..., Any], tuple[Any, ...]]) -> Any:
    fn, payload = arg
    barrier = _POOL_LOCAL.get("barrier")
    try:
        ret = fn(*payload)
    except BaseException:
        # Release the peers *now*: without the abort, the n-1 healthy
        # workers would sit at the barrier for the full timeout before
        # this failure could surface to the dispatcher.
        if barrier is not None:
            barrier.abort()
        raise
    if barrier is not None:
        barrier.wait(BROADCAST_TIMEOUT_S)
    # The broadcast return value is the piggyback channel worker
    # telemetry deltas ride home on (see Executor.finalize).
    return ret


def token_channel(token: Hashable) -> Hashable:
    """The namespace a payload token installs under.

    Workers keep one token-cached static payload *per consumer module*
    (the sweep cache in :mod:`repro.parallel.pool`, the palette cache
    in :mod:`repro.coloring.parallel_list`), so the dispatcher must
    track one installed token per such channel too — otherwise a run
    that alternates sweep and coloring installs on one persistent pool
    would evict each other's tokens and force full payloads every
    iteration.  Convention: tuple tokens are namespaced by their first
    element (``("sweep", ...)``, ``("color", ...)``); scalar tokens are
    their own channel.
    """
    if isinstance(token, tuple) and token:
        return token[0]
    return token


class Executor(ABC):
    """Submit/gather interface shared by all backends.

    An executor runs ``task_fn`` over ``tasks`` after installing
    ``payload`` via ``initializer`` exactly once per worker, and returns
    the results *in task order* — the ordering contract the
    deterministic CSR assembly relies on.
    """

    #: Worker processes the backend will use (1 for serial).
    n_workers: int = 1

    #: Whether workers outlive a sweep, making the token-cached static
    #: payload worth keeping (True for persistent pools and cluster
    #: connections — an in-process backend would just pin large arrays
    #: in the dispatcher).
    supports_payload_cache: bool = False

    #: Whether the shared-memory COO gather (:mod:`repro.parallel.shm`)
    #: can carry this backend's results: only same-node process pools —
    #: shared segments do not cross hosts, and in-process sweeps never
    #: cross a pipe at all.  The gather seam falls back to the plain
    #: result stream when this is False.
    supports_shm_gather: bool = False

    #: Slot-prefix under which this backend's finalize-channel
    #: telemetry snapshots merge into the dispatcher view (``w`` for
    #: pool workers, ``s`` for cluster shards — see
    #: :func:`repro.telemetry.absorb_snapshots`).
    telemetry_prefix: str = "w"

    def __init__(self) -> None:
        #: Installed payload token per channel (see :func:`token_channel`);
        #: empty when nothing is installed or the pool has been recycled.
        self._tokens: dict[Hashable, Hashable] = {}
        self._last_token: Hashable = None

    @property
    def _installed_token(self) -> Hashable:
        """Most recently installed payload token (diagnostics/tests)."""
        return self._last_token

    def _record_install(self, token: Hashable) -> None:
        if token is None:
            # A tokenless initializer gives no contract about which
            # worker-side caches it clobbered, so every channel's
            # record is suspect — drop them all (the next tokened
            # install per channel ships in full).
            self._clear_tokens()
            return
        self._last_token = token
        self._tokens[token_channel(token)] = token

    def _clear_tokens(self) -> None:
        self._tokens.clear()
        self._last_token = None

    @abstractmethod
    def imap(
        self,
        task_fn: Callable[..., Any],
        tasks: Sequence[Any],
        initializer: Callable[..., Any] | None = None,
        payload: tuple[Any, ...] = (),
        payload_token: Hashable = None,
    ) -> Iterator[Any]:
        """Run ``task_fn`` over ``tasks``, returning an iterator of
        results in task order — the streaming form consumers use when
        results feed a bounded buffer (e.g. the device COO stream).

        Contract (identical across backends):

        - **Empty task lists never run the initializer** — there is no
          work, so no payload is installed anywhere.
        - **Otherwise initialization is eager**: by the time ``imap``
          returns, ``initializer(*payload)`` has run once in every
          worker (in-process for the serial backend).  Consumers may
          rely on worker state being installed even before the first
          result is consumed.
        - Task *execution* streams lazily; results come back strictly
          in task order.
        - ``payload_token``, when not None, names the installed payload
          so a later call can ask :meth:`holds_token` and ship a
          smaller delta payload instead of the full one.
        """

    def map(
        self,
        task_fn: Callable[..., Any],
        tasks: Sequence[Any],
        initializer: Callable[..., Any] | None = None,
        payload: tuple[Any, ...] = (),
        payload_token: Hashable = None,
    ) -> list[Any]:
        """Run ``task_fn`` over ``tasks``; all results, in task order."""
        return list(
            self.imap(task_fn, tasks, initializer, payload, payload_token)
        )

    def holds_token(self, token: Hashable) -> bool:
        """True when the workers still hold the payload installed under
        ``token`` (same live pool, no recycle since) — the signal that a
        delta payload suffices for the next install.  Tokens are tracked
        per channel, so sweep and coloring payloads on one executor do
        not evict each other."""
        return (
            token is not None
            and self._tokens.get(token_channel(token)) == token
        )

    def worker_capacities(self) -> list[int]:
        """Relative task-weight capacity of each worker slot, aligned
        with the positional deal (slot ``k`` receives ``tasks[k::n]``).

        Homogeneous backends report all-ones; a hierarchical cluster
        shard advertises how many local cores sit behind its agent so
        the strip partitioner can deal it proportionally more pair
        weight (see :func:`repro.parallel.pool.sweep_strip_tasks`)."""
        return [1] * self.n_workers

    def finalize(
        self, fn: Callable[..., Any], payload: tuple[Any, ...] = ()
    ) -> list[Any] | None:
        """Run a cleanup function once per worker after a sweep.

        The dispatcher calls this in a ``finally`` to drop per-sweep
        worker state (colmasks, scratch, derived oracles) so large
        arrays do not stay alive between builds.  In-process for the
        serial backend; a broadcast for pools (no-op when no pool is
        live).  Returns the per-worker return values in slot order
        (``None`` when nothing ran) — the piggyback channel worker
        telemetry deltas ride home on."""
        return [fn(*payload)]

    def close(self) -> None:
        """Release backend resources (worker processes).  Idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class SerialExecutor(Executor):
    """In-process backend: eager initializer, then an ordered lazy loop."""

    n_workers = 1

    def imap(
        self,
        task_fn: Callable,
        tasks: Sequence,
        initializer: Callable | None = None,
        payload: tuple = (),
        payload_token=None,
    ) -> Iterator:
        tasks = list(tasks)
        if not tasks:
            return iter(())
        if initializer is not None:
            initializer(*payload)
            self._record_install(payload_token)
        return map(task_fn, tasks)

    def close(self) -> None:
        self._clear_tokens()


class PoolExecutor(Executor):
    """Persistent process-pool backend over ``multiprocessing``.

    The pool is created lazily on first use and **reused across
    sweeps** until :meth:`close`.  Each sweep's payload is installed
    into the live workers through a barrier-gated broadcast (one
    install per worker, pickled through the task pipe under every start
    method — the fork-time copy-on-write shortcut of the per-sweep pool
    design no longer applies, but neither does its per-sweep fork
    cost).  An abandoned result stream (a consumer aborting mid-sweep,
    e.g. on :class:`~repro.device.sim.DeviceOutOfMemory`) recycles the
    pool so stale tasks never leak into the next sweep.

    Parameters
    ----------
    n_workers:
        Pool size (>= 1).
    start_method:
        ``"fork"``, ``"spawn"``, ``"forkserver"`` or ``None`` to pick
        :func:`default_start_method`.
    pin:
        Pin each worker to one core via ``os.sched_setaffinity``
        (worker ``rank`` -> allowed CPU ``rank % n_cpus``).  A silent
        no-op on platforms without the call.
    """

    supports_payload_cache = True
    supports_shm_gather = True

    def __init__(
        self,
        n_workers: int = 2,
        start_method: str | None = None,
        pin: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} not available "
                f"(have {mp.get_all_start_methods()})"
            )
        super().__init__()
        self.n_workers = n_workers
        self.start_method = start_method
        self.pin = pin
        self._pool: mp_pool.Pool | None = None
        #: Worker pid set at install time, per token channel — a
        #: respawned worker invalidates the delta path for a channel.
        self._token_pids: dict[Hashable, list[int] | None] = {}
        self._streaming = False

    def resolved_start_method(self) -> str:
        """The start method the pool will actually use."""
        return self.start_method or default_start_method()

    @property
    def pool_alive(self) -> bool:
        """True while a worker pool is live (created and not recycled)."""
        return self._pool is not None

    def worker_pids(self) -> list[int] | None:
        """Pids of the live pool's workers ([] when no pool is up) —
        lets tests and diagnostics verify the pool actually persists
        across sweeps instead of being re-forked.  Returns ``None``
        when the interpreter's Pool internals are unreadable; the
        token check treats that as "unknown workers" and forces a full
        install rather than risking a stale delta."""
        if self._pool is None:
            return []
        try:
            return sorted(p.pid for p in self._pool._pool)
        except AttributeError:  # pragma: no cover - future interpreters
            return None

    def _ensure_pool(self) -> mp_pool.Pool:
        pool = self._pool
        if pool is None:
            ctx = mp.get_context(self.resolved_start_method())
            rank_counter = ctx.Value("i", 0)
            barrier = ctx.Barrier(self.n_workers)
            pool = ctx.Pool(
                self.n_workers,
                initializer=_bootstrap_pool_worker,
                initargs=(rank_counter, barrier, self.pin),
            )
            self._pool = pool
            self._clear_tokens()
            self._token_pids.clear()
        return pool

    def _broadcast(
        self, fn: Callable[..., Any], payload: tuple[Any, ...]
    ) -> list[Any]:
        pool = self._ensure_pool()
        try:
            # chunksize=1 so the n_workers install tasks go to n_workers
            # distinct workers: a worker that ran its install blocks at
            # the barrier until every worker has one.  map_async + a
            # bounded get, not map: a worker abruptly killed after
            # dequeuing its install task never reports a result and
            # multiprocessing does not re-issue lost tasks, so a plain
            # map would block forever.
            result = pool.map_async(
                _broadcast_task, [(fn, payload)] * self.n_workers, chunksize=1
            )
            return result.get(BROADCAST_TIMEOUT_S + 30.0)
        except mp.TimeoutError:
            self._recycle()
            raise WorkerFailure(
                "payload broadcast timed out — a pool worker likely died "
                "mid-install; the pool has been recycled"
            ) from None
        except Exception:
            # An install failed (or its barrier broke): the barrier is
            # unusable for this pool either way, so recycle now — the
            # next use gets fresh workers and a fresh barrier instead
            # of raising BrokenBarrierError forever.
            self._recycle()
            raise

    def _stream(self, result_iter: mp_pool.IMapIterator) -> Iterator[Any]:
        """Yield pool results with a bounded per-result wait; recycle
        the pool if the stream is abandoned mid-sweep or wedged."""
        done = False
        try:
            while True:
                try:
                    item = result_iter.next(RESULT_TIMEOUT_S)
                except StopIteration:
                    break
                except mp.TimeoutError:
                    # Same failure mode the install broadcast guards
                    # against: a worker killed mid-strip never reports
                    # and the task is never re-issued.
                    raise WorkerFailure(
                        f"no sweep result within {RESULT_TIMEOUT_S:.0f}s — "
                        "a pool worker likely died mid-strip; the pool "
                        "has been recycled"
                    ) from None
                yield item
            done = True
        finally:
            self._streaming = False
            if not done:
                # Unconsumed tasks are churning toward a dead iterator;
                # terminate them now and start clean next sweep.
                self._recycle()

    def _recycle(self) -> None:
        if self._pool is not None:
            telemetry.count("pool.recycle")
            self._pool.terminate()
            # reprolint: disable=bounded-blocking -- mp.Pool.join() takes
            # no timeout; terminate() above SIGTERMs the workers first.
            self._pool.join()
            self._pool = None
        self._clear_tokens()
        self._token_pids.clear()
        self._streaming = False

    def holds_token(self, token: Hashable) -> bool:
        """A pool additionally demands the worker set is unchanged: a
        worker that died was auto-respawned by ``multiprocessing`` with
        an empty payload cache, so a delta-only install would strand it
        (and stall the healthy workers at the broadcast barrier) — any
        respawn (or an unreadable worker set) forces the next install
        to ship the full payload."""
        pids = self.worker_pids()
        return (
            super().holds_token(token)
            and pids is not None
            and pids == self._token_pids.get(token_channel(token))
        )

    def imap(
        self,
        task_fn: Callable[..., Any],
        tasks: Sequence[Any],
        initializer: Callable[..., Any] | None = None,
        payload: tuple[Any, ...] = (),
        payload_token: Hashable = None,
    ) -> Iterator[Any]:
        tasks = list(tasks)
        if not tasks:
            return iter(())
        if self._streaming:
            # PR 2's per-sweep pools isolated overlapping sweeps by
            # construction; a persistent pool cannot — a new install
            # would overwrite worker state while the previous sweep's
            # strips are still queued, silently corrupting its results.
            # Fail loudly instead.
            raise RuntimeError(
                "PoolExecutor does not support overlapping sweeps: finish, "
                "close, or abandon the previous result stream first"
            )
        pool = self._ensure_pool()
        if initializer is not None:
            self._broadcast(initializer, payload)
            self._record_install(payload_token)
            if payload_token is None:
                self._token_pids.clear()
            else:
                self._token_pids[token_channel(payload_token)] = (
                    self.worker_pids()
                )
        # imap (not map): results stream back in task order as they
        # finish, so a consumer filling a bounded buffer — the device
        # COO stream — never holds every strip's hit arrays at once and
        # can abort (DeviceOutOfMemory) mid-sweep.
        self._streaming = True
        return self._stream(pool.imap(task_fn, tasks))

    def broadcast(
        self, fn: Callable[..., Any], payload: tuple[Any, ...] = ()
    ) -> None:
        """Run ``fn(*payload)`` once in every pool worker, eagerly.

        The install primitive ``imap`` uses internally, exposed for
        callers that must forward an install RPC verbatim to every
        local worker — the hierarchical cluster agent
        (:class:`repro.distributed.worker.WorkerAgent`) fans each
        install/finalize message out through this.  Token bookkeeping is
        the caller's problem (the agent's dispatcher tracks tokens
        end-to-end; tracking them here too would double-count)."""
        self._broadcast(fn, payload)

    def finalize(
        self, fn: Callable[..., Any], payload: tuple[Any, ...] = ()
    ) -> list[Any] | None:
        if self._pool is not None:
            try:
                return self._broadcast(fn, payload)
            except Exception:
                # Finalize runs inside dispatchers' ``finally`` blocks:
                # a cleanup failure must not mask the sweep's own
                # exception.  _broadcast already recycled the pool, so
                # the stale worker state is gone with the processes.
                pass
        return None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            # reprolint: disable=bounded-blocking -- mp.Pool.join() takes
            # no timeout; close() stops intake so idle workers exit.
            self._pool.join()
            self._pool = None
        self._clear_tokens()
        self._token_pids.clear()
        self._streaming = False

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self._recycle()
        except Exception:
            pass


def make_executor(
    spec: str | Executor = "auto",
    n_workers: int = 1,
    start_method: str | None = None,
    pin: bool = False,
    hosts: str | Sequence[str] | None = None,
    transport: str = "socket",
) -> Executor:
    """Resolve an executor spec to a backend instance.

    ``"serial"`` always runs in-process; ``"pool"`` always builds a
    :class:`PoolExecutor` (even for one worker — useful in tests);
    ``"auto"`` picks serial for ``n_workers <= 1``, a pool otherwise —
    unless ``hosts`` is given, which routes ``"auto"`` to the cluster
    backend.  ``"cluster"`` always builds a
    :class:`~repro.distributed.cluster.ClusterExecutor` over the worker
    agents named by ``hosts`` (``"host:port,host:port"`` or a
    sequence), falling back to the ``REPRO_HOSTS`` environment
    variable; ``transport`` selects the wire protocol (``"socket"``).
    An :class:`Executor` instance passes through untouched
    (``pin``/``start_method``/``hosts`` are ignored for it; the
    instance's owner configured and closes it).  Spec-created executors
    are owned by the caller, who must close them.
    """
    if isinstance(spec, Executor):
        return spec
    if spec == "cluster" or (spec == "auto" and hosts):
        if hosts is None:
            hosts = os.environ.get("REPRO_HOSTS")
        if not hosts:
            raise ValueError(
                "executor='cluster' needs hosts (PicassoParams(hosts=...), "
                "--hosts, or the REPRO_HOSTS environment variable)"
            )
        # Imported lazily: repro.distributed builds on this module.
        from repro.distributed.cluster import make_cluster_executor

        return make_cluster_executor(hosts, transport)
    if spec == "serial":
        return SerialExecutor()
    if spec == "pool":
        return PoolExecutor(max(1, n_workers), start_method, pin=pin)
    if spec == "auto":
        if n_workers <= 1:
            return SerialExecutor()
        return PoolExecutor(n_workers, start_method, pin=pin)
    raise ValueError(f"unknown executor spec {spec!r}")


@contextmanager
def owned_executor(
    spec: str | Executor = "auto",
    n_workers: int = 1,
    start_method: str | None = None,
    pin: bool = False,
    hosts: str | Sequence[str] | None = None,
    transport: str = "socket",
) -> Iterator[Executor]:
    """The executor-lifecycle contract as a context manager.

    Resolves ``spec`` like :func:`make_executor` and, on exit, closes
    the backend *only if this call materialized it* — an
    :class:`Executor` instance passed through stays open for its owner.
    Every build function that accepts a spec-or-instance uses this one
    expression of the ownership rule instead of hand-rolling it.
    """
    ex = make_executor(spec, n_workers, start_method, pin, hosts, transport)
    try:
        yield ex
    finally:
        if ex is not spec:
            ex.close()
