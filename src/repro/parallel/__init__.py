"""Parallel execution substrate (paper §I's parallel implementation).

Three layers: partitioners slice the pair/tile domain
(:mod:`repro.parallel.partition`), execution backends run task lists
over workers (:mod:`repro.parallel.executor`), and the sweep dispatcher
wires kernels to backends (:mod:`repro.parallel.pool`).
"""

from repro.parallel.executor import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    default_start_method,
    make_executor,
)
from repro.parallel.partition import (
    PairRange,
    TileBlock,
    block_pair_count,
    partition_pairs,
    partition_tiles,
    tile_grid,
)
from repro.parallel.pool import (
    block_sweep_chunks,
    conflict_sweep_chunks,
    parallel_conflict_graph,
)

__all__ = [
    "Executor",
    "PoolExecutor",
    "SerialExecutor",
    "default_start_method",
    "make_executor",
    "PairRange",
    "TileBlock",
    "block_pair_count",
    "partition_pairs",
    "partition_tiles",
    "tile_grid",
    "block_sweep_chunks",
    "conflict_sweep_chunks",
    "parallel_conflict_graph",
]
