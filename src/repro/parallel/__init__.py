"""Parallel execution substrate (paper §I's parallel implementation).

Four layers: partitioners slice the pair/tile domain
(:mod:`repro.parallel.partition`), execution backends run task lists
over persistent workers (:mod:`repro.parallel.executor`), the
shared-memory gather carries hits back zero-copy
(:mod:`repro.parallel.shm`), and the sweep dispatcher wires kernels to
backends (:mod:`repro.parallel.pool`).
"""

from repro.parallel.executor import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    default_start_method,
    make_executor,
    pin_current_worker,
)
from repro.parallel.partition import (
    PairRange,
    TileBlock,
    block_pair_count,
    partition_pairs,
    partition_tiles,
    tile_grid,
)
from repro.parallel.pool import (
    block_sweep_chunks,
    conflict_sweep_chunks,
    parallel_conflict_graph,
    payload_token_for,
)
from repro.parallel.shm import (
    ShmCooRegion,
    ShmGatherResult,
    estimate_conflict_edges,
    plan_strip_slots,
    shm_conflict_gather,
)

__all__ = [
    "Executor",
    "PoolExecutor",
    "SerialExecutor",
    "default_start_method",
    "make_executor",
    "pin_current_worker",
    "ShmCooRegion",
    "ShmGatherResult",
    "estimate_conflict_edges",
    "plan_strip_slots",
    "shm_conflict_gather",
    "payload_token_for",
    "PairRange",
    "TileBlock",
    "block_pair_count",
    "partition_pairs",
    "partition_tiles",
    "tile_grid",
    "block_sweep_chunks",
    "conflict_sweep_chunks",
    "parallel_conflict_graph",
]
