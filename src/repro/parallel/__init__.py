"""Parallel execution substrate (paper §I's parallel implementation)."""

from repro.parallel.partition import PairRange, partition_pairs
from repro.parallel.pool import parallel_conflict_graph

__all__ = ["PairRange", "partition_pairs", "parallel_conflict_graph"]
