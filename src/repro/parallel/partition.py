"""Pair-space partitioning for parallel execution.

The conflict-edge kernel's domain is the flat index range
``[0, n(n-1)/2)``.  Partitioning that range — rather than the vertex
range — gives perfectly balanced work regardless of degree skew, the
same decomposition the paper's CUDA grid uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.chunking import num_pairs


@dataclass(frozen=True)
class PairRange:
    """Half-open flat pair-index range ``[start, stop)``."""

    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def partition_pairs(n: int, n_parts: int) -> list[PairRange]:
    """Split the pair space of ``n`` vertices into ``n_parts`` balanced
    contiguous ranges (sizes differ by at most one pair)."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    total = num_pairs(n)
    base, extra = divmod(total, n_parts)
    out = []
    start = 0
    for k in range(n_parts):
        size = base + (1 if k < extra else 0)
        out.append(PairRange(start, start + size))
        start += size
    return [r for r in out if len(r) > 0] or [PairRange(0, 0)]
