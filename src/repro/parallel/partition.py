"""Pair-space and tile-grid partitioning for parallel execution.

Two decompositions of the same upper-triangular pair domain:

- :func:`partition_pairs` splits the flat index range ``[0, n(n-1)/2)``
  into balanced contiguous :class:`PairRange` slices — the domain of
  the ``"pairs"`` gather engine, one simulated SIMT thread per pair.
- :func:`partition_tiles` splits the upper-triangular ``(row_block,
  col_block)`` grid of the tiled engine (:mod:`repro.device.tiles`)
  into balanced contiguous :class:`TileBlock` strips.  Tiles keep their
  canonical row-major order inside each strip, so a parallel sweep that
  concatenates strip results in strip order reproduces the serial
  sweep's chunk stream exactly — the property that keeps parallel and
  serial conflict-graph builds bit-identical.

Partitioning either domain — rather than the vertex range — gives
balanced work regardless of degree skew, the same decomposition the
paper's CUDA grid uses.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.util.chunking import num_pairs

__all__ = [
    "PairRange",
    "partition_pairs",
    "TileBlock",
    "tile_grid",
    "block_pair_count",
    "partition_tiles",
]

#: Per-part capacity weights: any 1-D integer sequence (one positive
#: entry per part), e.g. the executor's advertised worker capacities.
ShareSpec = Sequence[int] | np.ndarray


@dataclass(frozen=True)
class PairRange:
    """Half-open flat pair-index range ``[start, stop)``."""

    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def _check_shares(shares: ShareSpec, n_parts: int) -> np.ndarray:
    arr = np.asarray(shares, dtype=np.int64)
    if arr.ndim != 1 or len(arr) != n_parts:
        raise ValueError("shares must have one entry per part")
    if np.any(arr <= 0):
        raise ValueError("shares must be positive")
    return arr


def partition_pairs(
    n: int,
    n_parts: int,
    shares: ShareSpec | None = None,
    keep_empty: bool = False,
) -> list[PairRange]:
    """Split the pair space of ``n`` vertices into ``n_parts`` balanced
    contiguous ranges (sizes differ by at most one pair).

    With ``shares`` (one positive integer per part), each range's size
    is instead proportional to its share: boundaries sit where the pair
    prefix crosses ``total * cumsum(shares) / sum(shares)``, so every
    part's size is within one pair of its ideal weighted quota.

    ``keep_empty`` keeps zero-length ranges in place (always exactly
    ``n_parts`` entries) — required by the capacity-weighted positional
    deal, where part ``k`` must stay at index ``k``.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    total = num_pairs(n)
    out: list[PairRange] = []
    if shares is None:
        base, extra = divmod(total, n_parts)
        start = 0
        for k in range(n_parts):
            size = base + (1 if k < extra else 0)
            out.append(PairRange(start, start + size))
            start += size
    else:
        arr = _check_shares(shares, n_parts)
        csum = np.cumsum(arr)
        share_total = int(csum[-1])
        bounds = [0] + [
            int(total * int(c) // share_total) for c in csum
        ]
        for a, b in zip(bounds[:-1], bounds[1:]):
            out.append(PairRange(a, b))
    if keep_empty:
        return out
    return [r for r in out if len(r) > 0] or [PairRange(0, 0)]


@dataclass(frozen=True)
class TileBlock:
    """Contiguous strip ``[start, stop)`` of upper-triangle tile indices
    in the canonical row-major order of
    :func:`repro.device.tiles.iter_tiles`, plus its pair weight."""

    start: int
    stop: int
    n_pairs: int

    def __len__(self) -> int:
        return self.stop - self.start


def tile_grid(n: int, tile: int) -> list[tuple[int, int, int, int]]:
    """The canonical upper-triangle tile list ``[(r0, r1, c0, c1), ...]``.

    Materialized from :func:`repro.device.tiles.iter_tiles` so every
    consumer — serial sweep, partitioner, pool workers — agrees on one
    tile order.
    """
    from repro.device.tiles import iter_tiles

    return list(iter_tiles(n, tile))


def block_pair_count(r0: int, r1: int, c0: int, c1: int) -> int:
    """Number of unordered pairs ``i < j`` inside one tile.

    Diagonal tiles of :func:`tile_grid` are square (``r0 == c0``,
    ``r1 == c1``) and contribute their strict upper triangle; every
    other tile sits fully above the diagonal and contributes the whole
    rectangle.
    """
    if r0 == c0:
        s = r1 - r0
        return s * (s - 1) // 2
    return (r1 - r0) * (c1 - c0)


def partition_tiles(
    n: int,
    tile: int,
    n_parts: int,
    shares: ShareSpec | None = None,
    keep_empty: bool = False,
) -> list[TileBlock]:
    """Split the tile grid into ``n_parts`` contiguous strips balanced
    by pair weight.

    Strip boundaries are placed where the prefix pair weight crosses
    the ideal targets ``total * k / n_parts``, so each strip's weight
    differs from the ideal share by less than one tile's weight (tiles
    are atomic — "balance within one tile").  Empty strips are dropped;
    a degenerate grid yields one empty block, mirroring
    :func:`partition_pairs`.

    With ``shares`` (one positive integer per part), targets become
    ``total * cumsum(shares) / sum(shares)`` so strip k's pair weight is
    proportional to ``shares[k]``, still within one tile of its quota.
    Uniform shares reproduce the unweighted targets exactly, so the
    weighted partitioner is a strict generalization.  ``keep_empty``
    keeps zero-tile strips in place (always exactly ``n_parts``
    entries) for the capacity-weighted positional deal.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if shares is not None:
        _check_shares(shares, n_parts)
    grid = tile_grid(n, tile)
    weights = np.array(
        [block_pair_count(*b) for b in grid], dtype=np.int64
    )
    prefix = np.cumsum(weights)
    total = int(prefix[-1]) if len(prefix) else 0
    if total == 0:
        if keep_empty:
            return [TileBlock(0, 0, 0)] * n_parts
        return [TileBlock(0, 0, 0)]
    # Boundary after the first tile whose prefix weight reaches each
    # ideal target; monotone by construction of the targets.
    if shares is None:
        targets = (total * np.arange(1, n_parts, dtype=np.int64)) // n_parts
    else:
        csum = np.cumsum(_check_shares(shares, n_parts))
        targets = (total * csum[:-1]) // int(csum[-1])
    cuts = np.searchsorted(prefix, targets, side="left") + 1
    bounds = [0, *cuts.tolist(), len(grid)]
    out: list[TileBlock] = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        if b > a:
            w = int(prefix[b - 1]) - (int(prefix[a - 1]) if a else 0)
            out.append(TileBlock(a, b, w))
        elif keep_empty:
            out.append(TileBlock(a, b, 0))
    return out or [TileBlock(0, 0, 0)]
