"""Algorithm 3: device-assisted conflict-graph construction in CSR form.

Faithful to the paper's control flow:

1. allocate ``min(worst-case edge list, remaining device memory)`` for
   the unordered COO buffer (line 1–2);
2. launch the pair kernel to fill the COO edge list and per-vertex
   degree counters (line 3) — overflowing the COO buffer is a device
   OOM, the failure mode Fig. 2's dashed line delimits;
3. exclusive-scan the counters into CSR offsets (line 4);
4. if the COO list fits in half the *allocated* memory, assemble CSR
   "on device", otherwise fall back to host assembly (lines 5–8) —
   CSR stores each edge twice, hence the factor of two.

Counters are 4-byte when ``|V|^2 < 2^32`` and 8-byte otherwise, exactly
as §V describes.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass

import numpy as np

from repro.device.kernels import EdgeMaskFn, exclusive_scan
from repro.device.sim import DeviceSim
from repro.device.tiles import (
    DEFAULT_TILE_BYTES,
    EdgeBlockFn,
    tile_edge,
    tile_scratch_bytes,
)
from repro.graphs.csr import CSRGraph
from repro.parallel.executor import Executor, owned_executor
from repro.parallel.pool import conflict_hit_chunks


@dataclass
class BuildStats:
    """Where and how big the Algorithm 3 build was."""

    n_vertices: int
    n_conflict_edges: int
    built_on_device: bool
    device_peak_bytes: int
    coo_capacity_edges: int
    engine: str = "pairs"
    n_workers: int = 1
    gather: str = "pickle"


def build_conflict_csr(
    n: int,
    edge_mask_fn: EdgeMaskFn,
    colmasks: np.ndarray,
    device: DeviceSim,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    n_workers: int = 1,
    executor: str | Executor = "auto",
    shm: bool = False,
    est_conflict_edges: float | None = None,
    source=None,
    active_idx=None,
    kernel_backend: str | None = None,
) -> tuple[CSRGraph, BuildStats]:
    """Run Algorithm 3 on a simulated device.

    Parameters
    ----------
    n:
        Number of active vertices.
    edge_mask_fn:
        Complement-edge oracle over pair index arrays.
    colmasks:
        ``(n, W)`` packed candidate-color bitsets.
    device:
        Budgeted device; raises :class:`DeviceOutOfMemory` when the COO
        buffer cannot hold the conflict edges.
    chunk_size:
        Pairs per kernel launch (``"pairs"`` engine).
    engine:
        ``"tiled"`` block-broadcast sweep (default) or ``"pairs"`` flat
        chunks.  The tiled engine's block scratch is a named device
        allocation sized against the remaining budget *before* the COO
        buffer takes the rest; if even a minimum tile cannot fit
        alongside a useful COO buffer the build degrades to the
        scratch-free pair engine (mirroring Algorithm 3's own
        device/host fallback discipline).
    edge_block_fn:
        Optional block edge oracle for the tiled engine.
    tile_bytes:
        Upper bound on the tile scratch allocation *per worker*.
    n_workers:
        Worker processes for the sweep; every worker owns a private
        tile scratch, so the device is charged ``n_workers`` times the
        per-tile scratch (a multi-SM kernel reserves shared memory per
        resident block the same way).
    executor:
        Backend spec or instance (see :mod:`repro.parallel.executor`).
        A spec-created backend is closed before returning; a passed
        instance stays open for its owner.
    shm:
        Stage worker hits in a shared-memory COO region
        (:mod:`repro.parallel.shm`) instead of the result pipe.  The
        staging region is charged to the device budget like any other
        allocation (pinned host staging of a real GPU gather), so OOM
        semantics stay honest.  Ignored for backends that cannot carry
        it (serial in-process sweeps, cross-host cluster backends).
    est_conflict_edges:
        Lemma 2 expectation for shm region sizing (``None`` derives a
        bound from the masks).
    source, active_idx:
        Root edge source + active indices for the persistent-pool
        delta payload (:mod:`repro.parallel.pool`).
    kernel_backend:
        Kernel-backend *name* (:mod:`repro.device.backends`) for the
        sweep's hot kernels; ``None`` keeps the direct numpy path.

    Returns
    -------
    (graph, stats):
        The conflict graph in CSR form plus build provenance.
    """
    with owned_executor(executor, n_workers) as ex:
        return _algorithm3(
            n, edge_mask_fn, colmasks, device, chunk_size, engine,
            edge_block_fn, tile_bytes, ex, shm, est_conflict_edges,
            source, active_idx, kernel_backend,
        )


def _algorithm3(
    n, edge_mask_fn, colmasks, device, chunk_size, engine, edge_block_fn,
    tile_bytes, ex, shm, est_conflict_edges, source, active_idx,
    kernel_backend=None,
) -> tuple[CSRGraph, BuildStats]:
    """Algorithm 3 proper, against an already-resolved executor."""
    workers = max(1, ex.n_workers)
    use_shm = shm and ex.supports_shm_gather

    # All build allocations go through DeviceSim.scratch on one
    # ExitStack — the same named-allocation discipline the coloring
    # engines use for their palette scratch — so every buffer is freed
    # exactly once whether the build completes or aborts mid-stream.
    with ExitStack() as allocs:
        # Input residency: encoded strings + color lists live on device
        # for the kernel (approximated by the colmask bytes; the Pauli
        # payload is charged by the caller, which owns its lifetime).
        allocs.enter_context(device.scratch("colmasks", int(colmasks.nbytes)))

        # Degree counters: 4-byte if |V|^2 < 2^32 else 8-byte (§V).
        counter_bytes = 4 if n * n < 2**32 else 8
        allocs.enter_context(
            device.scratch("edge_counters", 2 * n * counter_bytes)
        )

        # Tile scratch: reserved ahead of the COO buffer (which takes
        # all remaining memory).  At most a quarter of what is left —
        # split across workers, each of which owns a private scratch —
        # so the COO stream keeps the lion's share; degrade to the pair
        # engine when a minimum tile per worker would not fit.
        tile = None
        if engine == "tiled":
            candidate = tile_edge(
                colmasks.shape[1],
                min(tile_bytes, device.available // 4 // workers),
                n=n,
            )
            # The block edge oracle (dense-tile path) brings its own
            # (R, C) temporaries on top of the TileScratch buffers —
            # charge both, for every worker, so the simulated peak
            # stays honest.
            scratch = (
                tile_scratch_bytes(candidate)
                * (2 if edge_block_fn else 1)
                * workers
            )
            if scratch <= device.available // 2:
                allocs.enter_context(device.scratch("tile_scratch", scratch))
                tile = candidate
            else:
                engine = "pairs"

        # Shm staging must be budgeted *before* the COO buffer takes
        # all remaining memory, or the mandatory staging allocation
        # would find 0 bytes available whenever the worst case reaches
        # the budget.
        staging_hint = 0
        if use_shm:
            from repro.parallel.pool import TASKS_PER_WORKER
            from repro.parallel.shm import (
                estimate_conflict_edges,
                staging_bytes_hint,
            )

            if est_conflict_edges is None:
                # Reused below for slot planning too — one mask pass,
                # not two.
                est_conflict_edges = estimate_conflict_edges(n, colmasks)
            staging_hint = staging_bytes_hint(
                n, est_conflict_edges, workers * TASKS_PER_WORKER
            )

        # COO buffer: min(worst case, all remaining memory minus the
        # shm staging reservation). Each COO entry is two vertex ids.
        id_bytes = 4 if n < 2**31 else 8
        worst_case_bytes = 2 * n * max(n - 1, 0) * id_bytes
        coo_bytes = min(
            worst_case_bytes, max(device.available - staging_hint, 0)
        )
        allocs.enter_context(device.scratch("coo_edges", coo_bytes))
        capacity = coo_bytes // (2 * id_bytes)

        # Shared-memory staging regions are device-charged as they
        # appear (the initial region, plus a retry region on
        # undershoot) — the pinned-host-staging analog of a real GPU
        # gather.
        shm_count = 0

        def _charge_shm_region(nbytes: int) -> None:
            nonlocal shm_count
            allocs.enter_context(
                device.scratch(f"shm_coo_{shm_count}", nbytes)
            )
            shm_count += 1

        id_dtype = np.int32 if id_bytes == 4 else np.int64
        coo_u = np.empty(capacity, dtype=id_dtype)
        coo_v = np.empty(capacity, dtype=id_dtype)
        n_edges = 0
        with conflict_hit_chunks(
            n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
            tile=tile, executor=ex, shm=shm,
            est_conflict_edges=est_conflict_edges,
            source=source, active_idx=active_idx,
            region_cb=_charge_shm_region,
            kernel_backend=kernel_backend,
        ) as hit_stream:
            try:
                for ei, ej in hit_stream:
                    if n_edges + len(ei) > capacity:
                        device.n_ooms += 1
                        from repro.device.sim import DeviceOutOfMemory

                        raise DeviceOutOfMemory(
                            f"COO buffer overflow: {n_edges + len(ei)} "
                            f"conflict edges exceed capacity {capacity}"
                        )
                    coo_u[n_edges : n_edges + len(ei)] = ei
                    coo_v[n_edges : n_edges + len(ej)] = ej
                    n_edges += len(ei)
            finally:
                # The loop variables are views into the shared region on
                # the shm path; drop them before the gather context
                # closes the segment, or the unmap would see live
                # buffer exports.
                ei = ej = None

        # Degree counters in one pass over the filled COO region —
        # O(|Ec| + n), independent of how many kernel launches fed it.
        counts = np.bincount(coo_u[:n_edges], minlength=n)
        counts += np.bincount(coo_v[:n_edges], minlength=n)
        offsets = exclusive_scan(counts)

        # CSR needs each edge twice; assemble on device only if the COO
        # list occupies at most half of the *allocated* region (Alg. 3
        # line 5) — the CSR targets are then scattered into the spare
        # half of the same allocation, so no further device memory is
        # requested.  Otherwise the unordered list is read back and
        # converted on the host (lines 7-8).
        csr_payload = 2 * n_edges * id_bytes
        on_device = csr_payload <= coo_bytes // 2
        graph = _assemble_csr(
            offsets, coo_u[:n_edges], coo_v[:n_edges], id_dtype
        )

    stats = BuildStats(
        n_vertices=n,
        n_conflict_edges=n_edges,
        built_on_device=on_device,
        device_peak_bytes=device.peak_bytes,
        coo_capacity_edges=int(capacity),
        engine=engine,
        n_workers=workers,
        gather="shm" if use_shm else "pickle",
    )
    return graph, stats


def _assemble_csr(
    offsets: np.ndarray, u: np.ndarray, v: np.ndarray, id_dtype
) -> CSRGraph:
    """Scatter the unordered COO list into CSR rows (both directions)."""
    src = np.concatenate([u, v]).astype(np.int64)
    dst = np.concatenate([v, u]).astype(id_dtype)
    order = np.argsort(src, kind="stable")
    return CSRGraph(offsets=offsets, targets=dst[order])
