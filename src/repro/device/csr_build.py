"""Algorithm 3: device-assisted conflict-graph construction in CSR form.

Faithful to the paper's control flow:

1. allocate ``min(worst-case edge list, remaining device memory)`` for
   the unordered COO buffer (line 1–2);
2. launch the pair kernel to fill the COO edge list and per-vertex
   degree counters (line 3) — overflowing the COO buffer is a device
   OOM, the failure mode Fig. 2's dashed line delimits;
3. exclusive-scan the counters into CSR offsets (line 4);
4. if the COO list fits in half the *allocated* memory, assemble CSR
   "on device", otherwise fall back to host assembly (lines 5–8) —
   CSR stores each edge twice, hence the factor of two.

Counters are 4-byte when ``|V|^2 < 2^32`` and 8-byte otherwise, exactly
as §V describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.kernels import EdgeMaskFn, conflict_pair_kernel, exclusive_scan
from repro.device.sim import DeviceSim
from repro.graphs.csr import CSRGraph
from repro.util.chunking import iter_pair_chunks


@dataclass
class BuildStats:
    """Where and how big the Algorithm 3 build was."""

    n_vertices: int
    n_conflict_edges: int
    built_on_device: bool
    device_peak_bytes: int
    coo_capacity_edges: int


def build_conflict_csr(
    n: int,
    edge_mask_fn: EdgeMaskFn,
    colmasks: np.ndarray,
    device: DeviceSim,
    chunk_size: int = 1 << 18,
) -> tuple[CSRGraph, BuildStats]:
    """Run Algorithm 3 on a simulated device.

    Parameters
    ----------
    n:
        Number of active vertices.
    edge_mask_fn:
        Complement-edge oracle over pair index arrays.
    colmasks:
        ``(n, W)`` packed candidate-color bitsets.
    device:
        Budgeted device; raises :class:`DeviceOutOfMemory` when the COO
        buffer cannot hold the conflict edges.
    chunk_size:
        Pairs per kernel launch.

    Returns
    -------
    (graph, stats):
        The conflict graph in CSR form plus build provenance.
    """
    # Input residency: encoded strings + color lists live on device for
    # the kernel (approximated by the colmask bytes; the Pauli payload
    # is charged by the caller, which owns its lifetime).
    device.alloc("colmasks", int(colmasks.nbytes))

    # Degree counters: 4-byte if |V|^2 < 2^32 else 8-byte (§V).
    counter_bytes = 4 if n * n < 2**32 else 8
    device.alloc("edge_counters", 2 * n * counter_bytes)

    # COO buffer: min(worst case, all remaining memory). Each COO entry
    # is two vertex ids.
    id_bytes = 4 if n < 2**31 else 8
    worst_case_bytes = 2 * n * max(n - 1, 0) * id_bytes
    coo_bytes = min(worst_case_bytes, device.available)
    device.alloc("coo_edges", coo_bytes)
    capacity = coo_bytes // (2 * id_bytes)

    id_dtype = np.int32 if id_bytes == 4 else np.int64
    coo_u = np.empty(capacity, dtype=id_dtype)
    coo_v = np.empty(capacity, dtype=id_dtype)
    counts = np.zeros(n, dtype=np.int64)
    n_edges = 0
    try:
        for i, j in iter_pair_chunks(n, chunk_size):
            mask = conflict_pair_kernel(edge_mask_fn, colmasks, i, j).astype(bool)
            ei = i[mask]
            ej = j[mask]
            if n_edges + len(ei) > capacity:
                device.n_ooms += 1
                from repro.device.sim import DeviceOutOfMemory

                raise DeviceOutOfMemory(
                    f"COO buffer overflow: {n_edges + len(ei)} conflict edges "
                    f"exceed capacity {capacity}"
                )
            coo_u[n_edges : n_edges + len(ei)] = ei
            coo_v[n_edges : n_edges + len(ej)] = ej
            n_edges += len(ei)
            np.add.at(counts, ei, 1)
            np.add.at(counts, ej, 1)

        offsets = exclusive_scan(counts)

        # CSR needs each edge twice; assemble on device only if the COO
        # list occupies at most half of the *allocated* region (Alg. 3
        # line 5) — the CSR targets are then scattered into the spare
        # half of the same allocation, so no further device memory is
        # requested.  Otherwise the unordered list is read back and
        # converted on the host (lines 7-8).
        csr_payload = 2 * n_edges * id_bytes
        on_device = csr_payload <= coo_bytes // 2
        graph = _assemble_csr(
            offsets, coo_u[:n_edges], coo_v[:n_edges], id_dtype
        )
    finally:
        device.free("coo_edges")
        device.free("edge_counters")
        device.free("colmasks")

    stats = BuildStats(
        n_vertices=n,
        n_conflict_edges=n_edges,
        built_on_device=on_device,
        device_peak_bytes=device.peak_bytes,
        coo_capacity_edges=int(capacity),
    )
    return graph, stats


def _assemble_csr(
    offsets: np.ndarray, u: np.ndarray, v: np.ndarray, id_dtype
) -> CSRGraph:
    """Scatter the unordered COO list into CSR rows (both directions)."""
    src = np.concatenate([u, v]).astype(np.int64)
    dst = np.concatenate([v, u]).astype(id_dtype)
    order = np.argsort(src, kind="stable")
    return CSRGraph(offsets=offsets, targets=dst[order])
