"""Kernel-backend contract and registry (the accelerator dispatch seam).

The tiled sweep drivers in :mod:`repro.device.tiles` and the coloring
engines consume three *hot* word-level primitives — popcount-parity
(`anticommute`), palette-intersect (`conflict candidate`) and
lowest-set-bit (`color pick`) — plus two thin per-tile drivers built on
them.  This module narrows that surface into one typed contract,
:class:`KernelBackend`, and a name-keyed registry mirroring the
coloring-engine registry (:mod:`repro.coloring.engine`):

- :func:`register_backend` / :func:`get_backend` /
  :func:`registered_backends` / :func:`available_backends` — the
  registry.  *Registered* names include backends whose runtime is not
  importable here (``cupy`` on a CPU host); *available* names are the
  subset that can actually run, which is what test parametrization and
  benchmarks iterate.
- :func:`resolve_backend` — the selection policy shared by the driver
  and every worker initializer: an explicit name wins, ``None`` /
  ``"auto"`` falls back to ``REPRO_KERNEL_BACKEND``, then ``"numpy"``.
  An unavailable or unknown name degrades to numpy with a one-line
  stderr note (once per name per process) instead of failing the run —
  backends are bit-identical by contract, so the fallback is always
  safe, merely slower.

Every backend must reproduce the numpy reference **bit for bit**: the
equivalence suites parametrize over :func:`available_backends` and
require identical CSR structures and colorings per seed.  Anything that
cannot meet that bar is not a backend, it is a different algorithm.
"""

from __future__ import annotations

import os
import sys
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro import telemetry

if TYPE_CHECKING:
    from repro.device.tiles import EdgeBlockFn, TileScratch

__all__ = [
    "KernelBackend",
    "register_backend",
    "get_backend",
    "registered_backends",
    "available_backends",
    "resolve_backend",
]

#: Environment override consulted by :func:`resolve_backend` when no
#: explicit backend name is given (mirrors ``REPRO_FUSED`` and the
#: executor envs).
ENV_VAR = "REPRO_KERNEL_BACKEND"


class KernelBackend(ABC):
    """Contract of one compute-kernel implementation.

    The three abstract primitives are the hot words; the two concrete
    drivers (:meth:`conflict_hits_block`, :meth:`block_hits`) delegate
    to the shared tile logic in :mod:`repro.device.tiles` with
    ``backend=self`` so diagonal masking, dense-vs-gather oracle policy
    and hit ordering live in exactly one place.  A device backend that
    wants to fuse the whole tile on-device overrides the drivers too.
    """

    #: Registry name (set by subclasses).
    name: str = ""

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend's runtime can be imported here."""
        return True

    @abstractmethod
    def anticommute_parity_block(
        self, packed: np.ndarray, r0: int, r1: int, c0: int, c1: int
    ) -> np.ndarray:
        """``parity(popcount(a & b))`` for the block, as uint8 0/1."""

    @abstractmethod
    def lists_intersect_block(
        self,
        colmasks: np.ndarray,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        scratch: TileScratch | None = None,
    ) -> np.ndarray:
        """Boolean block: True where the palette bitsets intersect.

        ``scratch`` is the numpy path's preallocated tile buffers;
        compiled backends may ignore it.
        """

    @abstractmethod
    def lowest_set_bit_rows(self, masks: np.ndarray) -> np.ndarray:
        """Lowest set bit per row of a packed ``(n, W)`` matrix
        (int64, -1 for all-zero rows)."""

    def conflict_hits_block(
        self,
        colmasks: np.ndarray,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        edge_mask_fn=None,
        edge_block_fn: EdgeBlockFn | None = None,
        dense_edge_fraction: float | None = None,
        scratch: TileScratch | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused conflict kernel for one tile (see
        :func:`repro.device.tiles.conflict_hits_block`)."""
        from repro.device import tiles

        telemetry.count("device.dispatch", backend=self.name)
        if dense_edge_fraction is None:
            dense_edge_fraction = tiles.DENSE_EDGE_FRACTION
        return tiles.conflict_hits_block(
            colmasks, r0, r1, c0, c1, edge_mask_fn, edge_block_fn,
            dense_edge_fraction=dense_edge_fraction, scratch=scratch,
            backend=self,
        )

    def block_hits(
        self, block_fn: EdgeBlockFn, r0: int, r1: int, c0: int, c1: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Upper-triangle hits of a block predicate on one tile (see
        :func:`repro.device.tiles.block_hits`)."""
        from repro.device import tiles

        telemetry.count("device.dispatch", backend=self.name)
        return tiles.block_hits(block_fn, r0, r1, c0, c1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, type[KernelBackend]] = {}

# One instance per backend name: backends are stateless beyond their
# lazily compiled kernels, and sharing the instance shares the compile.
_INSTANCES: dict[str, KernelBackend] = {}

# Names already warned about by resolve_backend's fallback (one stderr
# line per unknown/unavailable name per process, not one per sweep).
_FALLBACK_NOTED: set[str] = set()


def register_backend(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Class decorator: add a backend to the registry under ``cls.name``."""
    if not cls.name:
        raise ValueError("backend class must define a non-empty name")
    if cls.name in _REGISTRY:
        raise ValueError(f"kernel backend {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, sorted (importable or not)."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> tuple[str, ...]:
    """Registered backends whose runtime imports here, sorted."""
    return tuple(sorted(n for n, c in _REGISTRY.items() if c.is_available()))


def get_backend(name: str) -> KernelBackend:
    """The singleton instance of a registered, available backend.

    Unknown names raise ``ValueError`` with the registered set in the
    message; a registered backend whose runtime is missing raises
    ``RuntimeError`` (use :func:`resolve_backend` for the degrading
    path).
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"registered: {registered_backends()}"
        )
    if not cls.is_available():
        raise RuntimeError(
            f"kernel backend {name!r} is registered but its runtime is "
            "not importable here"
        )
    inst = _INSTANCES.get(name)
    if inst is None:
        inst = _INSTANCES[name] = cls()
    return inst


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Selection policy: explicit name, else env, else numpy.

    ``None`` / ``"auto"`` consult ``REPRO_KERNEL_BACKEND``; an empty or
    ``"auto"`` env lands on ``"numpy"``.  A name that is unknown or
    whose runtime is missing **degrades to numpy** with a one-line
    stderr note (once per name per process): backends are bit-identical
    by contract, so a cluster agent without numba still produces the
    same CSR and colorings, just slower.  This is the worker-side
    resolver — pool and cluster payload installs ship the *name* and
    call this in the worker process, so spawned and remote workers pick
    their backend against their own environment.
    """
    if name is None or name == "auto":
        name = os.environ.get(ENV_VAR, "").strip().lower() or "numpy"
        if name == "auto":
            name = "numpy"
    cls = _REGISTRY.get(name)
    if cls is not None and cls.is_available():
        return get_backend(name)
    if name not in _FALLBACK_NOTED:
        _FALLBACK_NOTED.add(name)
        reason = "is not registered" if cls is None else "has no importable runtime"
        print(
            f"repro: kernel backend {name!r} {reason}; "
            "falling back to 'numpy'",
            file=sys.stderr,
        )
    return get_backend("numpy")
