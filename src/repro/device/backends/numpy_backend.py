"""The numpy reference backend: the default, and the bit-identity oracle.

Thin delegation to the existing vectorized kernels — the functions in
:mod:`repro.device.tiles` and :mod:`repro.util.bits` *are* this
backend, unchanged, so selecting ``kernel_backend="numpy"`` (or
selecting nothing at all) runs byte-for-byte the same code the suite
has always tested.  Every other backend is validated against this one.
"""

from __future__ import annotations

import numpy as np

from repro.device import tiles
from repro.device.backends.base import KernelBackend, register_backend
from repro.util import bits

__all__ = ["NumpyBackend"]


@register_backend
class NumpyBackend(KernelBackend):
    """Vectorized uint64 kernels on the host (the shipped default)."""

    name = "numpy"

    def anticommute_parity_block(
        self, packed: np.ndarray, r0: int, r1: int, c0: int, c1: int
    ) -> np.ndarray:
        return tiles.anticommute_parity_block(packed, r0, r1, c0, c1)

    def lists_intersect_block(
        self,
        colmasks: np.ndarray,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        scratch=None,
    ) -> np.ndarray:
        return tiles.lists_intersect_block(colmasks, r0, r1, c0, c1, scratch)

    def lowest_set_bit_rows(self, masks: np.ndarray) -> np.ndarray:
        return bits.lowest_set_bit_rows(masks)
