"""CuPy device backend: the same tile kernels on GPU arrays.

Contract-complete but **untested in CI** (no GPU on the bench host):
the kernels mirror the numpy word-column formulation on device arrays
and copy results back to host, so the tiles drivers and two-pass CSR
fill above the seam run unchanged.  Operand transfer is per call —
a real deployment would keep ``packed``/``colmasks`` resident on
device across the sweep, which is the next milestone behind this seam,
not a correctness concern: results must match numpy bit for bit either
way, and the equivalence suites pick this backend up automatically via
``available_backends()`` wherever a GPU is present.

Parity uses the same XOR-fold identity as the numba backend
(``popcount(x ^ y) ≡ popcount(x) + popcount(y)`` mod 2); the
lowest-set-bit scan isolates the bit with ``m & (~m + 1)`` and recovers
its index through exact float64 ``log2``, exactly like the numpy
kernel.
"""

from __future__ import annotations

import numpy as np

from repro.device.backends.base import KernelBackend, register_backend

__all__ = ["CupyBackend"]

_AVAILABLE: bool | None = None


def _cupy():
    import cupy

    return cupy


@register_backend
class CupyBackend(KernelBackend):
    """Word-column kernels on CuPy device arrays (host in, host out)."""

    name = "cupy"

    @classmethod
    def is_available(cls) -> bool:
        global _AVAILABLE
        if _AVAILABLE is None:
            try:
                import cupy  # noqa: F401

                _AVAILABLE = True
            except ImportError:
                _AVAILABLE = False
        return _AVAILABLE

    def anticommute_parity_block(
        self, packed: np.ndarray, r0: int, r1: int, c0: int, c1: int
    ) -> np.ndarray:
        cp = _cupy()
        a = cp.asarray(packed[r0:r1])
        b = cp.asarray(packed[c0:c1])
        acc = cp.zeros((a.shape[0], b.shape[0]), dtype=cp.uint64)
        for w in range(a.shape[1]):
            acc ^= a[:, w, None] & b[None, :, w]
        for shift in (32, 16, 8, 4, 2, 1):
            acc ^= acc >> cp.uint64(shift)
        return cp.asnumpy(acc & cp.uint64(1)).astype(np.uint8)

    def lists_intersect_block(
        self,
        colmasks: np.ndarray,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        scratch=None,
    ) -> np.ndarray:
        cp = _cupy()
        a = cp.asarray(colmasks[r0:r1])
        b = cp.asarray(colmasks[c0:c1])
        out = cp.zeros((a.shape[0], b.shape[0]), dtype=cp.bool_)
        for w in range(a.shape[1]):
            out |= (a[:, w, None] & b[None, :, w]) != 0
        return cp.asnumpy(out)

    def lowest_set_bit_rows(self, masks: np.ndarray) -> np.ndarray:
        masks = np.asarray(masks, dtype=np.uint64)
        if masks.ndim != 2:
            raise ValueError(
                f"expected a 2-D bitset matrix, got shape {masks.shape}"
            )
        cp = _cupy()
        m = cp.asarray(masks)
        n, nwords = m.shape
        out = cp.full(n, -1, dtype=cp.int64)
        found = cp.zeros(n, dtype=cp.bool_)
        for w in range(nwords):
            col = m[:, w]
            hit = (col != 0) & ~found
            if not bool(hit.any()):
                continue
            # Exact: an isolated bit is a power of two, representable
            # in float64 for all 64 bit positions.  The maximum() floor
            # keeps log2 off zero rows; their lanes are discarded by
            # the where() below.
            iso = cp.maximum(col & (~col + cp.uint64(1)), cp.uint64(1))
            bits = cp.log2(iso.astype(cp.float64)).astype(cp.int64)
            out = cp.where(hit, 64 * w + bits, out)
            found = found | (col != 0)
        return cp.asnumpy(out)
