"""Compiled CPU backend: ``@njit(cache=True)`` loops over uint64 words.

The numpy kernels pay for generality with broadcast temporaries — the
``(R, C)`` word-AND buffer makes a full write+read round trip per word
column, and the lowest-set-bit scan detours through ``log2`` on
float64.  The compiled kernels replace those with explicit loops that
keep the accumulator in a register:

- **parity** — XOR-fold the per-word ANDs, then parity-fold the single
  accumulator word (``popcount(x ^ y) ≡ popcount(x) + popcount(y)``
  mod 2, so XOR-accumulating across word columns preserves the parity
  of the summed popcounts exactly).
- **intersect** — early-``break`` on the first nonzero word AND; the
  numpy path always touches every word column.
- **lowest set bit** — find the first nonzero word, then shift out
  trailing zeros; no float round trip.

This module imports cleanly **without numba installed**:
``is_available()`` probes the import, compilation is deferred to the
first kernel call, and :func:`~repro.device.backends.resolve_backend`
degrades to numpy (with a stderr note) when the probe fails.  With
``cache=True`` the compiled machine code persists across processes, so
pool workers pay the compile once per machine, not once per spawn.
"""

from __future__ import annotations

import numpy as np

from repro.device.backends.base import KernelBackend, register_backend

__all__ = ["NumbaBackend"]

_AVAILABLE: bool | None = None

# (parity, anybit, lsb) compiled dispatchers, built on first use.
_KERNELS: tuple | None = None


def _parity_block_loops(a, b):
    R, W = a.shape
    C = b.shape[0]
    out = np.empty((R, C), dtype=np.uint8)
    for i in range(R):
        for j in range(C):
            acc = np.uint64(0)
            for w in range(W):
                acc ^= a[i, w] & b[j, w]
            acc ^= acc >> np.uint64(32)
            acc ^= acc >> np.uint64(16)
            acc ^= acc >> np.uint64(8)
            acc ^= acc >> np.uint64(4)
            acc ^= acc >> np.uint64(2)
            acc ^= acc >> np.uint64(1)
            out[i, j] = np.uint8(acc & np.uint64(1))
    return out


def _anybit_block_loops(a, b):
    R, W = a.shape
    C = b.shape[0]
    out = np.empty((R, C), dtype=np.bool_)
    for i in range(R):
        for j in range(C):
            hit = False
            for w in range(W):
                if a[i, w] & b[j, w]:
                    hit = True
                    break
            out[i, j] = hit
    return out


def _lowest_set_bit_rows_loops(masks):
    n, W = masks.shape
    out = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for w in range(W):
            word = masks[i, w]
            if word != np.uint64(0):
                bit = 64 * w
                while (word & np.uint64(1)) == np.uint64(0):
                    word >>= np.uint64(1)
                    bit += 1
                out[i] = bit
                break
    return out


def _kernels() -> tuple:
    """Compile (lazily, once per process) and return the dispatchers."""
    global _KERNELS
    if _KERNELS is None:
        import numba

        jit = numba.njit(cache=True)
        _KERNELS = (
            jit(_parity_block_loops),
            jit(_anybit_block_loops),
            jit(_lowest_set_bit_rows_loops),
        )
    return _KERNELS


@register_backend
class NumbaBackend(KernelBackend):
    """Compiled uint64 loop kernels (lazy ``@njit(cache=True)``)."""

    name = "numba"

    @classmethod
    def is_available(cls) -> bool:
        global _AVAILABLE
        if _AVAILABLE is None:
            try:
                import numba  # noqa: F401

                _AVAILABLE = True
            except ImportError:
                _AVAILABLE = False
        return _AVAILABLE

    def anticommute_parity_block(
        self, packed: np.ndarray, r0: int, r1: int, c0: int, c1: int
    ) -> np.ndarray:
        parity, _, _ = _kernels()
        packed = np.asarray(packed, dtype=np.uint64)
        return parity(packed[r0:r1], packed[c0:c1])

    def lists_intersect_block(
        self,
        colmasks: np.ndarray,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        scratch=None,
    ) -> np.ndarray:
        # The compiled kernel keeps its accumulator in registers;
        # ``scratch`` (the numpy path's tile buffers) is ignored.
        _, anybit, _ = _kernels()
        colmasks = np.asarray(colmasks, dtype=np.uint64)
        return anybit(colmasks[r0:r1], colmasks[c0:c1])

    def lowest_set_bit_rows(self, masks: np.ndarray) -> np.ndarray:
        masks = np.asarray(masks, dtype=np.uint64)
        if masks.ndim != 2:
            raise ValueError(
                f"expected a 2-D bitset matrix, got shape {masks.shape}"
            )
        _, _, lsb = _kernels()
        return lsb(np.ascontiguousarray(masks))
