"""Registry-dispatched compute-kernel backends (see :mod:`.base`).

Importing this package registers the three shipped backends:
``numpy`` (the default — the existing vectorized kernels, unchanged),
``numba`` (compiled CPU loops, lazily jitted, degrades to numpy when
numba is absent) and ``cupy`` (device arrays, contract-complete,
untested in CI).  Selection threads through
``PicassoParams(kernel_backend=...)`` / ``--kernel-backend`` /
``REPRO_KERNEL_BACKEND`` and is resolved worker-side via
:func:`resolve_backend`.
"""

from repro.device.backends.base import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.device.backends.cupy_backend import CupyBackend
from repro.device.backends.numba_backend import NumbaBackend
from repro.device.backends.numpy_backend import NumpyBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "NumbaBackend",
    "CupyBackend",
    "register_backend",
    "get_backend",
    "registered_backends",
    "available_backends",
    "resolve_backend",
]
