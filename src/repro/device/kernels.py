"""Vectorized "device" kernels.

Each function is the NumPy analog of one CUDA kernel of the paper's §V
implementation: it consumes flat pair-index chunks (one SIMT thread per
unordered pair) and whole-array buffers.  The same functions back the
host path; the device path differs only in that its buffers are
accounted against a :class:`repro.device.sim.DeviceSim` budget.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.util.bits import popcount_rows

#: Type of the complement-edge oracle: (i, j) -> uint8 mask (1 = edge of
#: the graph being colored exists between i and j).
EdgeMaskFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def lists_intersect_kernel(
    colmasks: np.ndarray, i: np.ndarray, j: np.ndarray
) -> np.ndarray:
    """uint8 mask: 1 where the color lists of ``i`` and ``j`` intersect.

    ``colmasks`` is the packed palette bitset matrix ``(n, W)``; the
    test is a word-wise AND + any-bit check (the sorted-list O(L) merge
    of §IV-A collapsed into SIMD popcounts).
    """
    return (popcount_rows(colmasks[i] & colmasks[j]) > 0).astype(np.uint8)


def lists_intersect_sorted(
    sorted_lists: np.ndarray, i: np.ndarray, j: np.ndarray
) -> np.ndarray:
    """The paper's O(L) sorted-merge intersection test (§IV-A), batched.

    ``sorted_lists`` is the ``(n, L)`` candidate matrix with each row
    pre-sorted.  Kept as an ablation/reference for the bitset kernel
    (:func:`lists_intersect_kernel`), which wins once L exceeds a few
    words — tested equivalent.
    """
    a = sorted_lists[i]
    b = sorted_lists[j]
    m, L = a.shape
    out = np.zeros(m, dtype=np.uint8)
    # Vectorized merge: advance per-pair pointers until hit or exhaustion.
    pa = np.zeros(m, dtype=np.int64)
    pb = np.zeros(m, dtype=np.int64)
    live = np.ones(m, dtype=bool)
    rows = np.arange(m)
    while live.any():
        r = rows[live]
        va = a[r, pa[r]]
        vb = b[r, pb[r]]
        hit = va == vb
        out[r[hit]] = 1
        live[r[hit]] = False
        adv_a = va < vb
        pa[r[adv_a]] += 1
        pb[r[~hit & ~adv_a]] += 1
        done = (pa >= L) | (pb >= L)
        live &= ~done
    return out


def conflict_pair_kernel(
    edge_mask_fn: EdgeMaskFn,
    colmasks: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
) -> np.ndarray:
    """The fused §V kernel: a pair is a conflict edge iff it is an edge
    of the graph being colored AND the endpoints share a candidate color.

    Evaluates the cheap list intersection first and consults the edge
    oracle only on surviving pairs — the same work-skipping the CUDA
    kernel gets from its early-exit branch.
    """
    shared = lists_intersect_kernel(colmasks, i, j).astype(bool)
    out = np.zeros(len(i), dtype=np.uint8)
    if shared.any():
        sub_i = i[shared]
        sub_j = j[shared]
        out[shared] = edge_mask_fn(sub_i, sub_j)
    return out


def conflict_pair_kernel_python(
    edge_mask_fn: EdgeMaskFn,
    col_lists: list[set[int]],
    i: np.ndarray,
    j: np.ndarray,
) -> np.ndarray:
    """Scalar reference implementation (the paper's "CPU only" row in
    Table V): per-pair Python loop with set intersection.  Used only by
    the speedup benchmark and as a correctness oracle in tests."""
    out = np.zeros(len(i), dtype=np.uint8)
    edge = edge_mask_fn(np.asarray(i), np.asarray(j))
    for k in range(len(i)):
        if edge[k] and col_lists[int(i[k])] & col_lists[int(j[k])]:
            out[k] = 1
    return out


def exclusive_scan(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum (Algorithm 3 line 4), int64 output."""
    out = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out
