"""Block-tiled pair-sweep kernel engine (§V, reimagined as cache tiles).

The pair-chunk kernels in :mod:`repro.device.kernels` emulate one SIMT
thread per unordered pair: they take flat pair-index chunks, invert
``k -> (i, j)`` with a ``sqrt``, and *gather* the packed operand rows
(``packed[i]``, ``packed[j]``) for every pair — so each of the ``n``
rows is duplicated ~``n`` times across a full sweep.  This module is
the CUDA-style *tiled* formulation of the same sweep: the upper
triangle of pair space is walked in ``(row_block, col_block)`` tiles,
each tile loads its two row slices once (the "shared memory" staging of
a GPU kernel) and computes the pair results as a word-broadcast
``a[:, None, :] op b[None, :, :]`` — no flat-index inversion and no
quadratic row gather on the hot path.

Design notes (the tiling model):

- **Tile size heuristic.**  A tile of edge ``T`` needs scratch for a
  handful of ``(T, T)`` temporaries: the uint64 word-AND, the uint8
  popcount/parity accumulator, and the boolean hit mask — about
  :data:`SCRATCH_BYTES_PER_PAIR` bytes per pair *independent of the
  word count* because the kernels loop over word columns and reuse the
  same temporary.  :func:`tile_edge` inverts that:
  ``T = sqrt(budget / SCRATCH_BYTES_PER_PAIR)``, snapped down to a
  multiple of 64 (warp-width friendly, keeps word loads aligned) and
  clamped to ``[MIN_TILE, MAX_TILE]``.  The default 768 KiB budget
  lands at ``T = 256``, sized to keep the tile's word-AND temporary
  resident in a per-core L2 the way a CUDA kernel sizes its
  shared-memory staging — the temporary is written and re-read once
  per word column, so its residency dominates the sweep bandwidth.
- **Memory model per tile.**  Input traffic is ``2 * T * W * 8`` bytes
  (two row slices, contiguous), scratch is ``SCRATCH_BYTES_PER_PAIR *
  T^2``, and output is proportional to the tile's *hits* only — the
  same output-proportional shape as Algorithm 3's COO stream.
- **Device-budget interaction.**  On the :class:`~repro.device.sim.DeviceSim`
  path the tile scratch is a named allocation against the device
  budget, reserved *before* the COO buffer grabs the remainder
  (:mod:`repro.device.csr_build`).  When the budget is too tight to
  host even a minimum tile alongside the COO stream, the build falls
  back to the pair-chunk engine, which needs no block scratch — the
  same graceful degradation Algorithm 3 uses for its device/host CSR
  choice.
- **Fused conflict kernel.**  :func:`conflict_hits_block` evaluates the
  cheap palette intersection first (the paper's list-intersect early
  exit): only surviving pairs consult the edge oracle, either as a
  sparse gathered query (few survivors) or as a block oracle call when
  the tile is dense enough that the broadcast beats the gather.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from repro.util.bits import anybit_block, parity_block

if TYPE_CHECKING:
    from repro.device.backends.base import KernelBackend

__all__ = [
    "DEFAULT_TILE_BYTES",
    "SCRATCH_BYTES_PER_PAIR",
    "MIN_TILE",
    "MAX_TILE",
    "DENSE_EDGE_FRACTION",
    "tile_edge",
    "tile_scratch_bytes",
    "iter_tiles",
    "upper_triangle_mask",
    "TileScratch",
    "anticommute_parity_block",
    "lists_intersect_block",
    "conflict_hits_block",
    "conflict_hits_strip",
    "block_hits",
    "block_hits_strip",
    "sweep_conflict_hits",
    "sweep_conflict_chunks",
    "sweep_block_hits",
    "count_block_hits",
]

#: Default scratch budget for one tile, in bytes.  768 KiB puts the
#: default tile edge at 256, whose uint64 word-AND temporary (512 KiB)
#: stays resident in a per-core L2 — measured ~1.6x faster than
#: L3-sized tiles on a 10k-vertex sweep, because the temporary makes a
#: full write+read round trip per word column.
DEFAULT_TILE_BYTES = 768 * 1024

#: Scratch bytes per pair inside a tile: the uint64 word-AND temporary
#: (8), the boolean compare buffer (1) and the boolean hit accumulator
#: (1) — exactly what :class:`TileScratch` allocates.  The word loop
#: reuses the same temporaries, so this does not scale with the packed
#: word count.
SCRATCH_BYTES_PER_PAIR = 10

#: Tile edges are multiples of this (and never smaller).
MIN_TILE = 64

#: Upper clamp on the tile edge — beyond this the broadcast temporaries
#: stop fitting in last-level cache and the win evaporates.
MAX_TILE = 8192

#: When at least this fraction of a tile survives the palette
#: intersection, the fused kernel evaluates the edge oracle as a block
#: broadcast instead of gathering the survivors pairwise.
DENSE_EDGE_FRACTION = 0.1

_EMPTY = np.empty(0, dtype=np.int64)

#: Block edge oracle: (r0, r1, c0, c1) -> uint8/bool (r1-r0, c1-c0)
#: matrix over global vertex ids (only entries with i != j are used).
EdgeBlockFn = Callable[[int, int, int, int], np.ndarray]


def tile_edge(
    n_words: int,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    n: int | None = None,
) -> int:
    """Tile edge ``T`` whose scratch fits ``tile_bytes``.

    ``n_words`` is accepted for interface symmetry (and future
    word-blocked variants) but does not enter the formula — see the
    module notes on the per-pair scratch model.  ``n`` caps the tile at
    the problem size so tiny problems do not round up to a 64-wide tile
    of mostly out-of-range rows.

    The tile edge never drops below :data:`MIN_TILE` (sub-64 tiles are
    all Python overhead), so budgets under
    ``tile_scratch_bytes(MIN_TILE)`` (~41 KB) are exceeded rather than
    honored — the budget is a sizing hint, not a hard cap.  The device
    path enforces its real cap separately by checking the resulting
    scratch against ``device.available`` before allocating.

    The budget solve is memoized per ``tile_bytes`` (the device build
    probes it repeatedly while fitting the tile scratch next to the COO
    buffer); the ``n`` cap is applied outside the cache.
    """
    t = _tile_edge_base(int(tile_bytes))
    if n is not None:
        t = min(t, max(int(n), 1))
    return t


@lru_cache(maxsize=64)
def _tile_edge_base(tile_bytes: int) -> int:
    """The budget solve of :func:`tile_edge`, before the ``n`` cap."""
    t = int(math.isqrt(max(tile_bytes, 1) // SCRATCH_BYTES_PER_PAIR))
    return max(MIN_TILE, min(t - t % MIN_TILE, MAX_TILE))


def tile_scratch_bytes(tile: int) -> int:
    """Worst-case scratch bytes for one ``tile x tile`` block."""
    return SCRATCH_BYTES_PER_PAIR * tile * tile


def iter_tiles(n: int, tile: int) -> Iterator[tuple[int, int, int, int]]:
    """Yield ``(r0, r1, c0, c1)`` blocks covering the upper triangle.

    Blocks are axis-aligned on a ``tile``-spaced grid; only blocks with
    ``c0 >= r0`` are emitted, so every unordered pair ``i < j`` lands in
    exactly one block (diagonal blocks still contain ``i >= j`` entries
    — mask those with :func:`upper_triangle_mask`).
    """
    if tile <= 0:
        raise ValueError("tile must be positive")
    for r0 in range(0, n, tile):
        r1 = min(r0 + tile, n)
        for c0 in range(r0, n, tile):
            yield r0, r1, c0, min(c0 + tile, n)


def upper_triangle_mask(r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
    """Boolean block mask: True where the global pair has ``i < j``.

    Global ``r0 + li < c0 + lj`` depends only on the block shape and
    the diagonal offset ``c0 - r0``, so every diagonal tile of every
    sweep shares one cached (read-only) mask instead of recomputing the
    broadcast compare per tile.
    """
    return _triangle_mask(r1 - r0, c1 - c0, c0 - r0)


@lru_cache(maxsize=64)
def _triangle_mask(rows: int, cols: int, shift: int) -> np.ndarray:
    mask = (
        np.arange(rows, dtype=np.int64)[:, None]
        < np.arange(cols, dtype=np.int64)[None, :] + shift
    )
    # Callers only read it (the kernels use it as the RHS of ``&=``);
    # freezing the buffer keeps the cache sharable.
    mask.setflags(write=False)
    return mask


class TileScratch:
    """Preallocated per-sweep tile buffers (the "shared memory" of the
    engine): one uint64 word-AND temporary, one boolean compare buffer,
    and one boolean hit accumulator, each ``tile x tile``.  Edge tiles
    use leading views.  Allocating these once per sweep keeps the hot
    loop off the allocator — the buffers are exactly what
    :func:`tile_scratch_bytes` charges against a device budget."""

    def __init__(self, tile: int) -> None:
        self.tile = tile
        self.tmp = np.empty((tile, tile), dtype=np.uint64)
        self.tmp_bool = np.empty((tile, tile), dtype=bool)
        self.hit = np.empty((tile, tile), dtype=bool)

    def views(self, rows: int, cols: int):
        return (
            self.tmp[:rows, :cols],
            self.tmp_bool[:rows, :cols],
            self.hit[:rows, :cols],
        )


def anticommute_parity_block(
    packed: np.ndarray, r0: int, r1: int, c0: int, c1: int
) -> np.ndarray:
    """Tiled anticommutation kernel: ``parity(popcount(a & b))`` for the
    ``(r0:r1) x (c0:c1)`` block of the packed IOOH matrix, as uint8."""
    return parity_block(packed[r0:r1], packed[c0:c1])


def lists_intersect_block(
    colmasks: np.ndarray,
    r0: int,
    r1: int,
    c0: int,
    c1: int,
    scratch: TileScratch | None = None,
) -> np.ndarray:
    """Tiled palette-intersection kernel: boolean block, True where the
    candidate-color bitsets of the row and column vertex intersect."""
    if scratch is None:
        return anybit_block(colmasks[r0:r1], colmasks[c0:c1])
    tmp, tmp_bool, hit = scratch.views(r1 - r0, c1 - c0)
    return anybit_block(colmasks[r0:r1], colmasks[c0:c1], tmp, tmp_bool, hit)


def conflict_hits_block(
    colmasks: np.ndarray,
    r0: int,
    r1: int,
    c0: int,
    c1: int,
    edge_mask_fn=None,
    edge_block_fn: EdgeBlockFn | None = None,
    dense_edge_fraction: float = DENSE_EDGE_FRACTION,
    scratch: TileScratch | None = None,
    backend: KernelBackend | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The fused §V conflict kernel for one tile, emitting ``(i, j)``.

    A pair is a conflict edge iff it is an edge of the graph being
    colored AND the endpoints share a candidate color.  The cheap
    palette intersection runs first over the whole tile; the edge
    oracle is consulted only for survivors — gathered pairwise through
    ``edge_mask_fn`` when survivors are sparse, or as one
    ``edge_block_fn`` broadcast when at least ``dense_edge_fraction``
    of the tile survived (the broadcast reads each operand row once,
    beating the gather as density grows).

    ``backend`` (a :class:`~repro.device.backends.KernelBackend`)
    supplies the palette-intersection kernel when given; ``None`` runs
    the numpy kernel directly — the exact legacy path, no dispatch.
    The survivor bookkeeping, diagonal masking and oracle policy stay
    here either way, so every backend shares one driver.

    Hits are returned as global index arrays in row-major tile order
    (``i`` ascending, ``j`` ascending within a row) — the order the
    two-pass CSR fill relies on.
    """
    if edge_mask_fn is None and edge_block_fn is None:
        raise ValueError("need edge_mask_fn or edge_block_fn")
    if backend is None:
        hit = lists_intersect_block(colmasks, r0, r1, c0, c1, scratch)
    else:
        hit = backend.lists_intersect_block(colmasks, r0, r1, c0, c1, scratch)
    if r0 == c0:
        hit &= upper_triangle_mask(r0, r1, c0, c1)
    li, lj = np.nonzero(hit)
    if len(li) == 0:
        return _EMPTY, _EMPTY
    gi = li + r0
    gj = lj + c0
    if edge_block_fn is not None and (
        edge_mask_fn is None or len(li) >= dense_edge_fraction * hit.size
    ):
        keep = np.asarray(edge_block_fn(r0, r1, c0, c1))[li, lj].astype(
            bool, copy=False
        )
    else:
        keep = np.asarray(edge_mask_fn(gi, gj)).astype(bool, copy=False)
    return gi[keep], gj[keep]


def conflict_hits_strip(
    colmasks: np.ndarray,
    tiles,
    edge_mask_fn=None,
    edge_block_fn: EdgeBlockFn | None = None,
    dense_edge_fraction: float = DENSE_EDGE_FRACTION,
    scratch: TileScratch | None = None,
    backend: KernelBackend | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the fused conflict kernel over a strip of tiles.

    ``tiles`` is an iterable of ``(r0, r1, c0, c1)`` blocks in canonical
    row-major order; the per-tile hits are concatenated in that order,
    so a partitioned sweep that gathers strip results in strip order
    reproduces the serial sweep's global hit stream exactly.  This is
    the unit of work an execution backend ships to a worker process —
    one task, one ``(i, j)`` result pair.  ``backend`` dispatches the
    per-tile kernel (``None`` = the direct numpy path).
    """
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    block_op = (
        backend.conflict_hits_block if backend is not None
        else conflict_hits_block
    )
    for r0, r1, c0, c1 in tiles:
        i, j = block_op(
            colmasks, r0, r1, c0, c1, edge_mask_fn, edge_block_fn,
            dense_edge_fraction=dense_edge_fraction, scratch=scratch,
        )
        if len(i):
            us.append(i)
            vs.append(j)
    if not us:
        return _EMPTY, _EMPTY
    return np.concatenate(us), np.concatenate(vs)


def block_hits(
    block_fn: EdgeBlockFn, r0: int, r1: int, c0: int, c1: int
) -> tuple[np.ndarray, np.ndarray]:
    """Upper-triangle hits of ``block_fn`` on one tile, as global
    ``(i, j)`` index arrays — the shared per-tile body of
    :func:`sweep_block_hits` and :func:`block_hits_strip` (one place to
    keep the diagonal masking, so serial and parallel explicit-builder
    sweeps cannot diverge).  This is the inner block op a
    :class:`~repro.device.backends.KernelBackend` may override to fuse
    the predicate and the masking on-device."""
    blk = np.asarray(block_fn(r0, r1, c0, c1)).astype(bool, copy=False)
    if r0 == c0:
        blk = blk & upper_triangle_mask(r0, r1, c0, c1)
    li, lj = np.nonzero(blk)
    if len(li) == 0:
        return _EMPTY, _EMPTY
    return li + r0, lj + c0


def block_hits_strip(
    block_fn: EdgeBlockFn,
    tiles,
    backend: KernelBackend | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-worker task of the generic tiled pair sweep: concatenate the
    upper-triangle hits of ``block_fn`` over a strip of tiles (the
    parallel unit behind :func:`sweep_block_hits`).  ``backend``
    dispatches the inner block op (``None`` = :func:`block_hits`)."""
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    block_op = backend.block_hits if backend is not None else block_hits
    for r0, r1, c0, c1 in tiles:
        i, j = block_op(block_fn, r0, r1, c0, c1)
        if len(i):
            us.append(i)
            vs.append(j)
    if not us:
        return _EMPTY, _EMPTY
    return np.concatenate(us), np.concatenate(vs)


def sweep_conflict_hits(
    n: int,
    colmasks: np.ndarray,
    edge_mask_fn=None,
    edge_block_fn: EdgeBlockFn | None = None,
    tile: int | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    backend: KernelBackend | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Run the fused conflict kernel over all upper-triangle tiles,
    yielding one ``(i, j)`` hit pair per tile (possibly empty)."""
    if tile is None:
        tile = tile_edge(colmasks.shape[1], tile_bytes, n=n)
    scratch = TileScratch(tile)
    block_op = (
        backend.conflict_hits_block if backend is not None
        else conflict_hits_block
    )
    for r0, r1, c0, c1 in iter_tiles(n, tile):
        yield block_op(
            colmasks, r0, r1, c0, c1, edge_mask_fn, edge_block_fn,
            scratch=scratch,
        )


def sweep_conflict_chunks(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    tile: int | None = None,
    backend: KernelBackend | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Engine dispatch for the conflict sweep, shared by the host build
    (:mod:`repro.core.conflict`) and the device build
    (:mod:`repro.device.csr_build`): yield ``(i, j)`` conflict-edge
    chunks from the selected engine (``"tiled"`` block broadcast or
    ``"pairs"`` flat gather).  ``backend`` dispatches the tiled
    engine's kernels; the pairs engine is numpy-only (its flat gather
    is the formulation the compiled kernels exist to replace)."""
    if engine == "tiled":
        yield from sweep_conflict_hits(
            n, colmasks, edge_mask_fn, edge_block_fn,
            tile=tile, tile_bytes=tile_bytes, backend=backend,
        )
    elif engine == "pairs":
        from repro.device.kernels import conflict_pair_kernel
        from repro.util.chunking import iter_pair_chunks

        for i, j in iter_pair_chunks(n, chunk_size):
            mask = conflict_pair_kernel(edge_mask_fn, colmasks, i, j).astype(bool)
            yield i[mask], j[mask]
    else:
        raise ValueError(f"unknown engine {engine!r}")


def sweep_block_hits(
    n: int,
    block_fn: EdgeBlockFn,
    tile: int,
    backend: KernelBackend | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Generic tiled pair sweep: yield global ``(i, j)`` where
    ``block_fn``'s block is nonzero, upper triangle only.

    Used by the explicit graph builders, whose predicate (anticommute /
    commute) applies to every pair rather than being conflict-filtered.
    """
    block_op = backend.block_hits if backend is not None else block_hits
    for r0, r1, c0, c1 in iter_tiles(n, tile):
        yield block_op(block_fn, r0, r1, c0, c1)


def count_block_hits(n: int, block_fn: EdgeBlockFn, tile: int) -> int:
    """Count nonzero upper-triangle pairs of a block predicate without
    materializing any index arrays."""
    total = 0
    for r0, r1, c0, c1 in iter_tiles(n, tile):
        blk = np.asarray(block_fn(r0, r1, c0, c1)).astype(bool, copy=False)
        if r0 == c0:
            blk &= upper_triangle_mask(r0, r1, c0, c1)
        total += int(np.count_nonzero(blk))
    return total
