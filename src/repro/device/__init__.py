"""Device simulator substrate (paper §V, Algorithm 3).

A memory-budgeted accelerator model: vectorized NumPy kernels play the
role of SIMT thread blocks, and every buffer is accounted against a
byte budget so OOM behaviour and the device-vs-host CSR build choice
reproduce the paper's control flow.
"""

from repro.device.csr_build import BuildStats, build_conflict_csr
from repro.device.multi import MultiBuildStats, build_conflict_csr_multi
from repro.device.kernels import (
    conflict_pair_kernel,
    conflict_pair_kernel_python,
    exclusive_scan,
    lists_intersect_kernel,
    lists_intersect_sorted,
)
from repro.device.sim import (
    DEFAULT_BUDGET_BYTES,
    Allocation,
    DeviceOutOfMemory,
    DeviceSim,
)
from repro.device.tiles import (
    DEFAULT_TILE_BYTES,
    anticommute_parity_block,
    conflict_hits_block,
    count_block_hits,
    iter_tiles,
    lists_intersect_block,
    sweep_block_hits,
    sweep_conflict_hits,
    tile_edge,
    tile_scratch_bytes,
    upper_triangle_mask,
)

__all__ = [
    "BuildStats",
    "build_conflict_csr",
    "MultiBuildStats",
    "build_conflict_csr_multi",
    "conflict_pair_kernel",
    "conflict_pair_kernel_python",
    "exclusive_scan",
    "lists_intersect_kernel",
    "lists_intersect_sorted",
    "DEFAULT_BUDGET_BYTES",
    "Allocation",
    "DeviceOutOfMemory",
    "DeviceSim",
    "DEFAULT_TILE_BYTES",
    "anticommute_parity_block",
    "conflict_hits_block",
    "count_block_hits",
    "iter_tiles",
    "lists_intersect_block",
    "sweep_block_hits",
    "sweep_conflict_hits",
    "tile_edge",
    "tile_scratch_bytes",
    "upper_triangle_mask",
]
