"""Multi-device conflict-graph construction (paper future work, §VIII).

The paper's stated next step is "distributed multi-GPU parallel
implementations".  The natural decomposition is already in place: the
conflict kernel's domain is the flat pair range, so ``k`` devices each
own a contiguous 1/k slice of pair space.  Each device streams its
slice into its own COO buffer (bounded by its own budget); the host
folds the per-device partial edge lists — one COO chunk per device, in
slice order — straight into the shared two-pass count-then-fill
assembly (:func:`repro.graphs.csr.csr_from_coo_chunks`), the same path
every other build front uses: nothing is concatenated, and the result
is bit-identical to a single-device build of the same pair space.
(The cross-*host* analog of this decomposition lives in
:mod:`repro.distributed`.)

The aggregate capacity is the sum of the devices' budgets, so inputs
that overflow one device complete on several — the property the tests
pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.kernels import EdgeMaskFn, conflict_pair_kernel
from repro.device.sim import DeviceOutOfMemory, DeviceSim
from repro.graphs.csr import CSRGraph, csr_from_coo_chunks
from repro.parallel.partition import partition_pairs
from repro.util.chunking import pair_index_to_ij


@dataclass
class MultiBuildStats:
    """Per-device telemetry for a multi-device build."""

    n_vertices: int
    n_conflict_edges: int
    edges_per_device: list[int]
    peak_bytes_per_device: list[int]


def build_conflict_csr_multi(
    n: int,
    edge_mask_fn: EdgeMaskFn,
    colmasks: np.ndarray,
    devices: list[DeviceSim],
    chunk_size: int = 1 << 18,
) -> tuple[CSRGraph, MultiBuildStats]:
    """Build the conflict graph across several simulated devices.

    Each device holds a replica of the encoded inputs (colmasks) plus a
    COO buffer sized to its remaining budget, and scans a contiguous
    slice of pair space.  Raises :class:`DeviceOutOfMemory` naming the
    device whose slice overflowed.
    """
    if not devices:
        raise ValueError("need at least one device")
    ranges = partition_pairs(n, len(devices))
    # partition_pairs drops empty ranges; align by padding.
    while len(ranges) < len(devices):
        from repro.parallel.partition import PairRange

        ranges.append(PairRange(0, 0))

    chunks: list[tuple[np.ndarray, np.ndarray]] = []
    edges_per_device: list[int] = []
    id_bytes = 4 if n < 2**31 else 8
    id_dtype = np.int32 if id_bytes == 4 else np.int64

    for rank, (dev, rng) in enumerate(zip(devices, ranges)):
        dev.alloc("colmasks", int(colmasks.nbytes))
        counter_bytes = 4 if n * n < 2**32 else 8
        dev.alloc("edge_counters", 2 * n * counter_bytes)
        coo_bytes = dev.available
        dev.alloc("coo_edges", coo_bytes)
        capacity = coo_bytes // (2 * id_bytes)
        u_buf = np.empty(capacity, dtype=id_dtype)
        v_buf = np.empty(capacity, dtype=id_dtype)
        filled = 0
        try:
            for start in range(rng.start, rng.stop, chunk_size):
                stop = min(start + chunk_size, rng.stop)
                k = np.arange(start, stop, dtype=np.int64)
                i, j = pair_index_to_ij(k, n)
                mask = conflict_pair_kernel(edge_mask_fn, colmasks, i, j).astype(
                    bool
                )
                ei, ej = i[mask], j[mask]
                if filled + len(ei) > capacity:
                    dev.n_ooms += 1
                    raise DeviceOutOfMemory(
                        f"device {rank} ({dev.name}): slice "
                        f"[{rng.start}, {rng.stop}) produced more than "
                        f"{capacity} conflict edges"
                    )
                u_buf[filled : filled + len(ei)] = ei
                v_buf[filled : filled + len(ej)] = ej
                filled += len(ei)
        finally:
            dev.free("coo_edges")
            dev.free("edge_counters")
            dev.free("colmasks")
        chunks.append(
            (
                u_buf[:filled].astype(np.int64),
                v_buf[:filled].astype(np.int64),
            )
        )
        edges_per_device.append(filled)

    # One COO chunk per device, in pair-slice order, straight into the
    # shared two-pass assembly — the same chunk stream a single-device
    # (or strip-parallel) sweep of the full pair space produces, so the
    # CSR is bit-identical to those builds.
    graph = csr_from_coo_chunks(chunks, n)
    stats = MultiBuildStats(
        n_vertices=n,
        n_conflict_edges=int(sum(edges_per_device)),
        edges_per_device=edges_per_device,
        peak_bytes_per_device=[d.peak_bytes for d in devices],
    )
    return graph, stats
