"""Memory-budgeted accelerator simulator.

The paper's GPU contribution is not a novel kernel but *memory-driven
control flow*: Algorithm 3 allocates whatever device memory remains,
streams conflict edges into it, and falls back to host CSR assembly
when the edge list would not leave room for the CSR copy.  Fig. 2's
dashed line is exactly the admissible conflict-edge fraction for a
40 GB A100.

:class:`DeviceSim` reproduces that accounting: named allocations
against a byte budget, peak tracking, and an explicit
:class:`DeviceOutOfMemory`.  "Kernels" executed against the device are
ordinary vectorized NumPy calls — the SIMT analog — but every buffer
they touch must be allocated here first, so OOM behaviour, build-path
selection and the Fig. 2 feasibility line are faithful.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

#: Default simulated budget. The paper's A100 has 40 GB; our datasets
#: are ~1000x smaller in vertices (~10^3 vs 10^6), i.e. ~10^6x smaller
#: in pair space, so a 40 MB default exercises the same code paths at
#: the same relative pressure.
DEFAULT_BUDGET_BYTES = 40 * 1024 * 1024


class DeviceOutOfMemory(RuntimeError):
    """Raised when an allocation exceeds the remaining device budget."""


@dataclass
class Allocation:
    name: str
    nbytes: int


@dataclass
class DeviceSim:
    """A device with a fixed byte budget and an allocation ledger.

    Use :meth:`alloc`/:meth:`free` around every buffer a "device kernel"
    touches.  ``peak_bytes`` records the high-water mark for Table IV /
    Fig. 2 reporting.
    """

    budget_bytes: int = DEFAULT_BUDGET_BYTES
    name: str = "sim-a100"
    _live: dict[str, Allocation] = field(default_factory=dict)
    used_bytes: int = 0
    peak_bytes: int = 0
    n_allocs: int = 0
    n_ooms: int = 0

    def alloc(self, name: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes`` under ``name``; raises on exhaustion."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self._live:
            raise ValueError(f"allocation {name!r} already live")
        if self.used_bytes + nbytes > self.budget_bytes:
            self.n_ooms += 1
            raise DeviceOutOfMemory(
                f"{self.name}: requested {nbytes} B for {name!r}, "
                f"{self.available} B available of {self.budget_bytes} B"
            )
        a = Allocation(name, nbytes)
        self._live[name] = a
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.n_allocs += 1
        return a

    def free(self, name: str) -> None:
        """Release a named allocation."""
        a = self._live.pop(name, None)
        if a is None:
            raise KeyError(f"no live allocation named {name!r}")
        self.used_bytes -= a.nbytes

    def free_all(self) -> None:
        """Release everything (end of a kernel sequence)."""
        self._live.clear()
        self.used_bytes = 0

    @contextmanager
    def scratch(self, name: str, nbytes: int):
        """Named allocation scoped to a ``with`` block.

        The coloring engines charge their palette scratch (candidate /
        forbidden bitsets, tentative picks) through this, so Algorithm 2
        memory shows up in the device ledger exactly like the conflict
        build's buffers do.
        """
        self.alloc(name, nbytes)
        try:
            yield self
        finally:
            self.free(name)

    @property
    def available(self) -> int:
        """Bytes currently unallocated."""
        return self.budget_bytes - self.used_bytes

    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())

    def reset_peak(self) -> None:
        self.peak_bytes = self.used_bytes
