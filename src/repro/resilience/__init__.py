"""Fault tolerance: checkpoint/resume, supervised retry/failover,
deterministic fault injection.

Three layers, one invariant — recovery never changes the answer:

- :mod:`repro.resilience.checkpoint` — atomic, CRC-guarded snapshots
  of Picasso iteration state; a resumed run is bit-identical per seed
  to an uninterrupted one.
- :mod:`repro.resilience.supervisor` — :class:`ResilientExecutor`,
  wrapping any backend with capped-backoff retry and cluster → pool →
  serial failover; spliced result streams equal uninterrupted ones.
- :mod:`repro.resilience.faults` — counted, named fault points for
  deterministic crash testing (the same kill lands on the same strip
  every run).
"""

from repro.resilience.checkpoint import (
    CheckpointError,
    PicassoCheckpoint,
    checkpoint_fingerprint,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import (
    FaultInjected,
    FaultSpec,
    clear_faults,
    fault_point,
    faulty_task,
    install_fault,
)

# The supervisor is resolved lazily (PEP 562): it imports the executor
# stack, and the executor stack's task functions import the fault
# points from this package — an eager import here would close that
# cycle before repro.parallel.pool finished defining its names.
_SUPERVISOR_NAMES = ("ResilientExecutor", "supervised_executor")


def __getattr__(name):
    if name in _SUPERVISOR_NAMES:
        from repro.resilience import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CheckpointError",
    "PicassoCheckpoint",
    "checkpoint_fingerprint",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "FaultInjected",
    "FaultSpec",
    "clear_faults",
    "fault_point",
    "faulty_task",
    "install_fault",
    "ResilientExecutor",
    "supervised_executor",
]
