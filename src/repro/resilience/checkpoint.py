"""Versioned, CRC-guarded, atomic snapshots of Picasso iteration state.

Algorithm 1 is a loop over *committed* state: the global color array,
the uncolored-vertex set ``Vu`` (the palette bitsets of an iteration
are derived from the RNG stream, so saving the bit-generator state
saves them too), the palette offset, the possibly-grown palette
fraction, and the RNG bit-generator state.  A snapshot of that tuple at
an iteration boundary is everything a resumed run needs to replay the
remaining iterations **bit-identically**: the next iteration draws the
same candidate lists from the same generator state over the same active
set, so every downstream choice — conflict edges, Algorithm 2
tie-breaks, Vu rollover — repeats exactly.

File format (all integers little-endian)::

    8 bytes   magic  b"RPCKPT\\x00\\x00"
    u32       format version
    u32       CRC32 of the payload
    u64       payload byte count
    payload   pickled state dict (numpy arrays in-band)

Three failure modes of a crash-interrupted writer are covered:

- **torn write** — snapshots are written to a temp file in the target
  directory, fsynced, then ``os.replace``d into place, so the named
  checkpoint either exists completely or not at all;
- **silent corruption** — the CRC is verified on load, and
  :func:`latest_checkpoint` *skips* corrupt or short files rather than
  returning them (a run resumes from the newest snapshot that survived,
  which the atomic rename guarantees is the previous one);
- **wrong run** — every snapshot embeds a fingerprint of the
  algorithmic parameters and problem size
  (:func:`checkpoint_fingerprint`); loading against a different
  configuration raises :class:`CheckpointError` instead of silently
  producing a coloring from mixed trajectories.  Execution knobs
  (backend, workers, gather, hosts) are deliberately **excluded** from
  the fingerprint: backends are bit-identical per seed, so a run
  checkpointed on a cluster may resume on a pool or serially — that is
  the failover story.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "PicassoCheckpoint",
    "checkpoint_fingerprint",
    "save_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
]

MAGIC = b"RPCKPT\x00\x00"
#: Bumped whenever the payload schema changes; load rejects mismatches.
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct("<8sIIQ")  # magic, version, crc32, payload_len

#: Snapshots kept per directory (older ones are pruned on save).  Two
#: generations back is enough to survive a crash *during* a save plus a
#: corrupt newest file.
KEEP_CHECKPOINTS = 3

_PREFIX = "picasso-it"
_SUFFIX = ".ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint file is corrupt, from another format version, or
    from a different run configuration."""


@dataclass
class PicassoCheckpoint:
    """Committed Algorithm 1 state at the end of iteration ``iteration``.

    ``colors``/``active`` are global vertex ids; ``rng_state`` is the
    numpy bit-generator state dict *after* the iteration's draws;
    ``iterations`` carries the per-iteration telemetry so a resumed
    result reports the full trace, not just the tail.
    """

    iteration: int
    colors: np.ndarray
    active: np.ndarray
    base_color: int
    palette_fraction: float
    rng_state: dict
    fingerprint: str
    peak_bytes: int = 0
    iterations: list = field(default_factory=list)


def checkpoint_fingerprint(params, n_total: int) -> str:
    """Digest of everything that shapes the random trajectory.

    Algorithmic knobs plus the problem size — not the execution knobs,
    which are bit-identical across backends by the library's core
    contract (a checkpoint written under ``--hosts`` resumes under
    ``--executor serial`` and still matches).
    """
    key = repr((
        int(n_total),
        float(params.palette_fraction),
        float(params.alpha),
        int(params.min_palette),
        float(params.grow_on_stall),
        int(params.max_iterations),
        str(params.conflict_order),
        str(params.resolved_color_engine()),
        params.color_max_rounds,
    ))
    return hashlib.sha256(key.encode()).hexdigest()[:16]


def _checkpoint_path(directory: str | os.PathLike, iteration: int) -> str:
    return os.path.join(
        os.fspath(directory), f"{_PREFIX}{iteration:06d}{_SUFFIX}"
    )


def save_checkpoint(
    directory: str | os.PathLike,
    ckpt: PicassoCheckpoint,
    keep: int = KEEP_CHECKPOINTS,
) -> str:
    """Atomically write ``ckpt`` into ``directory``; returns the path.

    Write-temp-then-rename: a crash at any byte leaves either the
    previous snapshot set untouched or the new file complete.  After a
    successful rename, snapshots older than the newest ``keep`` are
    pruned (best-effort).
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    payload = pickle.dumps(
        {
            "iteration": int(ckpt.iteration),
            "colors": np.ascontiguousarray(ckpt.colors),
            "active": np.ascontiguousarray(ckpt.active),
            "base_color": int(ckpt.base_color),
            "palette_fraction": float(ckpt.palette_fraction),
            "rng_state": ckpt.rng_state,
            "fingerprint": ckpt.fingerprint,
            "peak_bytes": int(ckpt.peak_bytes),
            "iterations": list(ckpt.iterations),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = _HEADER.pack(
        MAGIC, CHECKPOINT_VERSION, zlib.crc32(payload), len(payload)
    )
    path = _checkpoint_path(directory, ckpt.iteration)
    tmp = os.path.join(
        directory, f".tmp-{os.getpid()}-{os.path.basename(path)}"
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if keep is not None:
        for old in _list_checkpoints(directory)[keep:]:
            try:
                os.unlink(old)
            except OSError:  # pragma: no cover - prune is best-effort
                pass
    return path


def load_checkpoint(
    path: str | os.PathLike, expect_fingerprint: str | None = None
) -> PicassoCheckpoint:
    """Read and verify one snapshot; raises :class:`CheckpointError` on
    any corruption, version skew, or fingerprint mismatch."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise CheckpointError(f"{path}: truncated header")
            magic, version, crc, n = _HEADER.unpack(header)
            if magic != MAGIC:
                raise CheckpointError(f"{path}: not a Picasso checkpoint")
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"{path}: checkpoint format v{version}, this build "
                    f"reads v{CHECKPOINT_VERSION}"
                )
            payload = fh.read(n)
    except OSError as exc:
        raise CheckpointError(f"{path}: unreadable ({exc})") from None
    if len(payload) != n:
        raise CheckpointError(
            f"{path}: truncated payload ({len(payload)}/{n} bytes)"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointError(f"{path}: CRC mismatch — corrupt snapshot")
    state = pickle.loads(payload)
    if (
        expect_fingerprint is not None
        and state["fingerprint"] != expect_fingerprint
    ):
        raise CheckpointError(
            f"{path}: checkpoint is from a different run configuration "
            f"(fingerprint {state['fingerprint']}, this run "
            f"{expect_fingerprint}) — refusing to mix trajectories"
        )
    return PicassoCheckpoint(**state)


def _list_checkpoints(directory: str) -> list[str]:
    """Snapshot paths in ``directory``, newest (highest iteration)
    first.  Ignores temp files and foreign names."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = []
    for name in names:
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            continue
        digits = name[len(_PREFIX) : -len(_SUFFIX)]
        if digits.isdigit():
            found.append((int(digits), os.path.join(directory, name)))
    found.sort(reverse=True)
    return [p for _, p in found]


def latest_checkpoint(
    directory: str | os.PathLike, expect_fingerprint: str | None = None
) -> str | None:
    """Path of the newest snapshot in ``directory`` that passes
    verification, or ``None`` when none does.

    Corrupt or truncated files are *skipped*, not raised: after a crash
    the newest file may be damaged and the point of keeping
    ``KEEP_CHECKPOINTS`` generations is to fall back.  A fingerprint
    mismatch, by contrast, raises — every snapshot in the directory
    belongs to some other run, and resuming silently from nothing when
    the operator pointed at real checkpoints would discard their run.
    """
    for path in _list_checkpoints(os.fspath(directory)):
        try:
            load_checkpoint(path, expect_fingerprint)
        except CheckpointError as exc:
            if "different run configuration" in str(exc):
                raise
            continue
        return path
    return None
