"""Supervised execution: retry, then degrade, never hang — and never
change the answer.

PR 3/5 made every worker failure *bounded*: a dead pool worker, a
wedged agent, a broken install broadcast all surface as a typed error
within a timeout instead of hanging the dispatcher.  This module turns
that detection into recovery.  :class:`ResilientExecutor` wraps any
backend with the full :class:`~repro.parallel.executor.Executor`
contract and supervises each operation:

1. **retry** the failed sweep/round on the same backend with capped
   exponential backoff (the backend already recycled its broken
   workers/connections, so a retry lands on a fresh pool or fresh
   sockets);
2. after ``max_retries`` failures, **fail over** down a configured
   degradation chain — canonically cluster → pool → serial — and
   replay there.

Both paths preserve the library's bit-identity contract for free, by
construction: every backend yields results *in canonical task order*,
and the tasks themselves are pure functions of (payload, task).  The
supervisor counts how many results each operation already yielded and
resubmits only the *remaining* tasks, so the concatenated stream the
consumer sees is exactly the uninterrupted stream — whichever backend
produced which half.

Payload re-installation is the subtle part.  A delta payload built
against the dead backend's token cache is useless on the replacement,
so the supervisor re-materializes the payload on every attempt: callers
that go through :func:`repro.parallel.pool.imap_delta_install` are
routed to :meth:`ResilientExecutor.imap_with_payload`, whose
``make_payload`` closure consults :meth:`holds_token` — which the
supervisor delegates to the *current* backend, where a recycled pool or
a fresh fallback holds nothing, so the rebuild comes out full on its
own.  Plain ``imap`` payloads are self-contained and simply re-sent.

What is *not* retried: a task function raising an ordinary exception is
an application error, not a worker failure — it propagates on the first
attempt, exactly as without the supervisor.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable, Hashable, Iterator, Sequence
from typing import Any

from repro import telemetry
from repro.distributed.transport import TransportError
from repro.parallel.executor import (
    Executor,
    WorkerFailure,
    make_executor,
)
from repro.parallel.pool import PayloadNotInstalled
from repro.resilience.faults import FaultInjected

__all__ = [
    "ResilientExecutor",
    "supervised_executor",
    "FAILOVER_SPECS",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_BACKOFF_BASE_S",
]

#: Retries per backend before failing over (or giving up), overridable
#: via ``REPRO_MAX_RETRIES``.
DEFAULT_MAX_RETRIES = int(os.environ.get("REPRO_MAX_RETRIES", "2"))

#: First-retry sleep; doubles per retry, capped at
#: :data:`BACKOFF_CAP_S`.  Overridable via ``REPRO_BACKOFF_BASE_S``.
DEFAULT_BACKOFF_BASE_S = float(os.environ.get("REPRO_BACKOFF_BASE_S", "0.25"))

#: Upper bound on any single backoff sleep.
BACKOFF_CAP_S = 30.0

#: Executor specs allowed in a failover chain.
FAILOVER_SPECS = ("cluster", "pool", "serial")

#: The failures recovery is allowed to touch: the bounded
#: worker-failure family (pool timeouts, cluster deaths, broken
#: broadcasts), the delta-install respawn race, its barrier-side alias,
#: raw transport faults, and the injected stand-in used by the
#: resilience tests.  Everything else is an application error and
#: propagates untouched.
RECOVERABLE = (
    WorkerFailure,
    PayloadNotInstalled,
    threading.BrokenBarrierError,
    TransportError,
    FaultInjected,
)


class _OpState:
    """Per-operation progress: results already yielded, retries spent
    on the current backend, recoveries over the operation's lifetime
    (the retry budget resets on failover; the recovery count never
    does — it is what marks a submission as a re-attempt)."""

    __slots__ = ("done", "attempt", "recoveries")

    def __init__(self) -> None:
        self.done = 0
        self.attempt = 0
        self.recoveries = 0


class ResilientExecutor(Executor):
    """Executor wrapper adding retry + failover supervision.

    Parameters
    ----------
    inner:
        The primary backend.  The supervisor owns it (and every
        fallback it later builds): :meth:`close` closes whichever
        backend is current.
    fallbacks:
        Zero-arg factories, tried in order after the current backend
        exhausts its retries.  Lazy on purpose — a pool fallback forks
        no workers until the cluster actually fails.
    max_retries:
        Failures tolerated per backend per operation before failing
        over; the chain's last backend raises instead.
    backoff_base_s:
        Sleep before retry ``k`` is ``backoff_base_s * 2**(k-1)``,
        capped at :data:`BACKOFF_CAP_S`.
    """

    def __init__(
        self,
        inner: Executor,
        fallbacks: Sequence[Callable[[], Executor]] = (),
        max_retries: int | None = None,
        backoff_base_s: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__()
        self._inner = inner
        self._fallbacks = list(fallbacks)
        self.max_retries = (
            DEFAULT_MAX_RETRIES if max_retries is None else max_retries
        )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.backoff_base_s = (
            DEFAULT_BACKOFF_BASE_S if backoff_base_s is None else backoff_base_s
        )
        self._sleep = sleep
        #: Recovery trail: ``("retry" | "failover", backend_repr,
        #: error_str)`` per recovery action — what the resilience tests
        #: assert on, and what a post-mortem reads.
        self.events: list[tuple[str, str, str]] = []

    # -- delegation ------------------------------------------------------

    @property
    def inner(self) -> Executor:
        """The currently supervised backend."""
        return self._inner

    @property
    def n_workers(self) -> int:  # type: ignore[override]
        return self._inner.n_workers

    @property
    def supports_payload_cache(self) -> bool:  # type: ignore[override]
        return self._inner.supports_payload_cache

    @property
    def supports_shm_gather(self) -> bool:  # type: ignore[override]
        return self._inner.supports_shm_gather

    def holds_token(self, token: Hashable) -> bool:
        # Delegated, not tracked locally: after a recycle or failover
        # the *current* backend holds nothing, which is exactly what
        # makes delta-aware payload builders come out full on retry.
        return self._inner.holds_token(token)

    def worker_capacities(self) -> list[int]:
        try:
            return self._inner.worker_capacities()
        except RECOVERABLE:
            # Capacity probing may dial the shards; a dead one must not
            # fail the sweep here — the unweighted deal is always
            # correct, and the real submit path retries properly.
            return [1] * self._inner.n_workers

    @property
    def telemetry_prefix(self) -> str:  # type: ignore[override]
        # Absorbed worker deltas keep the slot naming of whichever
        # backend is current ("s" for a cluster, "w" for a pool).
        return getattr(self._inner, "telemetry_prefix", "w")

    def finalize(
        self, fn: Callable[..., Any], payload: tuple[Any, ...] = ()
    ) -> list[Any] | None:
        try:
            return self._inner.finalize(fn, payload)
        except RECOVERABLE:
            # Cleanup on a dying backend: the state it would have
            # cleared dies with the workers, and finalize runs inside
            # callers' ``finally`` blocks where a secondary raise would
            # mask the real error.
            return None

    def close(self) -> None:
        self._inner.close()

    # -- supervision core ------------------------------------------------

    def _advance(self) -> bool:
        """Fail over to the next backend in the chain; False when the
        chain is exhausted (caller re-raises the last error)."""
        if not self._fallbacks:
            return False
        try:
            self._inner.close()
        except Exception:
            pass
        self._inner = self._fallbacks.pop(0)()
        return True

    def _after_failure(self, exc: BaseException, state: _OpState) -> None:
        """Bookkeeping between attempts: backoff while retries remain
        on this backend, fail over when they run out, re-raise ``exc``
        when the chain is spent."""
        state.attempt += 1
        state.recoveries += 1
        if state.attempt > self.max_retries:
            if not self._advance():
                raise exc
            telemetry.count("resilience.failover")
            self.events.append(
                ("failover", repr(self._inner), str(exc))
            )
            state.attempt = 0
            return
        telemetry.count("resilience.retry")
        self.events.append(("retry", repr(self._inner), str(exc)))
        delay = min(
            BACKOFF_CAP_S, self.backoff_base_s * (2 ** (state.attempt - 1))
        )
        if delay > 0:
            self._sleep(delay)

    def _submit(
        self,
        tasks: list[Any],
        submit: Callable[..., Iterator[Any]],
        state: _OpState,
    ) -> Iterator[Any]:
        """One successful submission of the remaining tasks (the
        install/dispatch half of an operation, which the Executor
        contract makes eager)."""
        while True:
            try:
                return submit(
                    self._inner, tasks[state.done :], state.recoveries > 0
                )
            except RECOVERABLE as exc:
                self._after_failure(exc, state)

    def _supervised(
        self, tasks: list[Any], submit: Callable[..., Iterator[Any]]
    ) -> Iterator[Any]:
        state = _OpState()
        stream = self._submit(tasks, submit, state)

        def results() -> Iterator[Any]:
            nonlocal stream
            while True:
                try:
                    for item in stream:
                        yield item
                        state.done += 1
                    return
                except RECOVERABLE as exc:
                    # Mid-stream death: the backend recycled itself;
                    # resubmit only what has not been yielded yet.
                    # Results are pure and order-preserved, so the
                    # spliced stream equals the uninterrupted one.
                    self._after_failure(exc, state)
                    stream = self._submit(tasks, submit, state)

        return results()

    # -- Executor contract -----------------------------------------------

    def imap(
        self,
        task_fn: Callable[..., Any],
        tasks: Sequence[Any],
        initializer: Callable[..., Any] | None = None,
        payload: tuple[Any, ...] = (),
        payload_token: Hashable = None,
    ) -> Iterator[Any]:
        tasks = list(tasks)
        if not tasks:
            return iter(())

        def submit(
            inner: Executor, remaining: list[Any], _retrying: bool
        ) -> Iterator[Any]:
            # A plain payload is self-contained (no delta against a
            # worker-side cache), so every attempt re-sends it as-is.
            return inner.imap(
                task_fn, remaining, initializer=initializer,
                payload=payload, payload_token=payload_token,
            )

        return self._supervised(tasks, submit)

    def imap_with_payload(
        self,
        task_fn: Callable[..., Any],
        tasks: Sequence[Any],
        initializer: Callable[..., Any],
        make_payload: Callable[[bool], tuple[Any, Hashable, bool]],
    ) -> Iterator[Any]:
        """The supervised form of
        :func:`repro.parallel.pool.imap_delta_install`: the payload is
        re-materialized via ``make_payload`` on every attempt, so a
        retry or failover never replays a delta built against a backend
        that no longer caches its static half.

        ``make_payload(force_full)`` returns ``(payload, token,
        is_full)``; ``force_full`` is True on every attempt after the
        first.  Builders that size the payload off
        :meth:`holds_token` (the sweep path) come out full on retry
        even without the flag, since the failed backend dropped its
        tokens when it recycled.
        """
        tasks = list(tasks)
        if not tasks:
            return iter(())

        def submit(
            inner: Executor, remaining: list[Any], retrying: bool
        ) -> Iterator[Any]:
            payload, token, _ = make_payload(bool(retrying))
            return inner.imap(
                task_fn, remaining, initializer=initializer,
                payload=(payload,), payload_token=token,
            )

        return self._supervised(tasks, submit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        chain = "+" + str(len(self._fallbacks)) if self._fallbacks else ""
        return f"ResilientExecutor({self._inner!r}{chain})"


def _parse_chain(failover: str | Sequence[str] | None) -> list[str]:
    if failover is None:
        return []
    if isinstance(failover, str):
        entries = [e for e in (p.strip() for p in failover.split(",")) if e]
    else:
        entries = [str(e) for e in failover]
    for e in entries:
        if e not in FAILOVER_SPECS:
            raise ValueError(
                f"unknown failover spec {e!r} (available: {FAILOVER_SPECS})"
            )
    return entries


def supervised_executor(
    spec: str | Executor = "auto",
    n_workers: int = 1,
    start_method: str | None = None,
    pin: bool = False,
    hosts: str | Sequence[str] | None = None,
    transport: str = "socket",
    failover: str | Sequence[str] | None = None,
    max_retries: int | None = None,
    backoff_base_s: float | None = None,
) -> Executor:
    """:func:`~repro.parallel.executor.make_executor` plus supervision.

    Builds the primary backend from ``spec`` and, when supervision is
    requested (``failover`` names a degradation chain and/or
    ``max_retries`` is set), wraps it in a
    :class:`ResilientExecutor` whose fallbacks are built lazily from
    the ``failover`` entries (``"cluster"``, ``"pool"``, ``"serial"``,
    comma-separated string or sequence) with the same construction
    knobs.  With neither knob set, the bare backend comes back and
    behavior is exactly pre-supervision.

    The caller owns the returned executor either way and must close it.
    """
    chain = _parse_chain(failover)
    if not chain and max_retries is None:
        return make_executor(
            spec, n_workers, start_method, pin, hosts, transport
        )

    def build(entry: str | Executor) -> Executor:
        ex = make_executor(
            entry, n_workers, start_method, pin, hosts, transport
        )
        # Under supervision a cluster backend redistributes a dead
        # agent's strips to the survivors first; only when that is
        # impossible (no survivors, dispatch/install failure) does the
        # failure reach the supervisor's retry/failover machinery.
        if hasattr(ex, "redistribute"):
            setattr(ex, "redistribute", True)
        return ex

    return ResilientExecutor(
        build(spec),
        [(lambda e=e: build(e)) for e in chain],
        max_retries=max_retries,
        backoff_base_s=backoff_base_s,
    )
