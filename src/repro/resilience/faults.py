"""Deterministic fault injection for the resilience test suite.

Crash testing with ``sleep``-and-``SIGKILL`` races is flaky by
construction: the kill lands wherever the scheduler put the victim.
This module replaces the race with *counted fault points* — named sites
in the library (the bottom of each Picasso iteration, the top of each
sweep strip task) call :func:`fault_point`, which is a no-op until a
:class:`FaultSpec` is armed, and triggers the spec's fault on exactly
the ``after``-th hit of its site.  The same crash then lands on the
same strip/iteration in every run, which is what lets the checkpoint
and failover tests assert *bit-identical* recovery rather than "it
eventually finished".

Faults are armed two ways:

- :func:`install_fault` — in-process, for tests that own the process;
- the ``REPRO_FAULT`` environment variable
  (``kind:site:after[:seconds]``, e.g. ``kill:iteration:2``), read once
  per process on the first :func:`fault_point` hit — which is how a
  fault reaches spawned pool workers, cluster agents and the CLI smoke
  test without any code handles.

Kinds
-----
- ``kill``  — ``SIGKILL`` the calling process (no cleanup, no flush:
  the crash the checkpoint format must survive).
- ``delay`` — sleep ``seconds`` at the site (wedged-worker simulation).
- ``error`` — raise :class:`FaultInjected` (an in-process crash that
  unwinds normally; what the resume tests use when the dying process is
  the test itself).
- ``drop``  — close the serving transport connection registered via
  :func:`register_connection` (cluster agents register theirs), so the
  dispatcher sees a reset mid-stream; falls back to ``kill`` when no
  connection is registered.

Two guards make multi-process injection deterministic instead of
viral:

- ``spare_pid`` (env ``REPRO_FAULT_SPARE_PID``) — the fault never
  triggers in that process; set it to the dispatcher's pid so a
  ``kill:task`` spec murders workers, not the test.
- ``once_path`` (env ``REPRO_FAULT_ONCE``) — a sentinel file created
  with ``O_EXCL`` on first trigger; once it exists the fault is spent
  in *every* process.  Without it, a task-site kill re-delivered to a
  surviving shard by redistribution would kill the survivor too.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

__all__ = [
    "FaultSpec",
    "FaultInjected",
    "fault_point",
    "install_fault",
    "clear_faults",
    "register_connection",
    "faulty_task",
]


class FaultInjected(RuntimeError):
    """The ``error`` fault kind: a deterministic, catchable crash."""


_KINDS = ("kill", "delay", "error", "drop")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: trigger ``kind`` on hit number ``after`` of
    ``site`` (1-based, counted per process)."""

    kind: str
    site: str = "task"
    after: int = 1
    seconds: float = 0.0
    once_path: str | None = None
    spare_pid: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (have {_KINDS})")
        if self.after < 1:
            raise ValueError("after must be >= 1")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """``kind:site:after[:seconds]`` — the ``REPRO_FAULT`` format."""
        parts = text.split(":")
        if len(parts) < 3:
            raise ValueError(
                f"REPRO_FAULT {text!r} is not of the form kind:site:after"
            )
        kind, site, after = parts[0], parts[1], int(parts[2])
        seconds = float(parts[3]) if len(parts) > 3 else 0.0
        spare = os.environ.get("REPRO_FAULT_SPARE_PID")
        return cls(
            kind=kind,
            site=site,
            after=after,
            seconds=seconds,
            once_path=os.environ.get("REPRO_FAULT_ONCE") or None,
            spare_pid=int(spare) if spare else None,
        )


#: Armed specs and per-(site, spec) hit counters — process-local by
#: design: every *process* (spawned worker, forked worker, agent) arms
#: from the environment on its first hit and counts from zero, so the
#: same spec lands on the same strip in every worker regardless of
#: start method.
_ACTIVE: list[FaultSpec] = []
_COUNTS: dict = {}
#: The environment-armed spec and the pid it was read in.  Keyed by pid
#: rather than a boolean so a *forked* child (which inherits the
#: parent's module state, flag and all) still re-reads the environment
#: and restarts its counters — exactly like a spawned child does by
#: re-importing the module.
_ENV_SPEC: FaultSpec | None = None
_ENV_PID: int | None = None

#: The serving connection a cluster agent registered for ``drop``.
_CONNECTION = None


def install_fault(spec: FaultSpec) -> None:
    """Arm a fault in this process (tests that own the process)."""
    _ACTIVE.append(spec)


def clear_faults() -> None:
    """Disarm everything and reset counters (test teardown).  Pins the
    environment as read-and-empty for this process: a test that cleared
    faults does not want ``REPRO_FAULT`` re-arming them on the next
    hit."""
    global _ENV_SPEC, _ENV_PID
    _ACTIVE.clear()
    _COUNTS.clear()
    _ENV_SPEC = None
    _ENV_PID = os.getpid()


def register_connection(conn) -> None:
    """Register the transport connection ``drop`` should sever
    (anything with a ``close()``); ``None`` unregisters."""
    global _CONNECTION
    _CONNECTION = conn


def _sync_env() -> None:
    """Arm from ``REPRO_FAULT`` on the first hit *in this process* —
    including a fork child whose inherited state says some other pid
    already loaded.  Counters restart with the process."""
    global _ENV_SPEC, _ENV_PID
    pid = os.getpid()
    if _ENV_PID == pid:
        return
    _ENV_PID = pid
    _COUNTS.clear()
    text = os.environ.get("REPRO_FAULT")
    _ENV_SPEC = FaultSpec.parse(text) if text else None


def _spent(spec: FaultSpec) -> bool:
    """True when the once-guard says some process already triggered."""
    if spec.once_path is None:
        return False
    try:
        fd = os.open(spec.once_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return True
    os.close(fd)
    return False


def _trigger(spec: FaultSpec) -> None:
    if spec.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.kind == "delay":
        time.sleep(spec.seconds)
    elif spec.kind == "drop":
        conn = _CONNECTION
        if conn is not None:
            conn.close()
        else:
            os.kill(os.getpid(), signal.SIGKILL)
    else:
        raise FaultInjected(
            f"injected fault at site {spec.site!r} (hit {spec.after})"
        )


def fault_point(site: str) -> None:
    """Hit a named fault site.  Near-free until a spec targeting
    ``site`` is armed (a pid check and two truthiness checks)."""
    _sync_env()
    if not _ACTIVE and _ENV_SPEC is None:
        return
    armed: list = list(enumerate(_ACTIVE))
    if _ENV_SPEC is not None:
        armed.append(("env", _ENV_SPEC))
    for k, spec in armed:
        if spec.site != site:
            continue
        key = (site, k)
        count = _COUNTS.get(key, 0) + 1
        _COUNTS[key] = count
        if count != spec.after:
            continue
        if spec.spare_pid is not None and os.getpid() == spec.spare_pid:
            continue
        if _spent(spec):
            continue
        _trigger(spec)


class faulty_task:
    """Picklable task-function wrapper hitting ``task`` (or a custom
    site) before each call — instruments *any* task fn shipped to a
    worker without touching the library's own dispatch path."""

    def __init__(self, fn, spec: FaultSpec | None = None) -> None:
        self.fn = fn
        self.spec = spec

    def __call__(self, task):
        if self.spec is not None and self.spec not in _ACTIVE:
            # Arrived by pickle into a fresh worker: arm locally so the
            # per-process counters exist.
            install_fault(self.spec)
        fault_point(self.spec.site if self.spec is not None else "task")
        return self.fn(task)
