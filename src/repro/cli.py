"""Command-line interface.

Subcommands mirror the workflows of the paper's evaluation:

- ``census``   — Table II dataset census for a suite tier;
- ``generate`` — molecule -> Pauli-set text file;
- ``color``    — color a Pauli-set file (Picasso or a baseline) and
  report colors / memory / iterations;
- ``sweep``    — (P', alpha) grid sweep with the Eq. 7 optima per beta;
- ``taper``    — Z2 symmetries and qubit tapering for a molecule.

Every subcommand takes the same three observability flags:
``--metrics-json PATH`` (one uniform run-summary JSON document, same
top-level schema everywhere, ``null`` where a field does not apply),
``--trace-json PATH`` (the merged telemetry event trace as JSON lines)
and ``--metrics-out PATH`` (a Prometheus-style text snapshot of the
telemetry counters).  The trace/snapshot flags enable telemetry for
the process; ``REPRO_TELEMETRY=1`` does the same without writing files.

Entry point: ``repro-picasso`` (or ``python -m repro.cli``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import telemetry


def _metrics_payload(
    command: str,
    *,
    algorithm: str | None = None,
    elapsed_s: float | None = None,
    n_colors: int | None = None,
    iterations: list | None = None,
    phase_times: dict | None = None,
    **extra,
) -> dict:
    """The uniform ``--metrics-json`` document.

    Every subcommand emits the same six top-level keys (``command``,
    ``algorithm``, ``elapsed_s``, ``n_colors``, ``iterations``,
    ``phase_times``) with ``null`` where a field does not apply, plus
    command-specific extras after them — so one consumer parses all
    five subcommands.
    """
    payload: dict = {
        "command": command,
        "algorithm": algorithm,
        "elapsed_s": elapsed_s,
        "n_colors": n_colors,
        "iterations": iterations,
        "phase_times": phase_times,
    }
    payload.update(extra)
    return payload


def _write_metrics_json(path: str, payload: dict) -> None:
    import json

    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"metrics written to {path}")


def _cmd_census(args: argparse.Namespace) -> int:
    from repro.datasets import load_molecule, suite_specs
    from repro.graphs import anticommute_edge_count

    t0 = telemetry.clock()
    rows = []
    print(f"{'molecule':<16} {'qubits':>7} {'terms':>9} {'anticommute edges':>18}")
    for spec in suite_specs(args.tier):
        ps = load_molecule(spec.name)
        m = anticommute_edge_count(ps)
        print(f"{spec.name:<16} {ps.n_qubits:>7} {ps.n:>9,} {m:>18,}")
        rows.append({
            "molecule": spec.name, "qubits": ps.n_qubits,
            "terms": ps.n, "anticommute_edges": int(m),
        })
    if args.metrics_json:
        _write_metrics_json(args.metrics_json, _metrics_payload(
            "census", elapsed_s=telemetry.clock() - t0,
            tier=args.tier, molecules=rows,
        ))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.chemistry import hn_pauli_set
    from repro.pauli import save_pauli_set

    t0 = telemetry.clock()
    ps = hn_pauli_set(args.atoms, args.dim, args.basis, transform=args.transform)
    save_pauli_set(ps, args.output)
    print(f"wrote {ps.n} Pauli strings over {ps.n_qubits} qubits to {args.output}")
    if args.metrics_json:
        _write_metrics_json(args.metrics_json, _metrics_payload(
            "generate", elapsed_s=telemetry.clock() - t0,
            n_strings=ps.n, n_qubits=ps.n_qubits, output=args.output,
        ))
    return 0


def _make_params(args: argparse.Namespace):
    from repro.core import PicassoParams, aggressive_params, normal_params

    if args.preset == "normal":
        base = normal_params()
    elif args.preset == "aggressive":
        base = aggressive_params()
    else:
        base = PicassoParams()
    overrides = {}
    if args.palette_percent is not None:
        overrides["palette_fraction"] = args.palette_percent / 100.0
    if args.alpha is not None:
        overrides["alpha"] = args.alpha
    if getattr(args, "workers", None) is not None:
        overrides["n_workers"] = args.workers
    if getattr(args, "executor", None) is not None:
        overrides["executor"] = args.executor
    if getattr(args, "shm", False):
        overrides["shm_gather"] = True
    if getattr(args, "pin", False):
        overrides["pin_workers"] = True
    if getattr(args, "color_engine", None) is not None:
        overrides["color_engine"] = args.color_engine
    if getattr(args, "hosts", None) is not None:
        overrides["hosts"] = args.hosts
    if getattr(args, "transport", None) is not None:
        overrides["transport"] = args.transport
    if getattr(args, "checkpoint_dir", None) is not None:
        overrides["checkpoint_dir"] = args.checkpoint_dir
    if getattr(args, "checkpoint_every", None) is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "resume", False):
        overrides["resume"] = True
    if getattr(args, "failover", None) is not None:
        overrides["failover"] = args.failover
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = args.max_retries
    if getattr(args, "fused", None) is not None:
        overrides["fused"] = args.fused
    if getattr(args, "kernel_backend", None) is not None:
        overrides["kernel_backend"] = args.kernel_backend
    return base.with_(**overrides)


def _write_metrics(path: str, result, algorithm: str) -> None:
    """The ``color`` run summary: uniform schema plus per-iteration
    stats and phase wall-time buckets.

    Picasso results carry the full iteration trace (including the PR 7
    sweep / assemble / edge_sweep split); baseline algorithms get the
    headline numbers with ``null`` iteration fields.
    """
    import dataclasses

    if algorithm == "picasso":
        payload = _metrics_payload(
            "color",
            algorithm=result.algorithm,
            elapsed_s=float(result.elapsed_s),
            n_colors=int(result.n_colors),
            iterations=[dataclasses.asdict(s) for s in result.iterations],
            phase_times={
                k: float(v) for k, v in result.phase_times().items()
            },
            peak_bytes=int(result.peak_bytes),
            n_iterations=result.n_iterations,
            max_conflict_edges=int(result.max_conflict_edges),
        )
    else:
        payload = _metrics_payload(
            "color",
            algorithm=result.algorithm,
            elapsed_s=float(result.elapsed_s),
            n_colors=int(result.n_colors),
            peak_bytes=int(result.peak_bytes),
        )
    _write_metrics_json(path, payload)


def _cmd_color(args: argparse.Namespace) -> int:
    from repro.core import Picasso
    from repro.core.sources import PauliComplementSource
    from repro.memory import bytes_human
    from repro.pauli import load_pauli_set

    ps = load_pauli_set(args.input)
    print(f"input: {ps.n} strings, {ps.n_qubits} qubits")
    if args.algorithm == "picasso":
        result = Picasso(params=_make_params(args), seed=args.seed).color(ps)
        extra = f", {result.n_iterations} iterations, max |Ec| {result.max_conflict_edges:,}"
    else:
        from repro.coloring import (
            greedy_coloring,
            jones_plassmann_ldf,
            speculative_coloring,
        )
        from repro.graphs import complement_graph

        g = complement_graph(ps)
        if args.algorithm.startswith("greedy-"):
            result = greedy_coloring(g, args.algorithm.split("-", 1)[1], seed=args.seed)
        elif args.algorithm == "jp":
            result = jones_plassmann_ldf(g, seed=args.seed)
        else:
            result = speculative_coloring(g, seed=args.seed)
        extra = ""
    if args.validate:
        ok = PauliComplementSource(ps).validate(result.colors)
        if not ok:
            print("INVALID coloring", file=sys.stderr)
            return 1
        extra += ", validated"
    print(
        f"{result.algorithm}: {result.n_colors} colors "
        f"({result.color_percentage():.1f}% of |V|), "
        f"peak memory {bytes_human(result.peak_bytes)}, "
        f"{result.elapsed_s:.2f}s{extra}"
    )
    if args.output:
        np.savetxt(args.output, result.colors, fmt="%d")
        print(f"colors written to {args.output}")
    if args.metrics_json:
        _write_metrics(args.metrics_json, result, args.algorithm)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.pauli import load_pauli_set
    from repro.predict import optimal_frontier, run_sweep

    t0 = telemetry.clock()
    ps = load_pauli_set(args.input)
    points = run_sweep(
        ps,
        palette_percents=tuple(args.palette_percents),
        alphas=tuple(args.alphas),
        seed=args.seed,
    )
    print(f"{'P%':>6} {'alpha':>6} {'colors':>7} {'max|Ec|':>10} {'time s':>7}")
    for p in points:
        print(
            f"{p.palette_percent:>6.1f} {p.alpha:>6.1f} {p.n_colors:>7} "
            f"{p.max_conflict_edges:>10,} {p.elapsed_s:>7.2f}"
        )
    optima = list(optimal_frontier(points))
    print("\nEq. 7 optima:")
    for beta, best in optima:
        print(
            f"  beta={beta:.1f}: P'={best.palette_percent}% alpha={best.alpha} "
            f"({best.n_colors} colors, {best.max_conflict_edges:,} conflict edges)"
        )
    if args.metrics_json:
        _write_metrics_json(args.metrics_json, _metrics_payload(
            "sweep",
            algorithm="picasso",
            elapsed_s=telemetry.clock() - t0,
            points=[{
                "palette_percent": p.palette_percent, "alpha": p.alpha,
                "n_colors": int(p.n_colors),
                "max_conflict_edges": int(p.max_conflict_edges),
                "elapsed_s": float(p.elapsed_s),
            } for p in points],
            optima=[{
                "beta": beta,
                "palette_percent": best.palette_percent,
                "alpha": best.alpha,
                "n_colors": int(best.n_colors),
            } for beta, best in optima],
        ))
    return 0


def _cmd_taper(args: argparse.Namespace) -> int:
    from repro.chemistry import (
        find_z2_symmetries,
        hydrogen_cluster,
        molecular_qubit_operator,
        taper_qubits,
    )

    t0 = telemetry.clock()
    geom = hydrogen_cluster(args.atoms, args.dim, args.basis)
    qop = molecular_qubit_operator(geom)
    n = geom.n_spin_orbitals
    gens = find_z2_symmetries(qop, n)
    print(f"{geom.name}: {n} qubits, {qop.n_terms} terms, {len(gens)} Z2 symmetries")
    for g in gens:
        term = next(iter(g.terms))
        print("  " + (" ".join(f"{p}{q}" for q, p in term) or "I"))
    try:
        result = taper_qubits(qop, n, generators=gens)
    except ValueError as exc:
        print(f"tapering not applicable: {exc}", file=sys.stderr)
        return 1
    print(
        f"tapered to {result.n_qubits_after} qubits "
        f"(removed {result.removed_qubits}), {result.operator.n_terms} terms"
    )
    if args.metrics_json:
        _write_metrics_json(args.metrics_json, _metrics_payload(
            "taper",
            elapsed_s=telemetry.clock() - t0,
            molecule=geom.name,
            n_qubits_before=n,
            n_qubits_after=result.n_qubits_after,
            n_symmetries=len(gens),
            n_terms=result.operator.n_terms,
        ))
    return 0


def _add_observability_flags(p: argparse.ArgumentParser) -> None:
    """The three flags every subcommand shares (one schema each)."""
    p.add_argument(
        "--metrics-json", default=None, dest="metrics_json", metavar="PATH",
        help="dump a uniform run-summary JSON document to PATH (same "
        "top-level keys on every subcommand — command / algorithm / "
        "elapsed_s / n_colors / iterations / phase_times, null where "
        "not applicable — plus command-specific extras; for 'color' "
        "with picasso this includes the per-iteration phase buckets)",
    )
    p.add_argument(
        "--trace-json", default=None, dest="trace_json", metavar="PATH",
        help="enable telemetry and write the merged event trace "
        "(dispatcher phase spans, worker strip spans, counters) to "
        "PATH as JSON lines after the command finishes",
    )
    p.add_argument(
        "--metrics-out", default=None, dest="metrics_out", metavar="PATH",
        help="enable telemetry and write a Prometheus-style text "
        "snapshot of the run's counters/gauges/histograms to PATH "
        "after the command finishes",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-picasso",
        description="Picasso: memory-efficient palette-based graph coloring",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("census", help="dataset census (Table II)")
    p.add_argument("--tier", default="small", choices=["small", "medium", "large"])
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_census)

    p = sub.add_parser("generate", help="molecule -> Pauli-set file")
    p.add_argument("--atoms", type=int, required=True)
    p.add_argument("--dim", type=int, default=1, choices=[1, 2, 3])
    p.add_argument("--basis", default="sto3g", choices=["sto3g", "631g", "6311g"])
    p.add_argument("--transform", default="jordan_wigner",
                   choices=["jordan_wigner", "bravyi_kitaev"])
    p.add_argument("--output", "-o", required=True)
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("color", help="color a Pauli-set file")
    p.add_argument("input")
    p.add_argument(
        "--algorithm",
        default="picasso",
        choices=[
            "picasso", "greedy-lf", "greedy-sl", "greedy-dlf", "greedy-id",
            "greedy-natural", "greedy-random", "jp", "speculative",
        ],
    )
    p.add_argument("--preset", default="default",
                   choices=["default", "normal", "aggressive"])
    p.add_argument("--palette-percent", type=float, default=None)
    p.add_argument("--alpha", type=float, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for conflict-graph construction "
        "(default 1 = serial; parallel builds are bit-identical)",
    )
    p.add_argument(
        "--executor", default=None,
        choices=["auto", "serial", "pool", "cluster"],
        help="execution backend (default auto: serial for 1 worker, "
        "process pool otherwise, cluster when --hosts is given); pools "
        "and cluster connections persist across iterations; 'cluster' "
        "without --hosts reads the REPRO_HOSTS environment variable",
    )
    p.add_argument(
        "--shm", action="store_true",
        help="gather sweep hits through a shared-memory COO region "
        "sized by the Lemma 2 estimate (zero-copy; bit-identical to "
        "the default pickled gather)",
    )
    p.add_argument(
        "--pin", action="store_true",
        help="pin each pool worker to one core (sched_setaffinity; "
        "no-op where unsupported)",
    )
    p.add_argument(
        "--hosts", default=None, metavar="HOST:PORT,...",
        help="shard the sweep and coloring rounds over multi-host "
        "worker agents (python -m repro.distributed.worker on each "
        "host); distributed builds and colorings are bit-identical "
        "to serial per seed",
    )
    p.add_argument(
        "--transport", default=None, choices=["socket"],
        help="wire protocol for --hosts (default socket: "
        "length-prefixed frames, numpy buffers sent raw)",
    )
    from repro.coloring.engine import available_engines

    p.add_argument(
        "--color-engine", default=None, dest="color_engine",
        choices=["auto", *available_engines()],
        help="Algorithm 2 implementation for the conflict coloring "
        "(registry name; default auto pairs greedy-dynamic with the "
        "tiled engine and sets with pairs; parallel-list runs "
        "round-synchronous rounds on the worker pool)",
    )
    p.add_argument(
        "--checkpoint-dir", default=None, dest="checkpoint_dir",
        metavar="DIR",
        help="write atomic snapshots of Picasso iteration state into "
        "DIR (every --checkpoint-every iterations); a killed run "
        "restarted with --resume finishes bit-identical to an "
        "uninterrupted one",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=None,
        dest="checkpoint_every", metavar="K",
        help="snapshot cadence in iterations (default 1)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from the newest valid checkpoint in "
        "--checkpoint-dir (fresh start when none exists)",
    )
    p.add_argument(
        "--failover", default=None, metavar="CHAIN",
        help="supervised backend degradation chain, e.g. 'pool,serial' "
        "(entries: cluster|pool|serial); bounded worker failures are "
        "retried with backoff, then the run fails over down the chain "
        "— recovery never changes the coloring",
    )
    p.add_argument(
        "--max-retries", type=int, default=None, dest="max_retries",
        metavar="N",
        help="bounded-failure retries per backend per sweep before "
        "failing over (default REPRO_MAX_RETRIES=2; setting this "
        "enables supervision even without --failover)",
    )
    from repro.device.backends import registered_backends

    p.add_argument(
        "--kernel-backend", default=None, dest="kernel_backend",
        choices=["auto", *registered_backends()],
        help="compute-kernel backend for the hot sweep/coloring kernels "
        "(registry name; default auto reads REPRO_KERNEL_BACKEND, else "
        "numpy); numba is a compiled CPU path, cupy a GPU path — both "
        "bit-identical to numpy, with a stderr note and numpy fallback "
        "when the requested runtime is not importable",
    )
    p.add_argument(
        "--fused", action=argparse.BooleanOptionalAction, default=None,
        help="fuse the iteration: workers pre-sweep per-strip conflict "
        "vertices so the dispatcher skips its O(|Ec|) edge sweep "
        "(default on, also via REPRO_FUSED=0/1; bit-identical either "
        "way — --no-fused keeps the classic iterate)",
    )
    p.add_argument("--validate", action="store_true")
    p.add_argument("--output", "-o", default=None, help="write per-vertex colors")
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_color)

    p = sub.add_parser("sweep", help="(P', alpha) grid sweep with Eq. 7 optima")
    p.add_argument("input")
    p.add_argument("--palette-percents", type=float, nargs="+",
                   default=[2.5, 5.0, 10.0, 15.0])
    p.add_argument("--alphas", type=float, nargs="+", default=[1.0, 2.0, 4.0])
    p.add_argument("--seed", type=int, default=0)
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("taper", help="Z2 symmetries + qubit tapering")
    p.add_argument("--atoms", type=int, required=True)
    p.add_argument("--dim", type=int, default=1, choices=[1, 2, 3])
    p.add_argument("--basis", default="sto3g", choices=["sto3g", "631g", "6311g"])
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_taper)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # The exporter flags imply telemetry for the whole process: the
    # dispatcher-side enable also rides every worker install, so pool
    # and cluster deltas fold into the exported snapshot.
    export = args.trace_json or args.metrics_out
    if export:
        telemetry.enable(True)
    rc = args.func(args)
    if export:
        snap = telemetry.snapshot()
        if args.trace_json:
            telemetry.write_trace_jsonl(args.trace_json, snap)
            print(f"trace written to {args.trace_json}")
        if args.metrics_out:
            telemetry.write_prometheus(args.metrics_out, snap)
            print(f"telemetry snapshot written to {args.metrics_out}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
