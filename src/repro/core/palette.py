"""Palette and candidate-list assignment (Algorithm 1, line 6).

Each active vertex receives ``L`` candidate colors drawn uniformly
without replacement from the iteration's palette ``{0, ..., P-1}``
(local ids; the driver offsets them into the global color space so
colors are never reused across iterations, §IV).

Two representations are produced:

- a dense ``(n, L)`` int64 matrix of local color ids (for the coloring
  phase, which walks lists);
- a packed ``(n, ceil(P/64))`` uint64 bitset matrix (for the conflict
  kernel, which intersects lists).
"""

from __future__ import annotations

import numpy as np

from repro.util.bits import bitset_from_lists
from repro.util.rng import as_generator


def assign_color_lists(
    n: int,
    palette_size: int,
    list_size: int,
    rng: np.random.Generator | int | None = None,
    row_chunk_bytes: int = 1 << 25,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw per-vertex candidate color lists.

    Sampling is an argpartition over per-row uniform keys — an exact
    uniform ``L``-subset of ``{0..P-1}`` per vertex — processed in row
    chunks so scratch memory stays bounded by ``row_chunk_bytes``
    regardless of ``n * P`` (the HPC-guide chunking idiom).

    Returns
    -------
    (col_lists, colmasks):
        ``(n, L)`` int64 local color ids (unsorted) and the packed
        ``(n, ceil(P/64))`` uint64 palette bitsets.
    """
    if palette_size < 1:
        raise ValueError("palette_size must be >= 1")
    if not 1 <= list_size <= palette_size:
        raise ValueError("list_size must be in [1, palette_size]")
    rng = as_generator(rng)

    if list_size == palette_size:
        # Degenerate but common in aggressive mode: the whole palette.
        col_lists = np.tile(np.arange(palette_size, dtype=np.int64), (n, 1))
    else:
        rows_per_chunk = max(1, row_chunk_bytes // (8 * palette_size))
        pieces = []
        for start in range(0, n, rows_per_chunk):
            rows = min(rows_per_chunk, n - start)
            keys = rng.random((rows, palette_size))
            pieces.append(
                np.argpartition(keys, list_size - 1, axis=1)[:, :list_size].astype(
                    np.int64
                )
            )
        col_lists = (
            np.vstack(pieces) if pieces else np.empty((0, list_size), dtype=np.int64)
        )
    colmasks = bitset_from_lists(col_lists, palette_size)
    return col_lists, colmasks


def lists_nbytes(col_lists: np.ndarray, colmasks: np.ndarray) -> int:
    """Bytes of both list representations (memory accounting)."""
    return int(col_lists.nbytes + colmasks.nbytes)
