"""Picasso parameters (paper Table I) and the paper's two presets."""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.coloring.engine import available_engines


@dataclass(frozen=True)
class PicassoParams:
    """The two knobs of the trade-off (§IV, §VII-D) plus run controls.

    Attributes
    ----------
    palette_fraction:
        ``P`` as a fraction of the current vertex count (the paper's
        percentile palette size ``P' / 100``).  Smaller -> fewer final
        colors, more conflict edges, more work.
    alpha:
        List-size coefficient: ``L = max(1, round(alpha * ln |V|))``,
        capped at the palette size.  Larger -> better colorability of
        the conflict graph, more conflict edges.
    conflict_order:
        How to color the conflict graph: ``"dynamic"`` (Algorithm 2,
        the paper's choice) or a static list order
        (``"natural" | "random" | "lf"``).
    max_iterations:
        Safety valve on the outer loop of Algorithm 1.
    grow_on_stall:
        If an iteration colors nothing, multiply the palette fraction
        by this factor for subsequent iterations (implementation detail
        guaranteeing termination; 1.0 disables).
    chunk_size:
        Pairs per kernel launch in conflict-graph construction
        (``"pairs"`` engine only).
    engine:
        Pair-sweep engine: ``"tiled"`` (default — the block-broadcast
        kernel engine of :mod:`repro.device.tiles`, with the bitset
        Algorithm 2) or ``"pairs"`` (the original flat pair-chunk
        gather kernels plus the Python-set Algorithm 2, kept as the
        ablation baseline).  Both engines build identical conflict
        graphs and draw identical random numbers, so colorings match
        for a given seed.
    tile_budget_bytes:
        Per-tile scratch budget for the tiled engine (sets the tile
        edge; see :func:`repro.device.tiles.tile_edge`).  A sizing
        hint, not a hard cap: the tile edge never drops below the
        64-row minimum, so budgets under ~41 KB are exceeded.
    n_workers:
        Worker processes for conflict-graph construction.  1 (default)
        streams the sweep in-process; >= 2 partitions the sweep domain
        into balanced contiguous strips dispatched over a process pool.
        Serial and parallel builds are bit-identical per seed, so this
        is purely a throughput knob.
    executor:
        Execution backend: ``"auto"`` (serial for one worker, pool
        otherwise — or the cluster backend when ``hosts`` is set),
        ``"serial"`` (force in-process), ``"pool"`` (force a process
        pool even for one worker), or ``"cluster"`` (shard over
        multi-host worker agents; requires ``hosts`` or the
        ``REPRO_HOSTS`` environment variable).  Pools and cluster
        connections are persistent: created once per run, reused
        across Algorithm 1 iterations (only the per-iteration colmasks
        delta ships to the workers), and closed when the run ends.
        See :mod:`repro.parallel.executor` /
        :mod:`repro.distributed.cluster`.
    shm_gather:
        Gather sweep hits through a ``multiprocessing.shared_memory``
        COO region sized by the Lemma 2 estimate instead of pickling
        per-strip hit arrays through the pool's result pipe
        (:mod:`repro.parallel.shm`).  Identical output either way —
        serial, pickled-pool and shm-pool builds are bit-identical per
        seed — so this is purely a communication-cost knob.
    pin_workers:
        Pin each pool worker to one core via ``os.sched_setaffinity``
        so its tile scratch stays NUMA-local; silently ignored on
        platforms without the call.
    color_engine:
        Which Algorithm 2 implementation colors the conflict graph
        (:mod:`repro.coloring.engine` registry).  ``"auto"`` (default)
        keeps the historical pairing — the bitset ``greedy-dynamic``
        for the tiled engine, the ``sets`` reference for the pairs
        ablation, ``greedy-static`` when ``conflict_order`` names a
        static order.  ``"parallel-list"`` selects the
        round-synchronous speculative engine, whose rounds dispatch
        over the run's executor (sweep *and* color then share one
        persistent pool); output is deterministic per seed for any
        worker count.  An explicit engine name always wins over
        ``conflict_order``.
    color_max_rounds:
        Safety valve for the round-synchronous engines (``None`` =
        vertex count + 1, a true upper bound).
    hosts:
        Worker-agent addresses for the distributed backend
        (:mod:`repro.distributed`): ``"host:port,host:port"`` or a
        tuple of such strings.  Setting it routes ``executor="auto"``
        to a :class:`~repro.distributed.cluster.ClusterExecutor`; the
        sweep strips and coloring round picks shard across the agents
        and merge in canonical order, so distributed CSR builds and
        colorings are **bit-identical per seed** to serial for any
        shard count — like ``n_workers``, purely a throughput knob.
        ``shm_gather`` is ignored for cluster backends (shared memory
        does not cross hosts).
    transport:
        Wire protocol for the distributed backend; ``"socket"`` (the
        length-prefixed raw-buffer protocol) is the only one today.
    checkpoint_dir:
        Directory for atomic snapshots of Algorithm 1 state
        (:mod:`repro.resilience.checkpoint`).  ``None`` (default)
        disables checkpointing.  Snapshots are written at the bottom of
        every ``checkpoint_every``-th iteration; a killed run restarted
        with ``resume=True`` picks up from the newest valid snapshot
        and finishes **bit-identical per seed** to an uninterrupted
        run — on any backend, since the fingerprint deliberately
        excludes execution knobs.
    checkpoint_every:
        Snapshot cadence in iterations (1 = every iteration).
    resume:
        Start from the newest valid checkpoint in ``checkpoint_dir``
        instead of from scratch (no-op when the directory has none —
        a fresh run that crashes early can always be relaunched with
        the same flags).
    failover:
        Backend degradation chain for the supervisor
        (:mod:`repro.resilience.supervisor`): a comma-separated string
        or tuple of ``"cluster" | "pool" | "serial"``, tried in order
        after the current backend exhausts its retries (canonically
        ``executor="cluster"`` with ``failover="pool,serial"``).
        ``None`` disables failover; setting it (or ``max_retries``)
        turns supervision on, which also enables shard redistribution
        on cluster backends.  Recovery is invisible in the output:
        retried, redistributed and failed-over runs are bit-identical
        per seed.
    max_retries:
        Bounded-failure retries per backend per sweep before failing
        over (or raising); ``None`` defers to ``REPRO_MAX_RETRIES``
        (default 2) when supervision is on.
    fused:
        Fuse each iteration's sweep and assembly: workers pre-sweep
        their strips' conflict-vertex sets alongside the hit arrays,
        and the dispatcher assembles the conflicted subgraph CSR
        directly — skipping the full-width graph, its degree scan and
        the induced-subgraph relabel (the dispatcher-side O(|Ec|) edge
        sweep).  Fused and unfused runs are **bit-identical per seed**
        on every host backend, so this is purely a throughput knob.
        ``None`` (default) defers to the ``REPRO_FUSED`` environment
        variable (unset/``1`` = fused; ``0``/``false`` = classic); an
        explicit bool always wins.  The device build keeps its own
        path and ignores this knob.
    kernel_backend:
        Compute-kernel backend for the hot word kernels
        (:mod:`repro.device.backends` registry): ``"numpy"`` (the
        vectorized default), ``"numba"`` (compiled CPU loops) or
        ``"cupy"`` (device arrays).  ``"auto"`` (default) defers to the
        ``REPRO_KERNEL_BACKEND`` environment variable, then numpy.
        Backends are **bit-identical per seed** — CSR structures and
        colorings never change with this knob, only throughput.  The
        name ships to pool and cluster workers, each of which resolves
        it against its own environment (missing runtimes degrade to
        numpy with a stderr note).  An execution knob, so it is
        excluded from checkpoint fingerprints like ``n_workers``.
    telemetry:
        Record structured metrics and trace spans for the run
        (:mod:`repro.telemetry`): dispatcher phase spans, worker-side
        strip spans, transport byte counters, install/recycle/retry
        counts, merged into one view on the dispatcher and exposed as
        ``PicassoResult.telemetry``.  ``None`` (default) defers to the
        ``REPRO_TELEMETRY`` environment variable (truthy = on); an
        explicit bool always wins.  Telemetry is **neutral**: runs with
        it on and off are bit-identical per seed on every backend — it
        is write-only from the algorithm's point of view.  An execution
        knob, excluded from checkpoint fingerprints.
    """

    palette_fraction: float = 0.125
    alpha: float = 2.0
    conflict_order: str = "dynamic"
    max_iterations: int = 200
    grow_on_stall: float = 2.0
    chunk_size: int = 1 << 18
    min_palette: int = 1
    engine: str = "tiled"
    tile_budget_bytes: int = 1 << 24
    n_workers: int = 1
    executor: str = "auto"
    shm_gather: bool = False
    pin_workers: bool = False
    color_engine: str = "auto"
    color_max_rounds: int | None = None
    hosts: str | tuple | None = None
    transport: str = "socket"
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    resume: bool = False
    failover: str | tuple | None = None
    max_retries: int | None = None
    fused: bool | None = None
    kernel_backend: str = "auto"
    telemetry: bool | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.palette_fraction <= 1.0:
            raise ValueError("palette_fraction must be in (0, 1]")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.conflict_order not in ("dynamic", "natural", "random", "lf"):
            raise ValueError(f"unknown conflict_order {self.conflict_order!r}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.grow_on_stall < 1.0:
            raise ValueError("grow_on_stall must be >= 1.0")
        if self.engine not in ("tiled", "pairs"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.tile_budget_bytes < 1:
            raise ValueError("tile_budget_bytes must be positive")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.executor not in ("auto", "serial", "pool", "cluster"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.transport != "socket":
            raise ValueError(
                f"unknown transport {self.transport!r} (available: 'socket')"
            )
        if self.hosts is not None:
            if self.executor not in ("auto", "cluster"):
                raise ValueError(
                    "hosts requires executor='cluster' (or 'auto')"
                )
            # Fail on a malformed spec here, not mid-run at connect time.
            from repro.distributed.transport import parse_hosts

            parse_hosts(self.hosts)
        if self.color_engine != "auto" and self.color_engine not in available_engines():
            raise ValueError(
                f"unknown color_engine {self.color_engine!r}; "
                f"available: {('auto',) + available_engines()}"
            )
        if self.color_max_rounds is not None and self.color_max_rounds < 1:
            raise ValueError("color_max_rounds must be >= 1 or None")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        if self.failover is not None:
            # Fail on a malformed chain here, not after the first crash
            # (when the operator can no longer fix the spelling).
            from repro.resilience.supervisor import _parse_chain

            _parse_chain(self.failover)
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be >= 0 or None")
        if self.kernel_backend != "auto":
            # Registered, not available: naming "cupy" on a GPU-less
            # dispatch host is legitimate when the workers have one
            # (and degrades to numpy bit-identically when they don't).
            from repro.device.backends import registered_backends

            if self.kernel_backend not in registered_backends():
                raise ValueError(
                    f"unknown kernel_backend {self.kernel_backend!r}; "
                    f"available: {('auto',) + registered_backends()}"
                )

    @property
    def supervised(self) -> bool:
        """True when the run should wrap its executor in the
        retry/failover supervisor."""
        return self.failover is not None or self.max_retries is not None

    def palette_size(self, n_active: int) -> int:
        """``P_l`` for the current subproblem size."""
        return max(self.min_palette, round(self.palette_fraction * n_active))

    def list_size(self, n_active: int) -> int:
        """``L_l = alpha * ln |V|``, at least 1, at most the palette."""
        if n_active <= 1:
            return 1
        raw = max(1, round(self.alpha * math.log(n_active)))
        return min(raw, self.palette_size(n_active))

    def resolved_color_engine(self) -> str:
        """The registry name ``color_engine="auto"`` resolves to.

        Preserves the historical pairing (bitset engine on ``tiled``,
        set reference on ``pairs``, static engine under a static
        ``conflict_order``); an explicit engine name passes through.
        """
        if self.color_engine != "auto":
            return self.color_engine
        if self.conflict_order != "dynamic":
            return "greedy-static"
        return "greedy-dynamic" if self.engine == "tiled" else "sets"

    def color_engine_knobs(self) -> dict:
        """Constructor knobs for the resolved engine."""
        name = self.resolved_color_engine()
        if name == "greedy-static":
            order = self.conflict_order if self.conflict_order != "dynamic" else "natural"
            return {"order": order}
        if name == "parallel-list":
            return {
                "max_rounds": self.color_max_rounds,
                "kernel_backend": self.resolved_kernel_backend(),
            }
        return {}

    def resolved_fused(self) -> bool:
        """Whether this run takes the fused iterate.

        An explicit ``fused`` bool wins; otherwise the ``REPRO_FUSED``
        environment variable decides (``"0"``/``"false"``/``"no"``/
        ``"off"`` disable), defaulting to fused.  Read per call so a
        test can flip the env var without rebuilding params.
        """
        if self.fused is not None:
            return self.fused
        import os

        return os.environ.get("REPRO_FUSED", "1").strip().lower() not in (
            "0", "false", "no", "off",
        )

    def resolved_kernel_backend(self) -> str:
        """The backend name ``kernel_backend="auto"`` resolves to.

        An explicit name wins; ``"auto"`` consults
        ``REPRO_KERNEL_BACKEND`` (read per call, like
        :meth:`resolved_fused`), landing on ``"numpy"`` when that is
        unset, empty or itself ``"auto"``.  The result is always a
        concrete name: it ships in worker payloads, so the dispatcher
        and every worker agree on what was requested even when a
        worker's missing runtime makes it degrade to numpy locally.
        """
        if self.kernel_backend != "auto":
            return self.kernel_backend
        import os

        name = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower()
        return name if name and name != "auto" else "numpy"

    def resolved_telemetry(self) -> bool:
        """Whether this run records telemetry.

        An explicit ``telemetry`` bool wins; otherwise the
        ``REPRO_TELEMETRY`` environment variable decides (read per
        call, like :meth:`resolved_fused`), defaulting to off — the
        disabled path is the zero-cost one.
        """
        if self.telemetry is not None:
            return self.telemetry
        from repro.telemetry import env_enabled

        return env_enabled()

    def with_(self, **kwargs) -> "PicassoParams":
        """Functional update."""
        return replace(self, **kwargs)


def normal_params(**overrides) -> PicassoParams:
    """The paper's "Normal" configuration: P = 12.5%, alpha = 2."""
    return PicassoParams(palette_fraction=0.125, alpha=2.0).with_(**overrides)


def aggressive_params(**overrides) -> PicassoParams:
    """The paper's "Aggressive" configuration: P = 3%, alpha = 30.

    Large lists over a small palette chase minimum colors at the cost
    of a much denser conflict graph (Table III vs Table IV).
    """
    return PicassoParams(palette_fraction=0.03, alpha=30.0).with_(**overrides)
