"""Closed-form predictors from the paper's analysis (§IV-C, Lemma 2).

These formulas predict the conflict-graph size before building it —
used by the memory model (how big a COO buffer will Algorithm 3 need?)
and checked empirically by the property tests.

For two independent uniform ``L``-subsets of a palette of size ``P``,
the exact intersection probability is

    p_share = 1 - C(P-L, L) / C(P, L)

and Lemma 2 follows from the union bound ``p_share <= L^2 / P``:

- expected conflict degree of v:      delta(v) * p_share
- expected conflict edges:            |E| * p_share
- Lemma 2.2's high-probability bound: O(log^3 n) max degree when
  Delta / P = O(log n) and L = O(log n).
"""

from __future__ import annotations

import math

import numpy as np


def list_share_probability(palette_size: int, list_size: int) -> float:
    """Exact P(two uniform L-subsets of [P] intersect).

    Computed in log space to stay stable for large arguments:
    ``C(P-L, L) / C(P, L) = prod_{k=0}^{L-1} (P-L-k) / (P-k)``.
    """
    if list_size > palette_size:
        raise ValueError("list_size cannot exceed palette_size")
    if 2 * list_size > palette_size:
        return 1.0  # pigeonhole: lists must overlap
    log_miss = 0.0
    for k in range(list_size):
        log_miss += math.log(palette_size - list_size - k) - math.log(
            palette_size - k
        )
    return 1.0 - math.exp(log_miss)


def expected_conflict_degree(
    degree: np.ndarray | float, palette_size: int, list_size: int
) -> np.ndarray | float:
    """Lemma 2.1: E[deg_Gc(v)] = deg_G(v) * p_share."""
    return degree * list_share_probability(palette_size, list_size)


def expected_conflict_edges(
    n_edges: int, palette_size: int, list_size: int
) -> float:
    """Lemma 2.3 (exact form): E[|Ec|] = |E| * p_share."""
    return n_edges * list_share_probability(palette_size, list_size)


def share_probability_upper_bound(palette_size: int, list_size: int) -> float:
    """The union bound L^2 / P used in the paper's O(.) statements."""
    return min(1.0, list_size * list_size / palette_size)


def sublinear_space_bound(n: int, alpha: float = 2.0) -> float:
    """Lemma 2.2's conflict-edge scale ``n log^3 n`` (up to constants),
    for plotting the theoretical envelope against measurements."""
    if n < 2:
        return 0.0
    return n * math.log(n) ** 3


def predict_coo_bytes(
    n: int,
    n_edges: int,
    palette_size: int,
    list_size: int,
    id_bytes: int = 4,
    safety: float = 3.0,
) -> int:
    """Predict the COO buffer Algorithm 3 should pre-allocate.

    ``safety`` is the multiplicative headroom over the expectation
    (the paper instead trains an ML predictor — see
    :mod:`repro.predict` — but this closed form is the fallback).
    """
    exp_edges = expected_conflict_edges(n_edges, palette_size, list_size)
    return int(2 * id_bytes * safety * max(exp_edges, 1.0))
