"""Edge sources: where the graph being colored comes from.

Picasso never materializes its input graph.  A *source* answers one
question — "is ``(i, j)`` an edge of the graph I should color?" — over
vectorized pair-index arrays, and exposes the subset operation the
iterative driver needs (Algorithm 1 line 11).

Two sources cover the paper's settings:

- :class:`PauliComplementSource` — the quantum-computing application:
  vertices are Pauli strings; the colored graph is the *complement* of
  the anticommutation graph, derived on the fly from the 3-bit encoding
  (§IV-A).  This is the memory-efficient streaming path.
- :class:`ExplicitGraphSource` — the generalized setting: any
  :class:`CSRGraph` (§I's "can be used in a generalized graph setting").
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.pauli.strings import PauliSet


class PauliComplementSource:
    """Stream complement ("commute") edges of a Pauli set's graph."""

    def __init__(self, pauli_set: PauliSet, kernel: str = "iooh") -> None:
        self.pauli_set = pauli_set
        self._oracle = pauli_set.oracle(kernel)

    @property
    def n(self) -> int:
        return self.pauli_set.n

    def edge_mask(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """1 where (i, j) is an edge of the graph to color (= commuting
        distinct Pauli pairs)."""
        return self._oracle.commute_edges(i, j)

    def edge_block(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """Block form of :meth:`edge_mask` for the tiled engine: one
        word-broadcast over the encoded payload, no row gather.  Only
        strict upper-triangle entries are meaningful."""
        return self._oracle.commute_block(r0, r1, c0, c1)

    def subset(self, idx: np.ndarray) -> "PauliComplementSource":
        """Source induced by the uncolored vertices (new local ids)."""
        return PauliComplementSource(
            self.pauli_set.subset(idx), kernel=self._oracle.kernel
        )

    @property
    def nbytes(self) -> int:
        """Resident bytes: the encoded Pauli payload only — no graph."""
        return self.pauli_set.nbytes + self._oracle.nbytes

    def validate(self, colors: np.ndarray, sample_pairs: int | None = None) -> bool:
        """Check coloring properness against the streamed edges.

        ``sample_pairs`` limits verification to a random subsample for
        large inputs; ``None`` checks every pair.
        """
        from repro.util.chunking import iter_pair_chunks, num_pairs, pair_index_to_ij
        from repro.util.rng import as_generator

        colors = np.asarray(colors)
        if sample_pairs is not None and sample_pairs < num_pairs(self.n):
            rng = as_generator(0)
            k = rng.choice(num_pairs(self.n), size=sample_pairs, replace=False)
            i, j = pair_index_to_ij(np.sort(k), self.n)
            bad = (colors[i] == colors[j]) & self.edge_mask(i, j).astype(bool)
            return not bad.any() and (colors >= 0).all()
        for i, j in iter_pair_chunks(self.n, 1 << 18):
            bad = (colors[i] == colors[j]) & self.edge_mask(i, j).astype(bool)
            if bad.any():
                return False
        return bool((colors >= 0).all())


class ExplicitGraphSource:
    """Color an explicit :class:`CSRGraph` (generalized setting).

    Edge queries are vectorized binary searches over sorted adjacency
    rows, built once at construction.
    """

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        # Sort each adjacency row once for searchsorted queries.
        targets = graph.targets.astype(np.int64).copy()
        for v in range(graph.n_vertices):
            lo, hi = graph.offsets[v], graph.offsets[v + 1]
            targets[lo:hi] = np.sort(targets[lo:hi])
        self._sorted_targets = targets

    @property
    def n(self) -> int:
        return self.graph.n_vertices

    def edge_mask(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Vectorized membership test of ``j`` in ``adj(i)``."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        out = np.zeros(len(i), dtype=np.uint8)
        lo = self.graph.offsets[i]
        hi = self.graph.offsets[i + 1]
        # Rows are short or long; a per-query searchsorted over the row
        # slice needs a loop — group queries by source vertex instead.
        order = np.argsort(i, kind="stable")
        k = 0
        while k < len(order):
            v = i[order[k]]
            end = k
            while end < len(order) and i[order[end]] == v:
                end += 1
            row = self._sorted_targets[lo[order[k]] : hi[order[k]]]
            qs = j[order[k:end]]
            if len(row) == 0:
                found = np.zeros(len(qs), dtype=bool)
            else:
                pos = np.searchsorted(row, qs)
                found = (pos < len(row)) & (
                    row[np.minimum(pos, len(row) - 1)] == qs
                )
            out[order[k:end]] = found.astype(np.uint8)
            k = end
        return out

    def edge_block(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """Dense adjacency block ``(r1-r0, c1-c0)`` as uint8.

        Scatters the CSR rows of the block's vertices into a zeroed
        block — O(arcs incident to the row range) per tile, fully
        vectorized (no per-pair membership search).
        """
        offsets = self.graph.offsets
        lo, hi = int(offsets[r0]), int(offsets[r1])
        tgt = self._sorted_targets[lo:hi]
        src = np.repeat(
            np.arange(r0, r1, dtype=np.int64),
            np.diff(offsets[r0 : r1 + 1]).astype(np.int64),
        )
        sel = (tgt >= c0) & (tgt < c1)
        block = np.zeros((r1 - r0, c1 - c0), dtype=np.uint8)
        block[src[sel] - r0, tgt[sel] - c0] = 1
        return block

    def subset(self, idx: np.ndarray) -> "ExplicitGraphSource":
        from repro.graphs.ops import induced_subgraph

        sub, _ = induced_subgraph(self.graph, idx)
        return ExplicitGraphSource(sub)

    @property
    def nbytes(self) -> int:
        """Explicit sources pay for the whole graph (baseline regime)."""
        return int(self.graph.nbytes + self._sorted_targets.nbytes)

    def validate(self, colors: np.ndarray, sample_pairs: int | None = None) -> bool:
        return self.graph.validate_coloring(np.asarray(colors))
