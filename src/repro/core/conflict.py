"""Host-path conflict-graph construction (Algorithm 1, line 7).

An edge ``(u, v)`` of the graph being colored is *conflicted* when the
candidate color lists of ``u`` and ``v`` intersect.  Only those edges
are materialized — the sparsity that gives Picasso its sublinear space
(Lemma 2).  The device path with budget accounting lives in
:mod:`repro.device.csr_build`; this host path shares the same kernels.
"""

from __future__ import annotations

import numpy as np

from repro.device.kernels import conflict_pair_kernel
from repro.graphs.csr import CSRGraph, from_edge_list
from repro.util.chunking import iter_pair_chunks


def build_conflict_graph(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
) -> tuple[CSRGraph, int]:
    """Build the conflict graph over ``n`` active vertices on the host.

    Returns the CSR conflict graph and the conflict-edge count.
    """
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for i, j in iter_pair_chunks(n, chunk_size):
        mask = conflict_pair_kernel(edge_mask_fn, colmasks, i, j).astype(bool)
        if mask.any():
            us.append(i[mask])
            vs.append(j[mask])
    u = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
    v = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
    graph = from_edge_list(u, v, n)
    return graph, len(u)


def count_conflict_edges(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
) -> int:
    """Conflict-edge count without materializing the graph (parameter
    sweeps, Fig. 5's ``max |Ec|`` heatmap)."""
    total = 0
    for i, j in iter_pair_chunks(n, chunk_size):
        total += int(conflict_pair_kernel(edge_mask_fn, colmasks, i, j).sum())
    return total
