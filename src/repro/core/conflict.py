"""Host-path conflict-graph construction (Algorithm 1, line 7).

An edge ``(u, v)`` of the graph being colored is *conflicted* when the
candidate color lists of ``u`` and ``v`` intersect.  Only those edges
are materialized — the sparsity that gives Picasso its sublinear space
(Lemma 2).  The device path with budget accounting lives in
:mod:`repro.device.csr_build`; this host path shares the same kernels.

Two sweep engines cover the pair space:

- ``"tiled"`` (default) — the block-broadcast engine of
  :mod:`repro.device.tiles`: each ``(row_block, col_block)`` tile loads
  its operand slices once and evaluates the fused intersect-then-edge
  kernel as a word broadcast.  No flat-index inversion, no quadratic
  row gather.
- ``"pairs"`` — the original flat pair-chunk engine (one simulated SIMT
  thread per pair, operand rows gathered per pair).  Kept as the
  ablation baseline; produces the identical conflict graph.

Both engines run through an execution backend
(:mod:`repro.parallel.executor`): serial in-process streaming, or a
process pool that sweeps balanced contiguous strips of the domain and
gathers results in deterministic strip order.  All paths feed the same
two-pass count-then-fill CSR assembly
(:func:`repro.graphs.csr.csr_from_coo_chunks`), so serial and parallel
builds are bit-identical per seed.
"""

from __future__ import annotations

import numpy as np

from repro.device.tiles import DEFAULT_TILE_BYTES, EdgeBlockFn
from repro.graphs.csr import CSRGraph
from repro.parallel.executor import Executor, owned_executor
from repro.parallel.pool import (
    conflict_sweep_chunks,
    fused_conflict_csr,
    gathered_conflict_csr,
)


def build_conflict_graph(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    n_workers: int = 1,
    executor: str | Executor = "auto",
    shm: bool = False,
    est_conflict_edges: float | None = None,
    source=None,
    active_idx: np.ndarray | None = None,
    hosts=None,
    transport: str = "socket",
    timings: dict | None = None,
    kernel_backend: str | None = None,
) -> tuple[CSRGraph, int]:
    """Build the conflict graph over ``n`` active vertices on the host.

    Parameters
    ----------
    n, edge_mask_fn, colmasks:
        Active vertex count, pairwise edge oracle, packed palette
        bitsets.
    chunk_size:
        Pairs per launch for the ``"pairs"`` engine.
    engine:
        ``"tiled"`` (block-broadcast sweep) or ``"pairs"`` (flat
        pair-chunk gather sweep, the ablation baseline).
    edge_block_fn:
        Optional block edge oracle for the tiled engine (dense tiles
        then skip the pairwise survivor gather entirely).
    tile_bytes:
        Per-tile scratch budget for the tiled engine.
    n_workers:
        Worker processes for the sweep (1 = serial streaming).
    executor:
        Backend spec (``"auto"``/``"serial"``/``"pool"``) or an
        :class:`~repro.parallel.executor.Executor` instance.  With a
        pool backend the edge oracle and colmasks ship once per worker
        and the strip results are gathered in deterministic order, so
        the built CSR is bit-identical to the serial one.  A
        spec-created backend is closed before returning; a passed
        instance stays open for its owner (executor lifecycle
        contract).
    shm:
        Gather hits through a shared COO region sized by the Lemma 2
        estimate (:mod:`repro.parallel.shm`) instead of pickling strip
        results — zero-copy into the CSR assembly.  Ignored for serial
        backends, where results never cross a pipe to begin with.
    est_conflict_edges:
        Expected conflict-edge count for shm region sizing (the driver
        passes the Lemma 2 expectation; ``None`` derives a bound from
        the masks).
    source, active_idx:
        Root edge source and active-vertex indices for the
        persistent-pool delta payload (see
        :mod:`repro.parallel.pool`).
    hosts, transport:
        Worker-agent addresses and wire protocol for the distributed
        backend (spec ``"cluster"``, or ``"auto"`` with hosts set; see
        :mod:`repro.distributed`).  Sharded builds stay bit-identical
        to serial — strips merge in canonical order.
    timings:
        Optional dict accumulating ``sweep_s`` / ``assemble_s`` phase
        buckets (see :func:`repro.parallel.pool.gathered_conflict_csr`).
    kernel_backend:
        Kernel-backend *name* (:mod:`repro.device.backends`) for the
        sweep's hot kernels; ``None`` runs the direct numpy path.
        Resolved worker-side, bit-identical across backends.

    Returns the CSR conflict graph and the conflict-edge count.
    """
    with owned_executor(
        executor, n_workers, hosts=hosts, transport=transport
    ) as ex:
        return gathered_conflict_csr(
            n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
            tile_bytes=tile_bytes, executor=ex, shm=shm,
            est_conflict_edges=est_conflict_edges,
            source=source, active_idx=active_idx, timings=timings,
            kernel_backend=kernel_backend,
        )


def build_fused_conflict_state(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    n_workers: int = 1,
    executor: str | Executor = "auto",
    shm: bool = False,
    est_conflict_edges: float | None = None,
    source=None,
    active_idx: np.ndarray | None = None,
    hosts=None,
    transport: str = "socket",
    region_pool=None,
    timings: dict | None = None,
    kernel_backend: str | None = None,
) -> tuple[CSRGraph, np.ndarray, int]:
    """Fused variant of :func:`build_conflict_graph`: returns the
    conflicted-subgraph CSR, the conflict vertex ids and the edge count
    in one pass, with the O(|Ec|) dispatcher edge sweep done on the
    workers (see :func:`repro.parallel.pool.fused_conflict_csr`).
    Bit-identical state to the classic build + degree scan +
    induced-subgraph sequence, on every backend.
    """
    with owned_executor(
        executor, n_workers, hosts=hosts, transport=transport
    ) as ex:
        return fused_conflict_csr(
            n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
            tile_bytes=tile_bytes, executor=ex, shm=shm,
            est_conflict_edges=est_conflict_edges,
            source=source, active_idx=active_idx,
            region_pool=region_pool, timings=timings,
            kernel_backend=kernel_backend,
        )


def count_conflict_edges(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    n_workers: int = 1,
    executor: str | Executor = "auto",
    hosts=None,
    transport: str = "socket",
    kernel_backend: str | None = None,
) -> int:
    """Conflict-edge count without materializing the graph (parameter
    sweeps, Fig. 5's ``max |Ec|`` heatmap)."""
    with owned_executor(
        executor, n_workers, hosts=hosts, transport=transport
    ) as ex:
        total = 0
        for i, _ in conflict_sweep_chunks(
            n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
            tile_bytes=tile_bytes, executor=ex,
            kernel_backend=kernel_backend,
        ):
            total += len(i)
        return total
