"""Host-path conflict-graph construction (Algorithm 1, line 7).

An edge ``(u, v)`` of the graph being colored is *conflicted* when the
candidate color lists of ``u`` and ``v`` intersect.  Only those edges
are materialized — the sparsity that gives Picasso its sublinear space
(Lemma 2).  The device path with budget accounting lives in
:mod:`repro.device.csr_build`; this host path shares the same kernels.

Two sweep engines cover the pair space:

- ``"tiled"`` (default) — the block-broadcast engine of
  :mod:`repro.device.tiles`: each ``(row_block, col_block)`` tile loads
  its operand slices once and evaluates the fused intersect-then-edge
  kernel as a word broadcast.  No flat-index inversion, no quadratic
  row gather.
- ``"pairs"`` — the original flat pair-chunk engine (one simulated SIMT
  thread per pair, operand rows gathered per pair).  Kept as the
  ablation baseline; produces the identical conflict graph.

Both engines run through an execution backend
(:mod:`repro.parallel.executor`): serial in-process streaming, or a
process pool that sweeps balanced contiguous strips of the domain and
gathers results in deterministic strip order.  All paths feed the same
two-pass count-then-fill CSR assembly
(:func:`repro.graphs.csr.csr_from_coo_chunks`), so serial and parallel
builds are bit-identical per seed.
"""

from __future__ import annotations

import numpy as np

from repro.device.tiles import DEFAULT_TILE_BYTES, EdgeBlockFn
from repro.graphs.csr import CSRGraph, csr_from_coo_chunks
from repro.parallel.executor import Executor, make_executor
from repro.parallel.pool import conflict_sweep_chunks


def build_conflict_graph(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    n_workers: int = 1,
    executor: str | Executor = "auto",
) -> tuple[CSRGraph, int]:
    """Build the conflict graph over ``n`` active vertices on the host.

    Parameters
    ----------
    n, edge_mask_fn, colmasks:
        Active vertex count, pairwise edge oracle, packed palette
        bitsets.
    chunk_size:
        Pairs per launch for the ``"pairs"`` engine.
    engine:
        ``"tiled"`` (block-broadcast sweep) or ``"pairs"`` (flat
        pair-chunk gather sweep, the ablation baseline).
    edge_block_fn:
        Optional block edge oracle for the tiled engine (dense tiles
        then skip the pairwise survivor gather entirely).
    tile_bytes:
        Per-tile scratch budget for the tiled engine.
    n_workers:
        Worker processes for the sweep (1 = serial streaming).
    executor:
        Backend spec (``"auto"``/``"serial"``/``"pool"``) or an
        :class:`~repro.parallel.executor.Executor` instance.  With a
        pool backend the edge oracle and colmasks ship once per worker
        and the strip results are gathered in deterministic order, so
        the built CSR is bit-identical to the serial one.

    Returns the CSR conflict graph and the conflict-edge count.
    """
    ex = make_executor(executor, n_workers)
    chunks: list[tuple[np.ndarray, np.ndarray]] = []
    m = 0
    for i, j in conflict_sweep_chunks(
        n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
        tile_bytes=tile_bytes, executor=ex,
    ):
        if len(i):
            chunks.append((i, j))
            m += len(i)
    graph = csr_from_coo_chunks(chunks, n)
    return graph, m


def count_conflict_edges(
    n: int,
    edge_mask_fn,
    colmasks: np.ndarray,
    chunk_size: int = 1 << 18,
    engine: str = "tiled",
    edge_block_fn: EdgeBlockFn | None = None,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    n_workers: int = 1,
    executor: str | Executor = "auto",
) -> int:
    """Conflict-edge count without materializing the graph (parameter
    sweeps, Fig. 5's ``max |Ec|`` heatmap)."""
    ex = make_executor(executor, n_workers)
    total = 0
    for i, _ in conflict_sweep_chunks(
        n, edge_mask_fn, colmasks, chunk_size, engine, edge_block_fn,
        tile_bytes=tile_bytes, executor=ex,
    ):
        total += len(i)
    return total
