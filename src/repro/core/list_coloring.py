"""List coloring of the conflict graph (paper §IV-B, Algorithm 2).

Given the conflict graph ``Gc`` and each vertex's candidate color list,
assign every vertex a color *from its own list* such that no conflict
edge is monochrome.  Vertices whose list empties out stay uncolored and
roll over to the next Picasso iteration (the set ``Vu``).

Two schemes:

- :func:`greedy_list_color_dynamic` — Algorithm 2: always color a
  vertex with the currently smallest list ("most constrained first"),
  maintained in an array of buckets indexed by list size, giving
  O((|Vc| + |Ec|) L) total time.
- :func:`greedy_list_color_static` — process vertices in a fixed order
  (natural / random / largest-degree-first), taking the first list
  color not used by an already-colored neighbor.  The paper reports
  dynamic ordering colors better; the static variants are kept for the
  ablation.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.util.rng import as_generator


def greedy_list_color_dynamic(
    gc: CSRGraph,
    col_lists: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 2: bucket-based dynamic greedy list coloring.

    Parameters
    ----------
    gc:
        Conflict graph (local vertex ids ``0..n-1``).
    col_lists:
        ``(n, L)`` matrix of local candidate color ids.
    rng:
        Drives the uniform choices of Algorithm 2 (vertex from lowest
        bucket, color from list).

    Returns
    -------
    (colors, uncolored):
        ``colors`` holds a local palette id per vertex (-1 where the
        list emptied); ``uncolored`` is the sorted array ``Vu``.
    """
    rng = as_generator(rng)
    n = gc.n_vertices
    if col_lists.shape[0] != n:
        raise ValueError("col_lists rows must match vertex count")
    list_size = col_lists.shape[1]
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors, np.empty(0, dtype=np.int64)

    # Mutable per-vertex list state: live[v] = remaining candidates
    # (Python sets give O(1) removal; lists are O(L) small).
    live: list[set[int]] = [set(row) for row in col_lists.tolist()]
    sizes = np.array([len(s) for s in live], dtype=np.int64)

    # Bucket array B[s] = vertices whose current list size is s, with a
    # position index for O(1) swap-removal (paper's auxiliary array).
    buckets: list[list[int]] = [[] for _ in range(list_size + 1)]
    pos = np.empty(n, dtype=np.int64)
    for v in range(n):
        pos[v] = len(buckets[sizes[v]])
        buckets[sizes[v]].append(v)

    def bucket_remove(v: int) -> None:
        b = buckets[sizes[v]]
        p = pos[v]
        last = b[-1]
        b[p] = last
        pos[last] = p
        b.pop()

    def bucket_insert(v: int) -> None:
        b = buckets[sizes[v]]
        pos[v] = len(b)
        b.append(v)

    processed = np.zeros(n, dtype=bool)
    uncolored: list[int] = []
    n_processed = 0
    lowest = 0
    while n_processed < n:
        # Find the lowest non-empty bucket.  Sizes only decrease for
        # unprocessed vertices, so scanning upward from `lowest` after a
        # reset to the smallest possible decrease keeps this O(L) per
        # step as the paper argues.
        while lowest <= list_size and not buckets[lowest]:
            lowest += 1
        blist = buckets[lowest]
        v = blist[int(rng.integers(len(blist)))] if len(blist) > 1 else blist[0]

        bucket_remove(v)
        processed[v] = True
        n_processed += 1
        cand = live[v]
        c = (
            int(rng.choice(list(cand)))
            if len(cand) > 1
            else next(iter(cand))
        )
        colors[v] = c
        for u in gc.neighbors(v):
            u = int(u)
            if processed[u] or c not in live[u]:
                continue
            live[u].discard(c)
            bucket_remove(u)
            sizes[u] -= 1
            if sizes[u] == 0:
                # List emptied: u joins Vu and is done for this iteration.
                processed[u] = True
                n_processed += 1
                uncolored.append(u)
            else:
                bucket_insert(u)
                if sizes[u] < lowest:
                    lowest = int(sizes[u])
    return colors, np.array(sorted(uncolored), dtype=np.int64)


def greedy_list_color_static(
    gc: CSRGraph,
    col_lists: np.ndarray,
    order: str = "natural",
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Static-order list coloring (§IV-B "static order schemes").

    Vertices are visited in a fixed order (``natural``, ``random`` or
    ``lf`` = conflict-graph degree descending); each takes the first
    color of its list unused by already-colored neighbors.
    """
    rng = as_generator(rng)
    n = gc.n_vertices
    if col_lists.shape[0] != n:
        raise ValueError("col_lists rows must match vertex count")
    if order == "natural":
        perm = np.arange(n, dtype=np.int64)
    elif order == "random":
        perm = rng.permutation(n).astype(np.int64)
    elif order == "lf":
        perm = np.argsort(-gc.degree(), kind="stable").astype(np.int64)
    else:
        raise ValueError(f"unknown static order {order!r}")

    colors = np.full(n, -1, dtype=np.int64)
    uncolored: list[int] = []
    for v in perm:
        taken = set(
            int(c) for c in colors[gc.neighbors(v)] if c >= 0
        )
        chosen = -1
        for c in col_lists[v]:
            if int(c) not in taken:
                chosen = int(c)
                break
        if chosen < 0:
            uncolored.append(int(v))
        else:
            colors[v] = chosen
    return colors, np.array(sorted(uncolored), dtype=np.int64)
