"""DEPRECATED re-export shim for Algorithm 2 list coloring.

The serial Algorithm 2 machinery (bitset bucket engine, Python-set
reference, static-order variants) moved to
:mod:`repro.coloring.greedy_list` when the two coloring layers were
collapsed into the unified engine subsystem
(:mod:`repro.coloring.engine`).  Import from there — or, better, select
an engine through the registry::

    from repro.coloring.engine import get_engine
    outcome = get_engine("greedy-dynamic").color(gc, col_lists, rng)

This module keeps the historical import path working and will be
removed once nothing references it.
"""

from __future__ import annotations

import warnings

from repro.coloring import (
    greedy_list_color_dynamic,
    greedy_list_color_dynamic_sets,
    greedy_list_color_static,
)

__all__ = [
    "greedy_list_color_dynamic",
    "greedy_list_color_dynamic_sets",
    "greedy_list_color_static",
]

warnings.warn(
    "repro.core.list_coloring is deprecated and will be removed: import "
    "from repro.coloring.greedy_list, or select an engine through the "
    "repro.coloring.engine registry",
    DeprecationWarning,
    stacklevel=2,
)
