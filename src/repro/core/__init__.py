"""Picasso core (paper §IV): the primary contribution.

Algorithm 1 (:class:`Picasso`), palette/list assignment, conflict-graph
construction, Algorithm 2 list coloring, and the Lemma 2 analysis
helpers.
"""

from repro.core.analysis import (
    expected_conflict_degree,
    expected_conflict_edges,
    list_share_probability,
    predict_coo_bytes,
    share_probability_upper_bound,
    sublinear_space_bound,
)
from repro.coloring import (
    # Via the coloring package's public API, not the deprecated
    # repro.core.list_coloring shim — importing repro.core must not
    # trip the shim's DeprecationWarning.
    greedy_list_color_dynamic,
    greedy_list_color_static,
)
from repro.core.conflict import build_conflict_graph, count_conflict_edges
from repro.core.palette import assign_color_lists, lists_nbytes
from repro.core.params import PicassoParams, aggressive_params, normal_params
from repro.core.partition import (
    UnitaryGroup,
    UnitaryPartition,
    partition_from_coloring,
    verify_unitarity,
)
from repro.core.picasso import (
    IterationStats,
    Picasso,
    PicassoResult,
    picasso_color,
)
from repro.core.sources import ExplicitGraphSource, PauliComplementSource

__all__ = [
    "expected_conflict_degree",
    "expected_conflict_edges",
    "list_share_probability",
    "predict_coo_bytes",
    "share_probability_upper_bound",
    "sublinear_space_bound",
    "build_conflict_graph",
    "count_conflict_edges",
    "greedy_list_color_dynamic",
    "greedy_list_color_static",
    "assign_color_lists",
    "lists_nbytes",
    "PicassoParams",
    "aggressive_params",
    "normal_params",
    "UnitaryGroup",
    "UnitaryPartition",
    "partition_from_coloring",
    "verify_unitarity",
    "IterationStats",
    "Picasso",
    "PicassoResult",
    "picasso_color",
    "ExplicitGraphSource",
    "PauliComplementSource",
]
